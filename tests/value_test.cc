// Unit + property tests for the value model (Section 3.2): construction,
// canonicalization, the total order, printing and parsing.
#include <gtest/gtest.h>

#include <random>

#include "core/types/type_registry.h"
#include "core/values/temporal_function.h"
#include "core/values/value.h"
#include "core/values/value_parser.h"

namespace tchimera {
namespace {

TEST(ValueTest, ScalarRoundTrips) {
  EXPECT_EQ(Value::Integer(42).AsInteger(), 42);
  EXPECT_DOUBLE_EQ(Value::Real(3.25).AsReal(), 3.25);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Char('x').AsChar(), 'x');
  EXPECT_EQ(Value::String("IDEA").AsString(), "IDEA");
  EXPECT_EQ(Value::Time(17).AsTime(), 17);
  EXPECT_EQ(Value::OfOid(Oid{7}).AsOid(), (Oid{7}));
  EXPECT_TRUE(Value::Null().is_null());
}

TEST(ValueTest, SetsAreCanonical) {
  Value a = Value::Set({Value::Integer(3), Value::Integer(1),
                        Value::Integer(3), Value::Integer(2)});
  EXPECT_EQ(a.Elements().size(), 3u);  // duplicates removed
  EXPECT_EQ(a.ToString(), "{1,2,3}");  // sorted
  Value b = Value::Set({Value::Integer(2), Value::Integer(1),
                        Value::Integer(3)});
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.Contains(Value::Integer(2)));
  EXPECT_FALSE(a.Contains(Value::Integer(9)));
}

TEST(ValueTest, ListsPreserveOrderAndDuplicates) {
  Value l = Value::List({Value::Integer(3), Value::Integer(1),
                         Value::Integer(3)});
  EXPECT_EQ(l.ToString(), "[3,1,3]");
  EXPECT_TRUE(l.Contains(Value::Integer(3)));
  EXPECT_NE(l, Value::List({Value::Integer(1), Value::Integer(3),
                            Value::Integer(3)}));
}

TEST(ValueTest, RecordsSortByNameAndRejectDuplicates) {
  Value r = Value::Record({{"b", Value::Integer(2)},
                           {"a", Value::Integer(1)}})
                .value();
  EXPECT_EQ(r.ToString(), "(a:1,b:2)");
  EXPECT_EQ(*r.FieldValue("a"), Value::Integer(1));
  EXPECT_EQ(r.FieldValue("zzz"), nullptr);
  EXPECT_FALSE(
      Value::Record({{"a", Value::Integer(1)}, {"a", Value::Integer(2)}})
          .ok());
}

TEST(ValueTest, CompareIsTotalOrderOnSamples) {
  std::vector<Value> samples = {
      Value::Null(),
      Value::Integer(-5),
      Value::Integer(7),
      Value::Real(2.5),
      Value::Bool(false),
      Value::Char('q'),
      Value::String("abc"),
      Value::String("abd"),
      Value::Time(9),
      Value::OfOid(Oid{3}),
      Value::Set({Value::Integer(1)}),
      Value::Set({Value::Integer(1), Value::Integer(2)}),
      Value::List({Value::Integer(1)}),
      Value::Record({{"a", Value::Integer(1)}}).value(),
      Value::Temporal(
          TemporalFunction::Constant(Interval(1, 5), Value::Integer(3))),
  };
  for (const Value& a : samples) {
    EXPECT_EQ(Value::Compare(a, a), 0) << a.ToString();
    for (const Value& b : samples) {
      // Antisymmetry.
      EXPECT_EQ(Value::Compare(a, b), -Value::Compare(b, a))
          << a.ToString() << " vs " << b.ToString();
      for (const Value& c : samples) {
        // Transitivity on <=.
        if (Value::Compare(a, b) <= 0 && Value::Compare(b, c) <= 0) {
          EXPECT_LE(Value::Compare(a, c), 0)
              << a.ToString() << " " << b.ToString() << " " << c.ToString();
        }
      }
    }
  }
}

TEST(ValueTest, CollectOids) {
  Value v = Value::Record(
                {{"plain", Value::OfOid(Oid{1})},
                 {"nested", Value::Set({Value::OfOid(Oid{2}),
                                        Value::Integer(5)})},
                 {"hist",
                  Value::Temporal(TemporalFunction::Constant(
                      Interval(1, 10), Value::OfOid(Oid{3})))}})
                .value();
  std::vector<Oid> all;
  v.CollectOids(&all);
  EXPECT_EQ(all.size(), 3u);
  // At-instant collection only sees temporal segments containing the
  // instant.
  std::vector<Oid> at_20;
  v.CollectOidsAt(20, &at_20);
  EXPECT_EQ(at_20.size(), 2u);  // oid 3's segment [1,10] excluded
}

TEST(ValueTest, PrinterMatchesPaperNotation) {
  TemporalFunction score;
  ASSERT_TRUE(score.Define(Interval(1, 100), Value::Integer(40)).ok());
  ASSERT_TRUE(score.Define(Interval(101, 200), Value::Integer(70)).ok());
  Value rec = Value::Record({{"name", Value::String("Bob")},
                             {"score", Value::Temporal(score)}})
                  .value();
  EXPECT_EQ(rec.ToString(),
            "(name:'Bob',score:{<[1,100],40>,<[101,200],70>})");
}

class ValueRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ValueRoundTripTest, ParsePrintParse) {
  Result<Value> v = ParseValue(GetParam());
  ASSERT_TRUE(v.ok()) << GetParam() << ": " << v.status();
  Result<Value> again = ParseValue(v->ToString());
  ASSERT_TRUE(again.ok()) << v->ToString();
  EXPECT_EQ(*again, *v);
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, ValueRoundTripTest,
    ::testing::Values(
        "null", "true", "false", "42", "-17", "3.5", "-2.5e3", "'IDEA'",
        "'escaped \\' quote'", "c'x'", "t42", "tnow", "i7", "{1,2,3}",
        "{}", "[1,1,2]", "[]", "(a:1,b:'x')", "()",
        "{<[5,10],12>,<[11,30],5>}", "{<[20,now],'IDEA'>}",
        "(name:'Bob',score:{<[1,100],40>,<[101,200],70>})",
        "{{1,2},{3}}", "[(a:{i1,i2}),(a:{})]",
        "{<[1,5],{i1,i2}>,<[6,now],{i1}>}"));

TEST(ValueParserTest, HintDisambiguatesEmptyBraces) {
  const Type* temporal_int = types::Temporal(types::Integer()).value();
  Value as_temporal = ParseValue("{}", temporal_int).value();
  EXPECT_EQ(as_temporal.kind(), ValueKind::kTemporal);
  Value as_set = ParseValue("{}").value();
  EXPECT_EQ(as_set.kind(), ValueKind::kSet);
}

TEST(ValueParserTest, RejectsMalformedValues) {
  for (const char* bad :
       {"", "{1,", "(a:)", "<[1,2],3>", "{<[1,2]>}", "'unterminated",
        "c'xy'", "(:1)", "1 2"}) {
    EXPECT_FALSE(ParseValue(bad).ok()) << bad;
  }
  // Empty intervals inside a temporal literal are dropped, not an error.
  EXPECT_EQ(ParseValue("{<[5,3],1>,<[4,9],2>}").value().ToString(),
            "{<[4,9],2>}");
  // Overlapping segments are a temporal error.
  EXPECT_FALSE(ParseValue("{<[1,5],1>,<[3,9],2>}").ok());
}

TEST(ValueTest, ApproxBytesGrowsWithContent) {
  Value small = Value::Integer(1);
  Value big = Value::Set({Value::String(std::string(100, 'x')),
                          Value::String(std::string(200, 'y'))});
  EXPECT_GT(big.ApproxBytes(), small.ApproxBytes() + 250);
}

}  // namespace
}  // namespace tchimera
