// Tests for temporal triggers (the Section 7 future-work ECA rules):
// parsing, event matching with subclass closure, $self substitution,
// cascades, and the termination guard the paper flags as an open issue.
#include <gtest/gtest.h>

#include "triggers/trigger.h"
#include "workload/project_schema.h"

namespace tchimera {
namespace {

class TriggerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    active_ = std::make_unique<ActiveDatabase>(&db_);
    ASSERT_TRUE(InstallProjectSchema(&db_).ok());
  }

  Result<std::string> Run(const std::string& stmt) {
    return active_->Execute(stmt);
  }

  Database db_;
  std::unique_ptr<ActiveDatabase> active_;
};

TEST_F(TriggerTest, Parsing) {
  EXPECT_TRUE(Trigger::Parse("trigger t1 on create of employee do "
                             "update $self set salary = 1")
                  .ok());
  EXPECT_TRUE(Trigger::Parse("trigger t2 on update of employee.salary do "
                             "check")
                  .ok());
  EXPECT_TRUE(Trigger::Parse("trigger t3 on delete do check").ok());
  EXPECT_FALSE(Trigger::Parse("nonsense").ok());
  EXPECT_FALSE(Trigger::Parse("trigger t on explode do check").ok());
  EXPECT_FALSE(
      Trigger::Parse("trigger t on create of c.attr do check").ok());
  EXPECT_FALSE(Trigger::Parse("trigger t on create do").ok());
  Trigger t = Trigger::Parse("trigger audit on update of employee.salary "
                             "do check")
                  .value();
  EXPECT_EQ(t.ToString(),
            "trigger audit on update of employee.salary do check");
}

TEST_F(TriggerTest, CreateTriggerInitializesAttribute) {
  // ECA rule: every new employee gets a starter salary.
  ASSERT_TRUE(active_
                  ->DefineTrigger("trigger starter on create of employee "
                                  "do update $self set salary = 30000")
                  .ok());
  std::string oid = Run("create employee (office: 'A1')").value();
  EXPECT_EQ(active_->fired_count(), 1u);
  EXPECT_EQ(Run("select x.salary from x in employee").value(), "30000");
  (void)oid;
}

TEST_F(TriggerTest, SubclassClosureAndAttributeFilter) {
  ASSERT_TRUE(active_
                  ->DefineTrigger("trigger audit on update of "
                                  "person.name do tick")
                  .ok());
  std::string e = Run("create employee ()").value();
  TimePoint before = db_.now();
  // The trigger is `of person` but fires for an employee (subclass
  // closure)...
  ASSERT_TRUE(Run("update " + e + " set name = 'Ann'").ok());
  EXPECT_EQ(db_.now(), before + 1);
  EXPECT_EQ(active_->fired_count(), 1u);
  // ...and only for the filtered attribute.
  ASSERT_TRUE(Run("update " + e + " set salary = 1").ok());
  EXPECT_EQ(active_->fired_count(), 1u);
}

TEST_F(TriggerTest, MigrateAndDeleteEvents) {
  ASSERT_TRUE(active_
                  ->DefineTrigger(
                      "trigger promo on migrate of manager do "
                      "update $self set dependents = 0")
                  .ok());
  std::string e = Run("create employee ()").value();
  ASSERT_TRUE(Run("tick").ok());
  ASSERT_TRUE(
      Run("migrate " + e + " to manager set officialcar = 'car'").ok());
  EXPECT_EQ(active_->fired_count(), 1u);
  EXPECT_EQ(Run("select x.dependents from x in manager").value(), "0");
  // Migrating *away* does not match `of manager` (subject's class after
  // the migration is employee).
  ASSERT_TRUE(Run("tick").ok());
  ASSERT_TRUE(Run("migrate " + e + " to employee").ok());
  EXPECT_EQ(active_->fired_count(), 1u);

  size_t fired = active_->fired_count();
  ASSERT_TRUE(
      active_->DefineTrigger("trigger bye on delete do tick").ok());
  ASSERT_TRUE(Run("delete " + e).ok());
  EXPECT_EQ(active_->fired_count(), fired + 1);
}

TEST_F(TriggerTest, CascadesRunTransitively) {
  // update salary -> bump birthyear -> (no further match).
  ASSERT_TRUE(active_
                  ->DefineTrigger(
                      "trigger chain1 on update of employee.salary do "
                      "update $self set birthyear = 2000")
                  .ok());
  ASSERT_TRUE(active_
                  ->DefineTrigger(
                      "trigger chain2 on update of employee.birthyear do "
                      "update $self set office = 'moved'")
                  .ok());
  std::string e = Run("create employee ()").value();
  ASSERT_TRUE(Run("update " + e + " set salary = 1").ok());
  EXPECT_EQ(active_->fired_count(), 2u);
  EXPECT_EQ(Run("select x.office from x in employee").value(), "'moved'");
}

TEST_F(TriggerTest, NonTerminatingCascadeIsStopped) {
  // The termination problem the paper flags: a rule that re-fires itself.
  ASSERT_TRUE(active_
                  ->DefineTrigger(
                      "trigger loop on update of employee.salary do "
                      "update $self set salary = 1")
                  .ok());
  std::string e = Run("create employee ()").value();
  Result<std::string> r = Run("update " + e + " set salary = 2");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r.status().message().find("loop"), std::string::npos);
}

TEST_F(TriggerTest, DefinitionValidation) {
  ASSERT_TRUE(active_->DefineTrigger("trigger a on delete do check").ok());
  EXPECT_FALSE(
      active_->DefineTrigger("trigger a on delete do check").ok());  // dup
  // Unparseable actions are rejected at definition time, not at firing.
  EXPECT_FALSE(active_
                   ->DefineTrigger("trigger b on delete do bogus stmt")
                   .ok());
  EXPECT_EQ(active_->TriggerNames().size(), 1u);
  EXPECT_TRUE(active_->DropTrigger("a").ok());
  EXPECT_FALSE(active_->DropTrigger("a").ok());
}

TEST_F(TriggerTest, ExecuteAcceptsDefinitionForms) {
  // The facade accepts the Section 7 definition statements directly and
  // folds constraints into `check`.
  EXPECT_EQ(Run("trigger starter on create of employee do "
                "update $self set salary = 10")
                .value(),
            "trigger starter defined");
  EXPECT_EQ(Run("constraint pos on employee always x.salary > 0").value(),
            "constraint pos defined");
  std::string e = Run("create employee ()").value();
  EXPECT_EQ(Run("check").value(),
            "consistent (and 1 temporal constraints hold)");
  // Break the constraint (retroactively) and `check` reports it.
  ASSERT_TRUE(db_.UpdateAttributeAt(Oid{1}, "salary", Interval(0, 0),
                                    Value::Integer(-1))
                  .ok());
  Result<std::string> r = Run("check");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConsistencyViolation);
  // Bad definitions are rejected through the same path.
  EXPECT_FALSE(Run("trigger bad on explode do check").ok());
  EXPECT_FALSE(Run("constraint bad on employee never x").ok());
  (void)e;
}

TEST_F(TriggerTest, QueriesFireNothing) {
  ASSERT_TRUE(
      active_->DefineTrigger("trigger any on update do tick").ok());
  (void)Run("create employee ()");
  ASSERT_TRUE(Run("select x from x in employee").ok());
  ASSERT_TRUE(Run("show classes").ok());
  EXPECT_EQ(active_->fired_count(), 0u);
}

}  // namespace
}  // namespace tchimera
