// Wire-protocol and resilience tests for the socket server
// (src/server/server.h). The adversarial half of this file feeds the
// server what real networks produce — torn frames, hostile length
// prefixes, garbage, clients that vanish mid-request or stop reading —
// and requires the same outcome every time: an error frame or a closed
// connection, never a crash and never a leaked pooled session (proved by
// the server still answering well-formed traffic afterwards).
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_fs.h"
#include "query/session.h"
#include "server/client.h"
#include "server/net.h"
#include "server/server.h"
#include "server/wire.h"
#include "storage/group_commit.h"
#include "storage/recovery.h"
#include "storage/serializer.h"

namespace tchimera {
namespace {

namespace stdfs = std::filesystem;

std::string FreshDir(const std::string& name) {
  stdfs::path dir = stdfs::temp_directory_path() / ("tchimera_srv_" + name);
  std::error_code ec;
  stdfs::remove_all(dir, ec);
  stdfs::create_directories(dir, ec);
  return dir.string();
}

// An in-memory engine + server, torn down in reverse order.
struct TestServer {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<Server> server;

  static TestServer Start(ServerOptions options = {}) {
    TestServer t;
    t.engine = std::make_unique<Engine>();
    options.port = 0;  // ephemeral
    t.server = std::make_unique<Server>(t.engine.get(), options);
    Status s = t.server->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
    return t;
  }

  Result<std::unique_ptr<Client>> Connect(ClientOptions opts = {}) {
    return Client::Connect("127.0.0.1", server->port(), opts);
  }

  // A raw connection that has consumed the hello frame — the entry point
  // for sending bytes no well-behaved client would.
  int RawConnect() {
    Result<int> fd = ConnectTcp("127.0.0.1", server->port(), 5000);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    char hello[9];  // 5-byte header + u32 version
    Status s = RecvExactly(fd.value(), hello, sizeof(hello), 5000);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return fd.value();
  }
};

// Reads one frame from a raw fd. Returns false on EOF/error (closed).
bool ReadRawFrame(int fd, Frame* frame) {
  char header[5];
  if (!RecvExactly(fd, header, sizeof(header), 5000).ok()) return false;
  uint32_t length = static_cast<unsigned char>(header[0]) |
                    (static_cast<uint32_t>(
                         static_cast<unsigned char>(header[1]))
                     << 8) |
                    (static_cast<uint32_t>(
                         static_cast<unsigned char>(header[2]))
                     << 16) |
                    (static_cast<uint32_t>(
                         static_cast<unsigned char>(header[3]))
                     << 24);
  frame->type = static_cast<FrameType>(static_cast<unsigned char>(header[4]));
  frame->payload.resize(length);
  if (length == 0) return true;
  return RecvExactly(fd, frame->payload.data(), length, 5000).ok();
}

// After an adversarial exchange, the server must still answer a
// well-formed request — the proof that no session leaked and no thread
// died.
void ExpectServerHealthy(TestServer& t) {
  Result<std::unique_ptr<Client>> client = t.Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<std::string> pong = (*client)->Execute("show now");
  EXPECT_TRUE(pong.ok()) << pong.status().ToString();
}

// --- happy path ------------------------------------------------------------

TEST(ServerTest, ExecuteRoundTrip) {
  TestServer t = TestServer::Start();
  Result<std::unique_ptr<Client>> client = t.Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Client& c = **client;

  Result<std::string> r = c.Execute(
      "define class person attributes name: string, age: integer end");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  r = c.Execute("create person (name: 'ada', age: 36)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "i1");
  r = c.Execute("select x.name from x in person");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "'ada'");

  // Statement errors come back as non-retryable error frames carrying
  // the engine's status, and the connection stays usable.
  r = c.Execute("select utter nonsense");
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(c.last_error_retryable());
  r = c.Execute("select x.age from x in person");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "36");

  EXPECT_TRUE(c.Ping().ok());
  EXPECT_GE(t.server->stats().results.load(), 3u);
}

TEST(ServerTest, ManyConcurrentClients) {
  ServerOptions options;
  options.worker_threads = 4;
  TestServer t = TestServer::Start(options);
  {
    Result<std::unique_ptr<Client>> setup = t.Connect();
    ASSERT_TRUE(setup.ok());
    ASSERT_TRUE(
        (*setup)
            ->Execute("define class counter attributes v: integer end")
            .ok());
    ASSERT_TRUE((*setup)->Execute("create counter (v: 0)").ok());
  }
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t, &failures, i] {
      Result<std::unique_ptr<Client>> client = t.Connect();
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int j = 0; j < kPerThread; ++j) {
        // Writers hammer one object (conflict pressure); readers verify
        // response pairing under interleaving.
        Result<std::string> r =
            (i % 2 == 0)
                ? (*client)->ExecuteRetrying("update i1 set v = " +
                                             std::to_string(i * 100 + j))
                : (*client)->Execute("select x.v from x in counter");
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  ExpectServerHealthy(t);
}

// --- adversarial wire input ------------------------------------------------

TEST(ServerTest, OversizedLengthPrefixGetsErrorFrameThenClose) {
  TestServer t = TestServer::Start();
  int fd = t.RawConnect();
  // 4 GiB frame announcement: must be rejected from the header alone.
  std::string evil = {'\xff', '\xff', '\xff', '\xff',
                      static_cast<char>(FrameType::kRequest)};
  ASSERT_TRUE(SendAll(fd, evil, 5000).ok());
  Frame reply;
  ASSERT_TRUE(ReadRawFrame(fd, &reply));
  EXPECT_EQ(reply.type, FrameType::kError);
  bool retryable = true;
  Status s = DecodeError(reply.payload, &retryable);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(retryable);
  // ...and then the stream ends.
  EXPECT_FALSE(ReadRawFrame(fd, &reply));
  CloseFd(fd);
  EXPECT_GE(t.server->stats().protocol_errors.load(), 1u);
  ExpectServerHealthy(t);
}

TEST(ServerTest, UnknownFrameTypeGetsErrorFrameThenClose) {
  TestServer t = TestServer::Start();
  int fd = t.RawConnect();
  std::string evil = {'\x00', '\x00', '\x00', '\x00', '\x7f'};
  ASSERT_TRUE(SendAll(fd, evil, 5000).ok());
  Frame reply;
  ASSERT_TRUE(ReadRawFrame(fd, &reply));
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_FALSE(ReadRawFrame(fd, &reply));
  CloseFd(fd);
  ExpectServerHealthy(t);
}

TEST(ServerTest, ServerOnlyFrameTypeFromClientIsRejected) {
  TestServer t = TestServer::Start();
  int fd = t.RawConnect();
  std::string evil;
  AppendFrame(&evil, FrameType::kResult, "i am the server now");
  ASSERT_TRUE(SendAll(fd, evil, 5000).ok());
  Frame reply;
  ASSERT_TRUE(ReadRawFrame(fd, &reply));
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_FALSE(ReadRawFrame(fd, &reply));
  CloseFd(fd);
  ExpectServerHealthy(t);
}

TEST(ServerTest, RequestMissingFlagsByteIsRejected) {
  TestServer t = TestServer::Start();
  int fd = t.RawConnect();
  std::string evil;
  AppendFrame(&evil, FrameType::kRequest, "");  // zero-length payload
  ASSERT_TRUE(SendAll(fd, evil, 5000).ok());
  Frame reply;
  ASSERT_TRUE(ReadRawFrame(fd, &reply));
  EXPECT_EQ(reply.type, FrameType::kError);
  CloseFd(fd);
  ExpectServerHealthy(t);
}

TEST(ServerTest, TornFrameThenDisconnectLeavesServerHealthy) {
  TestServer t = TestServer::Start();
  for (int i = 1; i < 5; ++i) {
    int fd = t.RawConnect();
    std::string frame = EncodeRequest("select 1", 0);
    // Send an i-byte prefix of a valid frame, then vanish.
    ASSERT_TRUE(SendAll(fd, std::string_view(frame).substr(0, i), 5000).ok());
    CloseFd(fd);
  }
  ExpectServerHealthy(t);
}

TEST(ServerTest, GarbageStormNeverCrashesOrLeaksSessions) {
  ServerOptions options;
  options.worker_threads = 2;  // a tiny pool leaks loudly
  TestServer t = TestServer::Start(options);
  // Deterministic pseudo-garbage (no real randomness in tests).
  uint64_t x = 0x243f6a8885a308d3ULL;
  for (int round = 0; round < 40; ++round) {
    int fd = t.RawConnect();
    std::string garbage;
    for (int i = 0; i < 64; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      garbage.push_back(static_cast<char>(x >> 56));
    }
    (void)SendAll(fd, garbage, 5000);  // peer may already have closed us
    CloseFd(fd);
  }
  ExpectServerHealthy(t);
  EXPECT_GE(t.server->stats().protocol_errors.load(), 1u);
}

TEST(ServerTest, MidRequestDisconnectDropsReplyNotSession) {
  ServerOptions options;
  options.worker_threads = 2;
  TestServer t = TestServer::Start(options);
  // More vanishing requesters than pooled sessions: if a disconnect
  // leaked its session, the pool would drain and the final health check
  // would hang or fail.
  for (int i = 0; i < 10; ++i) {
    int fd = t.RawConnect();
    ASSERT_TRUE(SendAll(fd, EncodeRequest("show now", 0), 5000).ok());
    CloseFd(fd);  // gone before the reply
  }
  ExpectServerHealthy(t);
}

TEST(ServerTest, SlowReaderIsClosedAtTheOutputBound) {
  ServerOptions options;
  // Big enough for the 9-byte hello, too small for a fat result frame:
  // the bounded output buffer must close the connection instead of
  // buffering without limit for a reader that never drains.
  options.max_output_buffer_bytes = 64;
  TestServer t = TestServer::Start(options);
  Result<std::unique_ptr<Client>> client = t.Connect();
  ASSERT_TRUE(client.ok());
  Client& c = **client;
  // Store a value long enough that its result frame exceeds the bound.
  // (The setup results — "class blob defined", "i1" — fit under it and
  // drain immediately, so only the fat reply trips the limit.)
  std::string fat(256, 'x');
  ASSERT_TRUE(c.Execute("define class blob attributes s: string end").ok());
  ASSERT_TRUE(c.Execute("create blob (s: '" + fat + "')").ok());
  Result<std::string> r = c.Execute("select x.s from x in blob");
  EXPECT_FALSE(r.ok());  // connection died before the reply arrived
  EXPECT_GE(t.server->stats().slow_reader_closes.load(), 1u);
  ExpectServerHealthy(t);
}

// --- backpressure ----------------------------------------------------------

TEST(ServerTest, FullRequestQueueRejectsRetryably) {
  ServerOptions options;
  options.max_pending_requests = 0;  // admit nothing: every request sheds
  TestServer t = TestServer::Start(options);
  Result<std::unique_ptr<Client>> client = t.Connect();
  ASSERT_TRUE(client.ok());
  Result<std::string> r = (*client)->Execute("show now");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE((*client)->last_error_retryable());
  EXPECT_GE(t.server->stats().admission_rejections.load(), 1u);

  // ExecuteRetrying honors the retryable bit: it backs off and resends
  // until its budget runs out, then surfaces the rejection.
  ClientOptions copts;
  copts.max_retries = 3;
  copts.initial_backoff_ms = 1;
  Result<std::unique_ptr<Client>> retrying = t.Connect(copts);
  ASSERT_TRUE(retrying.ok());
  r = (*retrying)->ExecuteRetrying("show now");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ((*retrying)->retries_absorbed(), 3u);
}

TEST(ServerTest, CommitBacklogShedsWritesButServesReads) {
  std::atomic<uint64_t> backlog{0};
  ServerOptions options;
  options.max_commit_backlog = 100;
  options.commit_backlog = [&backlog] { return backlog.load(); };
  TestServer t = TestServer::Start(options);
  Result<std::unique_ptr<Client>> client = t.Connect();
  ASSERT_TRUE(client.ok());
  Client& c = **client;
  ASSERT_TRUE(
      c.Execute("define class d attributes v: integer end").ok());
  ASSERT_TRUE(c.Execute("create d (v: 1)").ok());

  backlog.store(101);  // the group-commit pipeline "saturates"
  Result<std::string> w = c.Execute("update i1 set v = 2");
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(c.last_error_retryable());
  // Reads never touch the sink, so they are admitted regardless.
  Result<std::string> rd = c.Execute("select x.v from x in d");
  ASSERT_TRUE(rd.ok()) << rd.status().ToString();
  EXPECT_EQ(*rd, "1");

  backlog.store(0);  // drained: writes flow again
  EXPECT_TRUE(c.Execute("update i1 set v = 2").ok());
}

// --- retry policy (the refactor the server motivated) ----------------------

TEST(ServerTest, WriteRetryPolicySurfacesConflictWithoutFallback) {
  // With exclusive_fallback=false the session must hand kConflict to the
  // caller instead of silently escalating to the writer lock; with the
  // default policy the same contention always succeeds. Exercised under
  // real contention so the policy's branch actually runs.
  Engine engine;
  {
    Session setup = engine.OpenSession();
    ASSERT_TRUE(
        setup.Execute("define class c attributes v: integer end").ok());
    ASSERT_TRUE(setup.Execute("create c (v: 0)").ok());
  }
  constexpr int kThreads = 4;
  constexpr int kWrites = 50;
  std::atomic<int> surfaced_conflicts{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&engine, &surfaced_conflicts, &failures, i] {
      Session s = engine.OpenSession();
      s.set_write_retry_policy(WriteRetryPolicy{1, false});
      for (int j = 0; j < kWrites; ++j) {
        std::string stmt = "update i1 set v = " + std::to_string(i * 1000 + j);
        // The caller-owned retry loop a server implements.
        while (true) {
          Result<std::string> r = s.Execute(stmt);
          if (r.ok()) break;
          if (r.status().code() == StatusCode::kConflict) {
            surfaced_conflicts.fetch_add(1);
            continue;
          }
          failures.fetch_add(1);
          break;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // Every write eventually landed despite the policy never taking the
  // exclusive fallback; the DDL path (which *requires* the exclusive
  // lock) already ran during setup under the same policy default.
  Session check = engine.OpenSession();
  Result<std::string> v = check.Execute("select x.v from x in c");
  ASSERT_TRUE(v.ok());
}

// --- crash equivalence -----------------------------------------------------

// Recovers `dir` the way tchimera_serve does at boot and returns the
// state hash (definitions included).
uint32_t RecoverAndHash(const std::string& dir) {
  RecoveryManager recovery(dir + "/snapshot.tchdb", dir + "/journal.tql");
  RecoveryStats stats;
  Result<std::unique_ptr<Database>> loaded = recovery.LoadSnapshot(&stats);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  Engine engine(std::move(loaded).value());
  Session session = engine.OpenSession();
  for (const std::string& definition : recovery.snapshot_definitions()) {
    EXPECT_TRUE(session.Execute(definition).ok()) << definition;
  }
  Status replayed = recovery.ReplayJournals(
      [&session](const std::string& statement) {
        return session.Execute(statement).status();
      },
      &stats);
  EXPECT_TRUE(replayed.ok()) << replayed.ToString();
  EXPECT_TRUE(RecoveryManager::Audit(&engine.writer_db(), AuditMode::kFail,
                                     &stats)
                  .ok());
  Result<uint32_t> hash = DatabaseStateHash(
      engine.writer_db(), engine.active().DefinitionStatements());
  EXPECT_TRUE(hash.ok()) << hash.status().ToString();
  return hash.ok() ? hash.value() : 0;
}

const std::vector<std::string>& CrashWorkload() {
  static const std::vector<std::string>& statements =
      *new std::vector<std::string>{
          "define class person attributes name: temporal(string), "
          "birthyear: integer end",
          "create person (name: 'Ann', birthyear: 1970)",
          "create person (name: 'Bob', birthyear: 1980)",
          "tick 3",
          "update i1 set name = 'Anna'",
          "update i2 set name = 'Bobby'",
          "delete i2",
      };
  return statements;
}

#ifdef TCHIMERA_SERVE_BIN
// The acceptance criterion for serving durability: a server killed with
// SIGKILL mid-operation recovers to state identical to a clean
// shutdown's, because every acknowledged statement was group-committed
// (fdatasynced) before its result frame left the server.
TEST(ServerCrashTest, KillNineRecoversToCleanShutdownState) {
  const std::string crash_dir = FreshDir("kill9");
  const std::string clean_dir = FreshDir("kill9_clean");
  const std::string port_file = crash_dir + "/port";

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    std::string port_flag = "--port-file=" + port_file;
    ::execl(TCHIMERA_SERVE_BIN, "tchimera_serve", "--port=0",
            port_flag.c_str(), crash_dir.c_str(), (char*)nullptr);
    _exit(127);  // exec failed
  }
  // Wait for the port file (write-then-rename, so a read sees all of it).
  uint16_t port = 0;
  for (int i = 0; i < 200 && port == 0; ++i) {
    Result<std::string> contents =
        FileSystem::Default()->ReadFileToString(port_file);
    if (contents.ok() && !contents.value().empty()) {
      port = static_cast<uint16_t>(std::atoi(contents.value().c_str()));
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_NE(port, 0) << "server never published its port";

  {
    Result<std::unique_ptr<Client>> client =
        Client::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    for (const std::string& stmt : CrashWorkload()) {
      Result<std::string> r = (*client)->ExecuteRetrying(stmt);
      ASSERT_TRUE(r.ok()) << stmt << ": " << r.status().ToString();
    }
  }
  // Every statement above was acknowledged; now the power goes out.
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);

  // The clean-shutdown twin: same workload, in-process, orderly Close.
  {
    Engine engine;
    GroupCommitJournal sink;
    ASSERT_TRUE(sink.Open(clean_dir + "/journal.tql").ok());
    engine.set_commit_sink(&sink);
    Session session = engine.OpenSession();
    for (const std::string& stmt : CrashWorkload()) {
      ASSERT_TRUE(session.Execute(stmt).ok()) << stmt;
    }
    sink.Close();
  }

  EXPECT_EQ(RecoverAndHash(crash_dir), RecoverAndHash(clean_dir));
}
#endif  // TCHIMERA_SERVE_BIN

}  // namespace
}  // namespace tchimera
