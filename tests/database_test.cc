// Tests for the Database: object lifecycle, type-checked updates,
// valid-time updates, migration (Section 5.2), deletion, and the Table 3
// functions pi / m_lifespan / ref.
#include <gtest/gtest.h>

#include "core/db/consistency.h"
#include "core/db/database.h"
#include "core/types/type_registry.h"
#include "core/values/temporal_function.h"
#include "workload/project_schema.h"

namespace tchimera {
namespace {

Value I(int64_t v) { return Value::Integer(v); }

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(InstallProjectSchema(&db_).ok()); }
  Database db_;
};

TEST_F(DatabaseTest, CreateObjectDefaultsAndExtents) {
  Oid e = db_.CreateObject("employee").value();
  const Object* obj = db_.GetObject(e);
  ASSERT_NE(obj, nullptr);
  // Temporal attributes default to null asserted from creation, so the
  // object is consistent by construction.
  EXPECT_EQ(obj->Attribute("salary")->kind(), ValueKind::kTemporal);
  EXPECT_TRUE(obj->Attribute("salary")->AsTemporal().At(0)->is_null());
  EXPECT_TRUE(obj->Attribute("office")->is_null());
  // Instance of employee; member of employee and person.
  EXPECT_TRUE(db_.GetClass("employee")->InProperExtentAt(e, 0));
  EXPECT_TRUE(db_.GetClass("employee")->InExtentAt(e, 0));
  EXPECT_TRUE(db_.GetClass("person")->InExtentAt(e, 0));
  EXPECT_FALSE(db_.GetClass("person")->InProperExtentAt(e, 0));
  EXPECT_FALSE(db_.GetClass("manager")->InExtentAt(e, 0));
  EXPECT_TRUE(CheckDatabaseConsistency(db_).ok());
}

TEST_F(DatabaseTest, CreateObjectValidatesInits) {
  // Unknown attribute.
  EXPECT_FALSE(
      db_.CreateObject("employee", {{"ghost", I(1)}}).ok());
  // Type error.
  Result<Oid> bad =
      db_.CreateObject("employee", {{"salary", Value::String("lots")}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
  // Unknown class.
  EXPECT_FALSE(db_.CreateObject("ghost").ok());
  // Duplicate init.
  EXPECT_FALSE(
      db_.CreateObject("employee", {{"office", Value::String("a")},
                                    {"office", Value::String("b")}})
          .ok());
}

TEST_F(DatabaseTest, CreateObjectWithFullHistory) {
  ASSERT_TRUE(db_.AdvanceTo(50).ok());
  TemporalFunction salary;
  ASSERT_TRUE(salary.Define(Interval(10, 30), I(100)).ok());
  ASSERT_TRUE(salary.AssertFrom(31, I(200)).ok());
  Oid e = db_.CreateObjectAt("employee", 10,
                             {{"salary", Value::Temporal(salary)}})
              .value();
  EXPECT_EQ(db_.OLifespan(e).value(), Interval::FromUntilNow(10));
  EXPECT_EQ(db_.HStateOf(e, 20).value().FieldValue("salary")->AsInteger(),
            100);
  EXPECT_TRUE(CheckDatabaseConsistency(db_).ok());
  // A history beginning before the lifespan is rejected.
  TemporalFunction early;
  ASSERT_TRUE(early.Define(Interval(5, 30), I(1)).ok());
  EXPECT_FALSE(db_.CreateObjectAt("employee", 10,
                                  {{"salary", Value::Temporal(early)}})
                   .ok());
  // Creations in the future are rejected.
  EXPECT_FALSE(db_.CreateObjectAt("employee", 60).ok());
}

TEST_F(DatabaseTest, UpdateAttributeSemantics) {
  Oid e = db_.CreateObject(
                "employee",
                {{"salary", I(100)}, {"office", Value::String("A1")}})
              .value();
  ASSERT_TRUE(db_.AdvanceTo(10).ok());
  // Temporal update: history accrues.
  ASSERT_TRUE(db_.UpdateAttribute(e, "salary", I(150)).ok());
  EXPECT_EQ(db_.HStateOf(e, 5).value().FieldValue("salary")->AsInteger(),
            100);
  EXPECT_EQ(db_.HStateOf(e, 10).value().FieldValue("salary")->AsInteger(),
            150);
  // Static update: the past is gone.
  ASSERT_TRUE(
      db_.UpdateAttribute(e, "office", Value::String("B2")).ok());
  EXPECT_EQ(db_.SStateOf(e).value().FieldValue("office")->AsString(), "B2");
  // Type checking guards updates.
  EXPECT_FALSE(db_.UpdateAttribute(e, "salary", Value::Bool(true)).ok());
  EXPECT_FALSE(db_.UpdateAttribute(e, "ghost", I(1)).ok());
  EXPECT_FALSE(db_.UpdateAttribute(Oid{999}, "salary", I(1)).ok());
}

TEST_F(DatabaseTest, ValidTimeUpdates) {
  Oid e = db_.CreateObject("employee", {{"salary", I(100)}}).value();
  ASSERT_TRUE(db_.AdvanceTo(50).ok());
  // Retroactive correction of a past interval.
  ASSERT_TRUE(
      db_.UpdateAttributeAt(e, "salary", Interval(10, 19), I(120)).ok());
  EXPECT_EQ(db_.HStateOf(e, 5).value().FieldValue("salary")->AsInteger(),
            100);
  EXPECT_EQ(db_.HStateOf(e, 15).value().FieldValue("salary")->AsInteger(),
            120);
  EXPECT_EQ(db_.HStateOf(e, 30).value().FieldValue("salary")->AsInteger(),
            100);
  // Valid-time updates require a temporal attribute...
  EXPECT_FALSE(
      db_.UpdateAttributeAt(e, "office", Interval(10, 19),
                            Value::String("X"))
          .ok());
  // ...and an interval within the lifespan.
  EXPECT_FALSE(
      db_.UpdateAttributeAt(e, "salary", Interval(100, 200), I(1)).ok());
  EXPECT_TRUE(CheckDatabaseConsistency(db_).ok());
}

TEST_F(DatabaseTest, MigrationPromoteDemote) {
  // The Section 5.2 scenario: employee -> manager -> employee.
  Oid e = db_.CreateObject("employee", {{"salary", I(100)}}).value();
  ASSERT_TRUE(db_.AdvanceTo(30).ok());
  ASSERT_TRUE(db_.Migrate(e, "manager",
                          {{"dependents", I(2)},
                           {"officialcar", Value::String("sedan")}})
                  .ok());
  const Object* obj = db_.GetObject(e);
  EXPECT_EQ(obj->CurrentClass().value(), "manager");
  EXPECT_EQ(obj->SState().FieldValue("officialcar")->AsString(), "sedan");
  EXPECT_TRUE(db_.GetClass("manager")->InProperExtentAt(e, 30));
  EXPECT_FALSE(db_.GetClass("manager")->InExtentAt(e, 29));
  EXPECT_TRUE(db_.GetClass("employee")->InExtentAt(e, 30));
  EXPECT_TRUE(CheckDatabaseConsistency(db_).ok());

  ASSERT_TRUE(db_.AdvanceTo(60).ok());
  ASSERT_TRUE(db_.Migrate(e, "employee").ok());
  obj = db_.GetObject(e);
  // Static attribute dropped without trace; temporal attribute retained
  // but closed (Section 5.2).
  EXPECT_EQ(obj->Attribute("officialcar"), nullptr);
  const Value* dependents = obj->Attribute("dependents");
  ASSERT_NE(dependents, nullptr);
  EXPECT_EQ(dependents->AsTemporal().At(45)->AsInteger(), 2);
  EXPECT_EQ(dependents->AsTemporal().At(60), nullptr);
  EXPECT_FALSE(db_.GetClass("manager")->InExtentAt(e, 60));
  EXPECT_TRUE(db_.GetClass("manager")->InExtentAt(e, 45));
  EXPECT_TRUE(CheckDatabaseConsistency(db_).ok());
  // m_lifespan(e, manager) = [30, 59].
  EXPECT_EQ(db_.MLifespan(e, "manager").value().ToString(), "{[30,59]}");
}

TEST_F(DatabaseTest, MigrationGuards) {
  Oid e = db_.CreateObject("employee").value();
  // Cannot migrate across hierarchies (Invariant 6.2).
  EXPECT_FALSE(db_.Migrate(e, "project").ok());
  EXPECT_FALSE(db_.Migrate(e, "ghost").ok());
  EXPECT_FALSE(db_.Migrate(Oid{999}, "manager").ok());
  // Migration to the same class is a no-op.
  EXPECT_TRUE(db_.Migrate(e, "employee").ok());
  // Added values are type checked.
  Status s = db_.Migrate(e, "manager",
                         {{"dependents", Value::String("two")}});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST_F(DatabaseTest, DeleteRespectsReferentialIntegrity) {
  Oid p = db_.CreateObject("person").value();
  Oid proj =
      db_.CreateObject("project",
                       {{"participants", Value::Set({Value::OfOid(p)})}})
          .value();
  ASSERT_TRUE(db_.AdvanceTo(10).ok());
  // p is still referenced by the project's current participants.
  Status s = db_.DeleteObject(p);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kConsistencyViolation);
  // Clear the reference, then deletion succeeds.
  ASSERT_TRUE(
      db_.UpdateAttribute(proj, "participants", Value::EmptySet()).ok());
  EXPECT_TRUE(db_.DeleteObject(p).ok());
  EXPECT_FALSE(db_.GetObject(p)->alive());
  // Deleted at now=10: exists at 10, gone at 11.
  EXPECT_EQ(db_.OLifespan(p).value(), Interval(0, 10));
  db_.Tick();
  EXPECT_TRUE(db_.Pi("person", 10).size() >= 1);
  for (Oid oid : db_.Pi("person", 11)) EXPECT_NE(oid, p);
  EXPECT_TRUE(CheckDatabaseConsistency(db_).ok());
  // Double deletion fails.
  EXPECT_FALSE(db_.DeleteObject(p).ok());
}

TEST_F(DatabaseTest, PiIsTimeIndexed) {
  Oid a = db_.CreateObject("employee").value();
  ASSERT_TRUE(db_.AdvanceTo(10).ok());
  Oid b = db_.CreateObject("employee").value();
  EXPECT_EQ(db_.Pi("employee", 5).size(), 1u);
  EXPECT_EQ(db_.Pi("employee", 10).size(), 2u);
  EXPECT_EQ(db_.Pi("employee", kNow).size(), 2u);
  EXPECT_TRUE(db_.Pi("ghost", 5).empty());
  (void)a;
  (void)b;
}

TEST_F(DatabaseTest, ClassAttributeUpdates) {
  ASSERT_TRUE(
      db_.SetClassAttribute("project", "average-participants", I(20)).ok());
  EXPECT_EQ(db_.GetClass("project")
                ->CAttributeValue("average-participants")
                .value(),
            I(20));
  EXPECT_FALSE(
      db_.SetClassAttribute("project", "ghost", I(1)).ok());
  EXPECT_FALSE(db_.SetClassAttribute("project", "average-participants",
                                     Value::String("x"))
                   .ok());
  EXPECT_FALSE(db_.SetClassAttribute("ghost", "x", I(1)).ok());
  // The class history record is the metaclass instance state (Section 4).
  Value history = db_.ClassHistory("project").value();
  EXPECT_EQ(*history.FieldValue("average-participants"), I(20));
}

}  // namespace
}  // namespace tchimera
