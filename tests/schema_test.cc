// Tests for classes (Definition 4.1): derived types, history records,
// extent maintenance, metaclasses, and Rule 6.1 refinement at class
// definition time.
#include <gtest/gtest.h>

#include "core/db/database.h"
#include "core/schema/refinement.h"
#include "core/types/type_registry.h"

namespace tchimera {
namespace {

const Type* TInt() { return types::Integer(); }
const Type* TStr() { return types::String(); }
const Type* TTemp(const Type* t) { return types::Temporal(t).value(); }

TEST(ClassDefTest, KindFollowsCAttributes) {
  // Definition 4.1: a class is historical iff it has a temporal
  // c-attribute — instance attributes do not matter.
  ClassDef static_cls("a", 0, {}, {{"x", TTemp(TInt())}}, {},
                      {{"count", TInt()}}, {});
  EXPECT_EQ(static_cls.kind(), ClassKind::kStatic);
  ClassDef historical_cls("b", 0, {}, {{"x", TInt()}}, {},
                          {{"count", TTemp(TInt())}}, {});
  EXPECT_EQ(historical_cls.kind(), ClassKind::kHistorical);
}

TEST(ClassDefTest, DerivedTypes) {
  ClassDef cls("c", 0, {},
               {{"name", TTemp(TStr())},
                {"objective", TStr()},
                {"score", TTemp(TInt())}},
               {}, {}, {});
  EXPECT_EQ(cls.StructuralType()->ToString(),
            "record-of(name:temporal(string),objective:string,"
            "score:temporal(integer))");
  EXPECT_EQ(cls.HistoricalType()->ToString(),
            "record-of(name:string,score:integer)");
  EXPECT_EQ(cls.StaticType()->ToString(), "record-of(objective:string)");
}

TEST(ClassDefTest, DerivedTypesNullWhenEmpty) {
  // h_type is null for all-static classes, s_type for all-temporal ones
  // (footnote 5 of the paper).
  ClassDef all_static("s", 0, {}, {{"x", TInt()}}, {}, {}, {});
  EXPECT_EQ(all_static.HistoricalType(), nullptr);
  EXPECT_NE(all_static.StaticType(), nullptr);
  ClassDef all_temporal("t", 0, {}, {{"x", TTemp(TInt())}}, {}, {}, {});
  EXPECT_EQ(all_temporal.StaticType(), nullptr);
  EXPECT_NE(all_temporal.HistoricalType(), nullptr);
  ClassDef empty("e", 0, {}, {}, {}, {}, {});
  EXPECT_EQ(empty.StructuralType(), nullptr);
}

TEST(ClassDefTest, ExtentMaintenance) {
  ClassDef cls("c", 0, {}, {}, {}, {}, {});
  ASSERT_TRUE(cls.AddMember(Oid{1}, 5).ok());
  ASSERT_TRUE(cls.AddMember(Oid{2}, 10).ok());
  EXPECT_FALSE(cls.InExtentAt(Oid{1}, 4));
  EXPECT_TRUE(cls.InExtentAt(Oid{1}, 5));
  EXPECT_TRUE(cls.InExtentAt(Oid{1}, 100));
  EXPECT_FALSE(cls.InExtentAt(Oid{2}, 9));
  EXPECT_TRUE(cls.InExtentAt(Oid{2}, 10));
  ASSERT_TRUE(cls.RemoveMember(Oid{1}, 20).ok());
  EXPECT_TRUE(cls.InExtentAt(Oid{1}, 19));
  EXPECT_FALSE(cls.InExtentAt(Oid{1}, 20));
  // Member intervals reflect the whole story.
  EXPECT_EQ(cls.MemberIntervals(Oid{1}, 100).ToString(), "{[5,19]}");
  EXPECT_EQ(cls.RawMemberIntervals(Oid{2}).ToString(), "{[10,now]}");
  // Re-adding later gives a non-contiguous membership (fire/rehire).
  ASSERT_TRUE(cls.AddMember(Oid{1}, 30).ok());
  EXPECT_EQ(cls.MemberIntervals(Oid{1}, 100).ToString(), "{[5,19],[30,100]}");
}

TEST(ClassDefTest, RetroactiveMembershipPreservesLaterHistory) {
  ClassDef cls("c", 0, {}, {}, {}, {}, {});
  ASSERT_TRUE(cls.AddMember(Oid{1}, 10).ok());
  ASSERT_TRUE(cls.RemoveMember(Oid{1}, 20).ok());
  // Retroactively add a different member from t=5: must not clobber the
  // removal of Oid{1} at 20.
  ASSERT_TRUE(cls.AddMember(Oid{2}, 5).ok());
  EXPECT_TRUE(cls.InExtentAt(Oid{2}, 5));
  EXPECT_TRUE(cls.InExtentAt(Oid{2}, 50));
  EXPECT_TRUE(cls.InExtentAt(Oid{1}, 15));
  EXPECT_FALSE(cls.InExtentAt(Oid{1}, 25));
}

TEST(ClassDefTest, HistoryRecordShape) {
  ClassDef cls("c", 7, {}, {}, {}, {{"avg", TInt()}}, {});
  ASSERT_TRUE(cls.SetCAttribute("avg", Value::Integer(20), 7).ok());
  ASSERT_TRUE(cls.AddMember(Oid{1}, 7).ok());
  ASSERT_TRUE(cls.AddInstance(Oid{1}, 7).ok());
  Value history = cls.History();
  EXPECT_EQ(*history.FieldValue("avg"), Value::Integer(20));
  EXPECT_EQ(history.FieldValue("ext")->kind(), ValueKind::kTemporal);
  EXPECT_EQ(history.FieldValue("proper-ext")->kind(), ValueKind::kTemporal);
  // PE(t) subset of E(t) by construction.
  EXPECT_TRUE(cls.InExtentAt(Oid{1}, 7));
  EXPECT_TRUE(cls.InProperExtentAt(Oid{1}, 7));
}

TEST(ClassDefTest, TemporalCAttributeKeepsHistory) {
  ClassDef cls("c", 0, {}, {}, {}, {{"avg", TTemp(TInt())}}, {});
  ASSERT_TRUE(cls.SetCAttribute("avg", Value::Integer(10), 5).ok());
  ASSERT_TRUE(cls.SetCAttribute("avg", Value::Integer(30), 9).ok());
  Value v = cls.CAttributeValue("avg").value();
  ASSERT_EQ(v.kind(), ValueKind::kTemporal);
  EXPECT_EQ(*v.AsTemporal().At(6), Value::Integer(10));
  EXPECT_EQ(*v.AsTemporal().At(9), Value::Integer(30));
  EXPECT_FALSE(cls.CAttributeValue("nope").ok());
}

TEST(ClassDefTest, CloseLifespan) {
  ClassDef cls("c", 3, {}, {}, {}, {}, {});
  ASSERT_TRUE(cls.AddMember(Oid{1}, 5).ok());
  EXPECT_TRUE(cls.alive());
  ASSERT_TRUE(cls.CloseLifespan(9).ok());
  EXPECT_FALSE(cls.alive());
  EXPECT_EQ(cls.lifespan(), Interval(3, 9));
  // Extents are clipped with it.
  EXPECT_TRUE(cls.InExtentAt(Oid{1}, 9));
  EXPECT_FALSE(cls.InExtentAt(Oid{1}, 10));
  // Classes are never recreated (Section 4).
  EXPECT_FALSE(cls.CloseLifespan(12).ok());
}

// --- Rule 6.1 refinement matrix ------------------------------------------------

class RefinementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(isa_.AddClass("person", {}).ok());
    ASSERT_TRUE(isa_.AddClass("employee", {"person"}).ok());
  }
  Status Check(const Type* inherited, const Type* refined) {
    return CheckAttributeRefinement({"a", inherited}, {"a", refined}, isa_);
  }
  IsaGraph isa_;
};

TEST_F(RefinementTest, IdentityAndSpecialization) {
  EXPECT_TRUE(Check(TInt(), TInt()).ok());
  EXPECT_TRUE(
      Check(types::Object("person"), types::Object("employee")).ok());
  EXPECT_FALSE(
      Check(types::Object("employee"), types::Object("person")).ok());
}

TEST_F(RefinementTest, NonTemporalMayBecomeTemporal) {
  // Rule 6.1 clause 2, the [6]-inspired direction.
  EXPECT_TRUE(Check(TInt(), TTemp(TInt())).ok());
  EXPECT_TRUE(Check(types::Object("person"),
                    TTemp(types::Object("employee")))
                  .ok());
  // ...but never the reverse.
  Status s = Check(TTemp(TInt()), TInt());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST_F(RefinementTest, TemporalToTemporalSpecializes) {
  EXPECT_TRUE(Check(TTemp(types::Object("person")),
                    TTemp(types::Object("employee")))
                  .ok());
  EXPECT_FALSE(Check(TTemp(types::Object("employee")),
                     TTemp(types::Object("person")))
                   .ok());
}

TEST_F(RefinementTest, MethodVariance) {
  // Covariant result, contravariant inputs.
  MethodDef inherited{"m",
                      {types::Object("employee")},
                      types::Object("person")};
  MethodDef good{"m", {types::Object("person")},
                 types::Object("employee")};
  EXPECT_TRUE(CheckMethodRefinement(inherited, good, isa_).ok());
  MethodDef bad_input{"m", {types::Object("employee")},
                      types::Object("person")};
  bad_input.inputs = {types::Object("employee")};
  EXPECT_TRUE(CheckMethodRefinement(inherited, bad_input, isa_).ok());
  // Narrowing an input violates contravariance... build a real violation:
  MethodDef narrow{"m", {types::Object("employee")},
                   types::Object("person")};
  MethodDef from_person{"m", {types::Object("person")},
                        types::Object("person")};
  EXPECT_FALSE(CheckMethodRefinement(from_person, narrow, isa_).ok());
  // Generalizing the result violates covariance.
  MethodDef widen{"m", {types::Object("employee")},
                  types::Object("person")};
  MethodDef returns_employee{"m",
                             {types::Object("employee")},
                             types::Object("employee")};
  EXPECT_FALSE(
      CheckMethodRefinement(returns_employee, widen, isa_).ok());
  // Arity must match.
  MethodDef nullary{"m", {}, types::Object("person")};
  EXPECT_FALSE(CheckMethodRefinement(inherited, nullary, isa_).ok());
}

TEST(DatabaseSchemaTest, InheritedMembersAreMerged) {
  Database db;
  ClassSpec person;
  person.name = "person";
  person.attributes = {{"name", TTemp(TStr())}, {"birthyear", TInt()}};
  person.methods = {{"greet", {}, TStr()}};
  ASSERT_TRUE(db.DefineClass(person).ok());
  ClassSpec employee;
  employee.name = "employee";
  employee.superclasses = {"person"};
  employee.attributes = {{"salary", TTemp(TInt())}};
  ASSERT_TRUE(db.DefineClass(employee).ok());
  const ClassDef* cls = db.GetClass("employee");
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(cls->attributes().size(), 3u);  // name, birthyear, salary
  EXPECT_NE(cls->FindAttribute("name"), nullptr);
  EXPECT_NE(cls->FindMethod("greet"), nullptr);
  EXPECT_EQ(cls->metaclass(), "m-employee");
}

TEST(DatabaseSchemaTest, RefinementValidatedAtDefineTime) {
  Database db;
  ClassSpec person;
  person.name = "person";
  person.attributes = {{"score", TTemp(TInt())}};
  ASSERT_TRUE(db.DefineClass(person).ok());
  // Attempting to make an inherited temporal attribute static fails.
  ClassSpec bad;
  bad.name = "employee";
  bad.superclasses = {"person"};
  bad.attributes = {{"score", TInt()}};
  Status s = db.DefineClass(bad);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  // The failed definition left no trace.
  EXPECT_EQ(db.GetClass("employee"), nullptr);
  EXPECT_FALSE(db.isa().Contains("employee"));
}

TEST(DatabaseSchemaTest, MultipleInheritanceConflictsMustBeResolved) {
  Database db;
  ClassSpec a;
  a.name = "a";
  a.attributes = {{"x", TInt()}};
  ASSERT_TRUE(db.DefineClass(a).ok());
  ClassSpec b;
  b.name = "b";
  b.attributes = {{"x", TStr()}};
  ASSERT_TRUE(db.DefineClass(b).ok());
  ClassSpec both;
  both.name = "both";
  both.superclasses = {"a", "b"};
  EXPECT_FALSE(db.DefineClass(both).ok());
  // Redeclaring the conflicting member would need a common subtype of
  // integer and string — impossible here, so only agreeing supers work.
  ClassSpec c;
  c.name = "c";
  c.attributes = {{"x", TInt()}};
  c.superclasses = {"a"};
  EXPECT_TRUE(db.DefineClass(c).ok());
}

TEST(DatabaseSchemaTest, SpecValidation) {
  Database db;
  ClassSpec bad_name;
  bad_name.name = "9bad";
  EXPECT_FALSE(db.DefineClass(bad_name).ok());
  ClassSpec reserved;
  reserved.name = "c";
  reserved.c_attributes = {{"ext", TInt()}};
  EXPECT_FALSE(db.DefineClass(reserved).ok());
  ClassSpec any_attr;
  any_attr.name = "c";
  any_attr.attributes = {{"x", types::SetOf(types::Any())}};
  Status s = db.DefineClass(any_attr);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  ClassSpec dangling;
  dangling.name = "c";
  dangling.superclasses = {"ghost"};
  EXPECT_FALSE(db.DefineClass(dangling).ok());
  ClassSpec dup;
  dup.name = "c";
  ASSERT_TRUE(db.DefineClass(dup).ok());
  EXPECT_FALSE(db.DefineClass(dup).ok());
}

TEST(DatabaseSchemaTest, DropClassRules) {
  Database db;
  ClassSpec person;
  person.name = "person";
  ASSERT_TRUE(db.DefineClass(person).ok());
  ClassSpec employee;
  employee.name = "employee";
  employee.superclasses = {"person"};
  ASSERT_TRUE(db.DefineClass(employee).ok());
  // A class with a live subclass cannot be dropped.
  EXPECT_FALSE(db.DropClass("person").ok());
  // A class with members cannot be dropped.
  Oid e = db.CreateObject("employee").value();
  EXPECT_FALSE(db.DropClass("employee").ok());
  db.Tick();
  ASSERT_TRUE(db.DeleteObject(e).ok());
  db.Tick();
  EXPECT_TRUE(db.DropClass("employee").ok());
  EXPECT_FALSE(db.GetClass("employee")->alive());
  EXPECT_FALSE(db.DropClass("employee").ok());  // already deleted
  EXPECT_TRUE(db.DropClass("person").ok());
  EXPECT_FALSE(db.DropClass("ghost").ok());
}

}  // namespace
}  // namespace tchimera
