// Property suite for persistence: across randomized populations (varying
// sizes, history lengths, migration rates), a snapshot round-trip is a
// byte-level fixed point, preserves every object, and yields a database
// that still satisfies the full consistency check.
#include <gtest/gtest.h>

#include "core/db/consistency.h"
#include "core/db/equality.h"
#include "storage/deserializer.h"
#include "storage/serializer.h"
#include "workload/generator.h"

namespace tchimera {
namespace {

struct Shape {
  uint64_t seed;
  size_t persons;
  size_t projects;
  size_t timesteps;
  size_t updates_per_step;
  double migration_rate;
};

class StoragePropertyTest : public ::testing::TestWithParam<Shape> {};

TEST_P(StoragePropertyTest, RoundTripIsFixedPointAndConsistent) {
  const Shape& shape = GetParam();
  Database db;
  PopulationConfig config;
  config.seed = shape.seed;
  config.persons = shape.persons;
  config.projects = shape.projects;
  config.timesteps = shape.timesteps;
  config.updates_per_step = shape.updates_per_step;
  config.migration_rate = shape.migration_rate;
  Result<Population> pop = PopulateDatabase(&db, config);
  ASSERT_TRUE(pop.ok()) << pop.status();
  // Exercise deletion too: remove one task that nothing references.
  if (!pop->tasks.empty()) {
    db.Tick();
    for (Oid task : pop->tasks) {
      if (db.DeleteObject(task).ok()) break;  // first unreferenced task
    }
  }

  std::string text = SaveDatabaseToString(db).value();
  Result<std::unique_ptr<Database>> loaded = LoadDatabaseFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  // Fixed point.
  EXPECT_EQ(SaveDatabaseToString(**loaded).value(), text);
  // Objects preserved exactly.
  ASSERT_EQ((*loaded)->object_count(), db.object_count());
  for (Oid oid : db.AllOids()) {
    const Object* original = db.GetObject(oid);
    const Object* restored = (*loaded)->GetObject(oid);
    ASSERT_NE(restored, nullptr);
    EXPECT_TRUE(EqualByValue(*original, *restored)) << oid.ToString();
    EXPECT_EQ(original->lifespan(), restored->lifespan());
  }
  // The restored database satisfies every model invariant.
  Status check = CheckDatabaseConsistency(**loaded);
  EXPECT_TRUE(check.ok()) << check;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StoragePropertyTest,
    ::testing::Values(Shape{1, 5, 2, 4, 3, 0.0},    // tiny, no migrations
                      Shape{2, 30, 8, 25, 12, 0.3},  // medium, churny
                      Shape{3, 10, 3, 60, 5, 0.8},   // long histories
                      Shape{4, 60, 2, 10, 20, 0.1},  // wide, shallow
                      Shape{5, 1, 1, 100, 2, 0.9},   // single hot object
                      Shape{6, 0, 4, 15, 4, 0.0}));  // no persons at all

}  // namespace
}  // namespace tchimera
