// Tests for the static-analysis subsystem (src/analysis/): the
// diagnostics engine and its JSON round-trip, the schema analyzer (TC0xx)
// and the query analyzer (TC1xx). Every diagnostic code has at least one
// positive fixture (the code fires) and a negative counterpart (the clean
// variant stays clean).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/diagnostic.h"
#include "analysis/fixer.h"
#include "analysis/lint_driver.h"
#include "analysis/query_analyzer.h"
#include "analysis/schema_analyzer.h"
#include "core/db/database.h"
#include "core/types/type_parser.h"
#include "query/interpreter.h"
#include "query/parser.h"

namespace tchimera {
namespace {

// Runs the full lint pipeline (schema pass + replay with query lint) the
// same way the tchimera_lint CLI does.
std::vector<Diagnostic> Lint(const std::string& script) {
  DiagnosticEngine diags;
  LintTqlScript(script, LintOptions{}, &diags);
  return diags.diagnostics();
}

// Schema-only variant (no replay: no TC11x executions).
std::vector<Diagnostic> LintSchema(const std::string& script) {
  DiagnosticEngine diags;
  LintOptions options;
  options.schema_only = true;
  LintTqlScript(script, options, &diags);
  return diags.diagnostics();
}

size_t Count(const std::vector<Diagnostic>& ds, std::string_view code) {
  size_t n = 0;
  for (const Diagnostic& d : ds) {
    if (d.code == code) ++n;
  }
  return n;
}

bool Has(const std::vector<Diagnostic>& ds, std::string_view code) {
  return Count(ds, code) > 0;
}

std::string Messages(const std::vector<Diagnostic>& ds) {
  std::string out;
  for (const Diagnostic& d : ds) {
    out += d.code + ": " + d.message + "\n";
  }
  return out;
}

#define EXPECT_CODE(ds, code) \
  EXPECT_TRUE(Has(ds, code)) << "expected " code " in:\n" << Messages(ds)
#define EXPECT_NO_CODE(ds, code) \
  EXPECT_FALSE(Has(ds, code)) << "unexpected " code " in:\n" << Messages(ds)

#define EXPECT_CLEAN(ds) \
  EXPECT_TRUE((ds).empty()) << "expected no findings, got:\n" << Messages(ds)

// --- TC001: ISA cycles ----------------------------------------------------

TEST(SchemaAnalyzer, IsaCycleDetected) {
  auto ds = LintSchema(
      "define class a under b end;"
      "define class b under a end");
  EXPECT_CODE(ds, "TC001");
}

TEST(SchemaAnalyzer, SelfCycleDetected) {
  auto ds = LintSchema("define class a under a end");
  EXPECT_CODE(ds, "TC001");
}

TEST(SchemaAnalyzer, LinearHierarchyHasNoCycle) {
  auto ds = LintSchema(
      "define class a end;"
      "define class b under a end;"
      "define class c under b end");
  EXPECT_CLEAN(ds);
}

// --- TC002: unknown superclass --------------------------------------------

TEST(SchemaAnalyzer, UnknownSuperclassReported) {
  auto ds = LintSchema("define class a under ghost end");
  EXPECT_CODE(ds, "TC002");
}

TEST(SchemaAnalyzer, ForwardReferencedSuperclassIsFine) {
  // The dynamic layer would reject this ordering; the static analyzer
  // sees the whole schema document at once.
  auto ds = LintSchema(
      "define class a under b end;"
      "define class b end");
  EXPECT_CLEAN(ds);
}

// --- TC003: Rule 6.1 domain refinement ------------------------------------

TEST(SchemaAnalyzer, IllegalRefinementReported) {
  auto ds = LintSchema(
      "define class person attributes name: string end;"
      "define class employee under person attributes name: integer end");
  EXPECT_CODE(ds, "TC003");
}

TEST(SchemaAnalyzer, SubtypeRefinementIsLegal) {
  auto ds = LintSchema(
      "define class animal end;"
      "define class dog under animal end;"
      "define class owner attributes pet: animal end;"
      "define class dogowner under owner attributes pet: dog end");
  EXPECT_CLEAN(ds);
}

// --- TC004: temporal demotion ---------------------------------------------

TEST(SchemaAnalyzer, TemporalDemotionReported) {
  auto ds = LintSchema(
      "define class person attributes score: temporal(integer) end;"
      "define class student under person attributes score: integer end");
  EXPECT_CODE(ds, "TC004");
  EXPECT_NO_CODE(ds, "TC003");  // the specialized code wins
}

TEST(SchemaAnalyzer, TemporalPromotionIsLegal) {
  // Rule 6.1 clause 2: a non-temporal domain may become temporal.
  auto ds = LintSchema(
      "define class person attributes score: integer end;"
      "define class student under person "
      "attributes score: temporal(integer) end");
  EXPECT_CLEAN(ds);
}

// --- TC005: diamond-inheritance conflicts ---------------------------------

TEST(SchemaAnalyzer, DiamondConflictReported) {
  auto ds = LintSchema(
      "define class a attributes x: integer end;"
      "define class b attributes x: string end;"
      "define class c under a, b end");
  EXPECT_CODE(ds, "TC005");
}

TEST(SchemaAnalyzer, DiamondKindMismatchMentionsTemporal) {
  auto ds = LintSchema(
      "define class a attributes x: temporal(integer) end;"
      "define class b attributes x: integer end;"
      "define class c under a, b end");
  ASSERT_TRUE(Has(ds, "TC005")) << Messages(ds);
  bool mentioned = false;
  for (const Diagnostic& d : ds) {
    if (d.code == "TC005" &&
        d.message.find("temporal vs non-temporal") != std::string::npos) {
      mentioned = true;
    }
  }
  EXPECT_TRUE(mentioned) << Messages(ds);
}

TEST(SchemaAnalyzer, DiamondWithAgreeingDomainsIsFine) {
  auto ds = LintSchema(
      "define class a attributes x: integer end;"
      "define class b attributes x: integer end;"
      "define class c under a, b end");
  EXPECT_CLEAN(ds);
}

// --- TC006: dangling class-typed domains ----------------------------------

TEST(SchemaAnalyzer, DanglingDomainReported) {
  auto ds = LintSchema(
      "define class owner attributes pet: dog end");
  EXPECT_CODE(ds, "TC006");
}

TEST(SchemaAnalyzer, DanglingDomainInsideConstructorReported) {
  auto ds = LintSchema(
      "define class owner attributes pets: temporal(set-of(dog)) end");
  EXPECT_CODE(ds, "TC006");
}

TEST(SchemaAnalyzer, DomainDefinedLaterInScriptIsFine) {
  auto ds = LintSchema(
      "define class owner attributes pet: dog end;"
      "define class dog end");
  EXPECT_CLEAN(ds);
}

// --- TC007: duplicate attribute -------------------------------------------

TEST(SchemaAnalyzer, DuplicateAttributeReported) {
  auto ds = LintSchema(
      "define class a attributes x: integer, x: integer end");
  EXPECT_CODE(ds, "TC007");
}

TEST(SchemaAnalyzer, DistinctAttributesAreFine) {
  auto ds = LintSchema(
      "define class a attributes x: integer, y: integer end");
  EXPECT_CLEAN(ds);
}

// --- TC008: duplicate class -----------------------------------------------

TEST(SchemaAnalyzer, DuplicateClassReported) {
  auto ds = LintSchema(
      "define class a end;"
      "define class a attributes x: integer end");
  EXPECT_CODE(ds, "TC008");
}

TEST(SchemaAnalyzer, DistinctClassesAreFine) {
  auto ds = LintSchema(
      "define class a end;"
      "define class b end");
  EXPECT_CLEAN(ds);
}

// --- TC009: method refinement ---------------------------------------------

TEST(SchemaAnalyzer, CovarianceViolationReported) {
  // Inherited result type dog; redefined to the *super*type animal.
  auto ds = LintSchema(
      "define class animal end;"
      "define class dog under animal end;"
      "define class owner methods pick(): dog end;"
      "define class sub under owner methods pick(): animal end");
  EXPECT_CODE(ds, "TC009");
}

TEST(SchemaAnalyzer, ContravarianceViolationReported) {
  // Inherited input type animal; redefined to the narrower dog.
  auto ds = LintSchema(
      "define class animal end;"
      "define class dog under animal end;"
      "define class owner methods feed(animal): bool end;"
      "define class sub under owner methods feed(dog): bool end");
  EXPECT_CODE(ds, "TC009");
}

TEST(SchemaAnalyzer, LegalMethodRefinementIsFine) {
  // Covariant result, contravariant input.
  auto ds = LintSchema(
      "define class animal end;"
      "define class dog under animal end;"
      "define class owner methods pick(dog): animal end;"
      "define class sub under owner methods pick(animal): dog end");
  EXPECT_CLEAN(ds);
}

// --- incremental mode (interpreter wiring) --------------------------------

TEST(SchemaAnalyzer, AnalyzesSpecAgainstLiveDatabase) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(
      interp.Execute("define class person attributes name: string end").ok());

  ClassSpec spec;
  spec.name = "employee";
  spec.superclasses = {"person"};
  Result<const Type*> bad = ParseType("integer");
  ASSERT_TRUE(bad.ok());
  spec.attributes = {{"name", *bad}};
  DiagnosticEngine diags;
  AnalyzeClassSpec(spec, 0, &db, &diags);
  EXPECT_CODE(diags.diagnostics(), "TC003");
}

// --- TC012: extents vs (superclass) lifespans ------------------------------

TEST(SchemaAnalyzer, DeadSuperclassReportedTC012) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute("define class person end").ok());
  db.Tick();
  ASSERT_TRUE(db.DropClass("person").ok());

  ClassSpec spec;
  spec.name = "employee";
  spec.superclasses = {"person"};
  DiagnosticEngine diags;
  AnalyzeClassSpec(spec, 0, &db, &diags);
  EXPECT_CODE(diags.diagnostics(), "TC012");
}

TEST(SchemaAnalyzer, LiveSuperclassHasNoTC012) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute("define class person end").ok());

  ClassSpec spec;
  spec.name = "employee";
  spec.superclasses = {"person"};
  DiagnosticEngine diags;
  AnalyzeClassSpec(spec, 0, &db, &diags);
  EXPECT_NO_CODE(diags.diagnostics(), "TC012");
}

TEST(SchemaAnalyzer, ExtentOutsideOwnLifespanReportedTC012) {
  // Hand-restored state (RestoreClass bypasses the dynamic validation,
  // like a corrupt or hand-edited snapshot would): ext defined over
  // [0,20] while the class lifespan is [5,10] — Invariant 5.1 violated.
  Database db;
  db.Tick(30);
  ClassSpec spec;
  spec.name = "person";
  TemporalFunction ext;
  ASSERT_TRUE(ext.Define(Interval(0, 20), Value::EmptySet()).ok());
  ASSERT_TRUE(
      db.RestoreClass(spec, Interval(5, 10), ext, TemporalFunction(), {})
          .ok());

  DiagnosticEngine diags;
  AnalyzeSchema({}, &db, &diags);
  EXPECT_CODE(diags.diagnostics(), "TC012");
}

TEST(SchemaAnalyzer, ExtentOutsideSuperclassLifespanReportedTC012) {
  // The subclass's own lifespan covers its extent; the escape is only
  // relative to the superclass lifespan (Invariant 6.1 lifts 5.1 up the
  // hierarchy).
  Database db;
  db.Tick(30);
  ClassSpec super_spec;
  super_spec.name = "person";
  TemporalFunction super_ext;
  ASSERT_TRUE(super_ext.Define(Interval(0, 5), Value::EmptySet()).ok());
  ASSERT_TRUE(db.RestoreClass(super_spec, Interval(0, 5), super_ext,
                              TemporalFunction(), {})
                  .ok());

  ClassSpec sub_spec;
  sub_spec.name = "employee";
  sub_spec.superclasses = {"person"};
  TemporalFunction sub_ext;
  ASSERT_TRUE(sub_ext.Define(Interval(0, 20), Value::EmptySet()).ok());
  ASSERT_TRUE(db.RestoreClass(sub_spec, Interval(0, 20), sub_ext,
                              TemporalFunction(), {})
                  .ok());

  DiagnosticEngine diags;
  AnalyzeSchema({}, &db, &diags);
  EXPECT_CODE(diags.diagnostics(), "TC012");
}

TEST(SchemaAnalyzer, LegitimateExtentsHaveNoTC012) {
  // State grown through the validated mutation path always satisfies the
  // invariants, including after membership churn.
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute("define class person end").ok());
  ASSERT_TRUE(interp.Execute("define class employee under person end").ok());
  Result<Oid> oid = db.CreateObject("employee");
  ASSERT_TRUE(oid.ok()) << oid.status();
  db.Tick(3);
  ASSERT_TRUE(db.DeleteObject(*oid).ok());

  DiagnosticEngine diags;
  AnalyzeSchema({}, &db, &diags);
  EXPECT_CLEAN(diags.diagnostics());
}

// --- TC013: c-attribute shadowing ------------------------------------------

TEST(SchemaAnalyzer, CAttributeRedefinedInSubclassReported) {
  // The subclass's own c-attribute slot detaches from the superclass's
  // shared value — almost never what the schema author meant.
  auto ds = LintSchema(
      "define class person c-attributes population: integer end;"
      "define class employee under person "
      "c-attributes population: integer end");
  EXPECT_CODE(ds, "TC013");
}

TEST(SchemaAnalyzer, InstanceAttributeShadowingCAttributeReported) {
  auto ds = LintSchema(
      "define class person c-attributes population: integer end;"
      "define class employee under person "
      "attributes population: integer end");
  EXPECT_CODE(ds, "TC013");
}

TEST(SchemaAnalyzer, CAttributeShadowingInstanceAttributeReported) {
  auto ds = LintSchema(
      "define class person attributes name: string end;"
      "define class employee under person c-attributes name: string end");
  EXPECT_CODE(ds, "TC013");
}

TEST(SchemaAnalyzer, DistinctCAttributeNamesHaveNoTC013) {
  auto ds = LintSchema(
      "define class person "
      "attributes name: string c-attributes population: integer end;"
      "define class employee under person "
      "attributes salary: integer c-attributes headcount: integer end");
  EXPECT_NO_CODE(ds, "TC013");
}

TEST(SchemaAnalyzer, UnrelatedClassesMayReuseCAttributeNames) {
  // Shadowing is an inheritance hazard; sibling classes sharing a name
  // are fine.
  auto ds = LintSchema(
      "define class person c-attributes population: integer end;"
      "define class city c-attributes population: integer end");
  EXPECT_NO_CODE(ds, "TC013");
}

// --- TC010 / TC111: driver-level findings ---------------------------------

TEST(LintDriver, ParseErrorReported) {
  auto ds = Lint("selec x from x in a");
  EXPECT_CODE(ds, "TC010");
}

TEST(LintDriver, ParsableScriptHasNoParseError) {
  auto ds = Lint("define class a end");
  EXPECT_NO_CODE(ds, "TC010");
}

TEST(LintDriver, FailedStatementReported) {
  auto ds = Lint("update i99 set x = 1");
  EXPECT_CODE(ds, "TC111");
}

TEST(LintDriver, CleanScriptStaysClean) {
  auto ds = Lint(
      "define class employee attributes salary: temporal(integer) end;"
      "create employee (salary: 48000);"
      "tick 5;"
      "select x from x in employee where x.salary > 40000;"
      "when i1.salary > 40000;"
      "check");
  EXPECT_CLEAN(ds);
}

// --- TC112: index DDL validation ------------------------------------------

TEST(QueryAnalyzer, IndexOnUnknownClassReportedTC112) {
  auto ds = Lint("create index iv on nosuch (v)");
  EXPECT_CODE(ds, "TC112");
  // The analyzer claimed the statement: replay must not pile a TC111
  // execution failure on top of it.
  EXPECT_NO_CODE(ds, "TC111");
}

TEST(QueryAnalyzer, IndexOnMissingAttributeReportedTC112) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "create index iv on a (w)");
  EXPECT_CODE(ds, "TC112");
}

TEST(QueryAnalyzer, DuplicateIndexNameReportedTC112) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "create index iv on a (v);"
      "create index iv on a (v)");
  EXPECT_CODE(ds, "TC112");
}

TEST(QueryAnalyzer, DropOfUnknownIndexReportedTC112) {
  auto ds = Lint("drop index nosuch");
  EXPECT_CODE(ds, "TC112");
}

TEST(QueryAnalyzer, ValidIndexDdlIsClean) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "create a (v: 1);"
      "create index iv on a (v);"
      "create index la on a lifespan;"
      "select x from x in a where x.v = 1;"
      "drop index iv");
  EXPECT_CLEAN(ds);
}

// --- TC101: unused binder -------------------------------------------------

TEST(QueryAnalyzer, UnusedBinderReported) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "select 1 from x in a");
  EXPECT_CODE(ds, "TC101");
}

TEST(QueryAnalyzer, UnusedSecondBinderReported) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "select x from x in a, y in a");
  EXPECT_EQ(Count(ds, "TC101"), 1u) << Messages(ds);
}

TEST(QueryAnalyzer, UsedBindersAreFine) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "select x from x in a, y in a where x.v < y.v");
  EXPECT_CLEAN(ds);
}

// --- TC102: projection outside the class lifespan -------------------------

TEST(QueryAnalyzer, ProjectionBeforeClassExistsReported) {
  auto ds = Lint(
      "tick 5;"
      "define class a attributes v: temporal(integer) end;"
      "select x.v @ 2 from x in a");
  EXPECT_CODE(ds, "TC102");
}

TEST(QueryAnalyzer, ProjectionWithinLifespanIsFine) {
  auto ds = Lint(
      "tick 5;"
      "define class a attributes v: temporal(integer) end;"
      "tick 5;"
      "select x.v @ 7 from x in a");
  EXPECT_NO_CODE(ds, "TC102");
}

// --- TC103: redundant projection ------------------------------------------

TEST(QueryAnalyzer, ExplicitAtNowIsRedundant) {
  auto ds = Lint(
      "define class a attributes v: temporal(integer) end;"
      "select x.v @ now from x in a");
  EXPECT_CODE(ds, "TC103");
}

TEST(QueryAnalyzer, AtMatchingQueryInstantIsRedundant) {
  auto ds = Lint(
      "define class a attributes v: temporal(integer) end;"
      "tick 20;"
      "select x.v @ 15 from x in a at 15");
  EXPECT_CODE(ds, "TC103");
}

TEST(QueryAnalyzer, AtOnStaticAttributeIsNoOp) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "select x.v @ now from x in a");
  EXPECT_CODE(ds, "TC103");
}

TEST(QueryAnalyzer, DistinctProjectionInstantIsMeaningful) {
  auto ds = Lint(
      "define class a attributes v: temporal(integer) end;"
      "tick 20;"
      "select x.v @ 10 from x in a at 15");
  EXPECT_NO_CODE(ds, "TC103");
}

// --- TC104: statically unsatisfiable predicates ---------------------------

TEST(QueryAnalyzer, ConstantFalseWhereReported) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "select x from x in a where 1 > 2");
  EXPECT_CODE(ds, "TC104");
}

TEST(QueryAnalyzer, NullComparisonReported) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "select x from x in a where x.v = null");
  EXPECT_CODE(ds, "TC104");
}

TEST(QueryAnalyzer, EmptyMembershipReported) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "select x from x in a where x.v in {}");
  EXPECT_CODE(ds, "TC104");
}

TEST(QueryAnalyzer, FalseConjunctReported) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "select x from x in a where x.v > 0 and 2 < 1");
  EXPECT_CODE(ds, "TC104");
}

TEST(QueryAnalyzer, SatisfiablePredicateIsFine) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "select x from x in a where x.v > 0");
  EXPECT_CLEAN(ds);
}

TEST(QueryAnalyzer, WhenConditionNeverHoldsReported) {
  auto ds = Lint("when 1 > 2");
  EXPECT_CODE(ds, "TC104");
}

// --- TC105: statically true predicates ------------------------------------

TEST(QueryAnalyzer, ConstantTrueWhereReported) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "select x from x in a where 1 < 2");
  EXPECT_CODE(ds, "TC105");
}

TEST(QueryAnalyzer, TrueConjunctReported) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "select x from x in a where x.v > 0 and 1 < 2");
  EXPECT_CODE(ds, "TC105");
}

TEST(QueryAnalyzer, TrueDisjunctReported) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "select x from x in a where x.v > 0 or 1 < 2");
  EXPECT_CODE(ds, "TC105");
}

TEST(QueryAnalyzer, NonTrivialPredicateIsFine) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "select x from x in a where x.v > 0 or x.v < -10");
  EXPECT_CLEAN(ds);
}

// --- TC106: statically empty update windows -------------------------------

TEST(QueryAnalyzer, InvertedUpdateWindowReported) {
  auto ds = Lint(
      "define class a attributes v: temporal(integer) end;"
      "tick 9;"
      "create a at 0 (v: 1);"
      "update i1 set v = 2 during [7,3]");
  EXPECT_CODE(ds, "TC106");
}

TEST(QueryAnalyzer, ProperUpdateWindowIsFine) {
  auto ds = Lint(
      "define class a attributes v: temporal(integer) end;"
      "tick 9;"
      "create a at 0 (v: 1);"
      "update i1 set v = 2 during [3,7];"
      "update i1 set v = 3 during [8,8]");
  EXPECT_NO_CODE(ds, "TC106");
}

TEST(QueryAnalyzer, NowBoundedWindowNotFlagged) {
  // [5,now] is empty only if the clock is behind 5 — not statically known.
  auto ds = Lint(
      "define class a attributes v: temporal(integer) end;"
      "tick 9;"
      "create a at 0 (v: 1);"
      "update i1 set v = 2 during [5,now]");
  EXPECT_NO_CODE(ds, "TC106");
}

// --- TC109: statically empty when/history windows --------------------------

TEST(QueryAnalyzer, InvertedWhenWindowReported) {
  auto ds = Lint(
      "define class a attributes v: temporal(integer) end;"
      "tick 9;"
      "create a at 0 (v: 1);"
      "when i1.v = 1 during [7,3]");
  EXPECT_CODE(ds, "TC109");
}

TEST(QueryAnalyzer, InvertedHistoryWindowReported) {
  auto ds = Lint(
      "define class a attributes v: temporal(integer) end;"
      "tick 9;"
      "create a at 0 (v: 1);"
      "history i1.v during [7,3]");
  EXPECT_CODE(ds, "TC109");
}

TEST(QueryAnalyzer, ProperQueryWindowsHaveNoTC109) {
  auto ds = Lint(
      "define class a attributes v: temporal(integer) end;"
      "tick 9;"
      "create a at 0 (v: 1);"
      "when i1.v = 1 during [3,7];"
      "history i1.v during [8,8]");
  EXPECT_NO_CODE(ds, "TC109");
}

TEST(QueryAnalyzer, NowBoundedQueryWindowNotFlagged) {
  // [5,now] is empty only if the clock is behind 5 — not statically known.
  auto ds = Lint(
      "define class a attributes v: temporal(integer) end;"
      "tick 9;"
      "create a at 0 (v: 1);"
      "when i1.v = 1 during [5,now];"
      "history i1.v during [5,now]");
  EXPECT_NO_CODE(ds, "TC109");
}

TEST(QueryAnalyzer, WindowCheckFiresEvenWhenConditionHasTypeError) {
  // TC109 is reported before type checking: an unrelated TC110 in the
  // condition must not mask the empty window.
  auto ds = Lint(
      "define class a attributes v: temporal(integer) end;"
      "tick 9;"
      "create a at 0 (v: 1);"
      "when i1.v = 1 and i1.nope = 2 during [7,3]");
  EXPECT_CODE(ds, "TC109");
}

// --- TC107: snapshot outside the object lifespan --------------------------

TEST(QueryAnalyzer, SnapshotBeforeObjectLifespanReported) {
  auto ds = Lint(
      "define class a attributes v: temporal(integer) end;"
      "tick 5;"
      "create a (v: 1);"
      "snapshot i1 at 2");
  EXPECT_CODE(ds, "TC107");
}

TEST(QueryAnalyzer, SnapshotAfterDeletedObjectReported) {
  auto ds = Lint(
      "define class a attributes v: temporal(integer) end;"
      "create a (v: 1);"
      "tick 5;"
      "delete i1;"
      "tick 5;"
      "snapshot i1 at 9");
  EXPECT_CODE(ds, "TC107");
}

TEST(QueryAnalyzer, SnapshotWithinLifespanIsFine) {
  auto ds = Lint(
      "define class a attributes v: temporal(integer) end;"
      "tick 5;"
      "create a (v: 1);"
      "tick 5;"
      "snapshot i1 at 7;"
      "snapshot i1");
  EXPECT_NO_CODE(ds, "TC107");
}

// --- TC108: history of a non-temporal attribute ---------------------------

TEST(QueryAnalyzer, HistoryOfNonTemporalAttributeReported) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "create a (v: 1);"
      "history i1.v");
  EXPECT_CODE(ds, "TC108");
}

TEST(QueryAnalyzer, HistoryOfTemporalAttributeIsFine) {
  auto ds = Lint(
      "define class a attributes v: temporal(integer) end;"
      "create a (v: 1);"
      "history i1.v");
  EXPECT_NO_CODE(ds, "TC108");
}

// --- TC110: type errors ---------------------------------------------------

TEST(QueryAnalyzer, TypeErrorReported) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "select x.nope from x in a");
  EXPECT_CODE(ds, "TC110");
}

TEST(QueryAnalyzer, WellTypedQueryHasNoTypeError) {
  auto ds = Lint(
      "define class a attributes v: integer end;"
      "select x.v from x in a");
  EXPECT_NO_CODE(ds, "TC110");
}

// --- interpreter wiring ---------------------------------------------------

TEST(InterpreterLint, OptInLintCollectsFindings) {
  Database db;
  Interpreter interp(&db);
  DiagnosticEngine diags;
  interp.set_lint(&diags);
  ASSERT_TRUE(
      interp.Execute("define class a attributes v: integer end").ok());
  Result<std::string> r = interp.Execute("select 1 from x in a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_CODE(diags.diagnostics(), "TC101");
}

TEST(InterpreterLint, LintNeverBlocksExecution) {
  Database db;
  Interpreter interp(&db);
  DiagnosticEngine diags;
  interp.set_lint(&diags);
  ASSERT_TRUE(
      interp.Execute("define class a attributes v: integer end").ok());
  Result<std::string> r = interp.Execute("select x from x in a where 1 > 2");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "(no results)");
  EXPECT_CODE(diags.diagnostics(), "TC104");
}

TEST(InterpreterLint, DisabledByDefault) {
  Database db;
  Interpreter interp(&db);
  EXPECT_EQ(interp.lint(), nullptr);
  ASSERT_TRUE(
      interp.Execute("define class a attributes v: integer end").ok());
  ASSERT_TRUE(interp.Execute("select 1 from x in a").ok());
}

// --- the diagnostics engine -----------------------------------------------

TEST(DiagnosticEngine, RegistryHasStableMetadata) {
  const std::vector<DiagnosticInfo>& infos = AllDiagnosticInfos();
  ASSERT_FALSE(infos.empty());
  for (size_t i = 1; i < infos.size(); ++i) {
    EXPECT_LT(std::string(infos[i - 1].code), std::string(infos[i].code))
        << "codes must stay sorted";
  }
  for (const DiagnosticInfo& info : infos) {
    EXPECT_NE(std::string(info.title), "");
    EXPECT_NE(std::string(info.paper_ref), "");
    EXPECT_EQ(FindDiagnosticInfo(info.code), &info);
  }
  EXPECT_EQ(FindDiagnosticInfo("TC999"), nullptr);
}

TEST(DiagnosticEngine, ReportUsesRegistrySeverity) {
  DiagnosticEngine diags;
  diags.Report("TC001", 0, "cycle");
  diags.Report("TC101", 1, "unused");
  diags.Report("TC103", 2, "redundant");
  ASSERT_EQ(diags.diagnostics().size(), 3u);
  EXPECT_EQ(diags.diagnostics()[0].severity, Severity::kError);
  EXPECT_EQ(diags.diagnostics()[1].severity, Severity::kWarning);
  EXPECT_EQ(diags.diagnostics()[2].severity, Severity::kNote);
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_TRUE(diags.has_errors());
}

TEST(DiagnosticEngine, ResolveLocationsComputesLineAndColumn) {
  DiagnosticEngine diags;
  diags.Report("TC101", 0, "first line");
  diags.Report("TC101", 10, "second line");  // offset of 'c' in "second"
  diags.Report("TC010", SourceLocation::kNoOffset, "no position");
  diags.ResolveLocations("test.tql", "line one\nse_cond line\n");
  const std::vector<Diagnostic>& ds = diags.diagnostics();
  EXPECT_EQ(ds[0].location.file, "test.tql");
  EXPECT_EQ(ds[0].location.line, 1u);
  EXPECT_EQ(ds[0].location.column, 1u);
  EXPECT_EQ(ds[1].location.line, 2u);
  EXPECT_EQ(ds[1].location.column, 2u);
  EXPECT_EQ(ds[2].location.line, 0u) << "no offset: line stays unresolved";
}

TEST(DiagnosticEngine, SortByLocationOrdersByFileThenOffset) {
  DiagnosticEngine diags;
  Diagnostic a;
  a.code = "TC104";
  a.location.file = "b.tql";
  a.location.offset = 1;
  Diagnostic b;
  b.code = "TC101";
  b.location.file = "a.tql";
  b.location.offset = 9;
  Diagnostic c;
  c.code = "TC102";
  c.location.file = "a.tql";
  c.location.offset = 2;
  diags.Add(a);
  diags.Add(b);
  diags.Add(c);
  diags.SortByLocation();
  EXPECT_EQ(diags.diagnostics()[0].code, "TC102");
  EXPECT_EQ(diags.diagnostics()[1].code, "TC101");
  EXPECT_EQ(diags.diagnostics()[2].code, "TC104");
}

TEST(DiagnosticRender, HumanFormat) {
  Diagnostic d;
  d.code = "TC003";
  d.severity = Severity::kError;
  d.message = "bad refinement";
  d.location.file = "schema.tql";
  d.location.offset = 12;
  d.location.line = 2;
  d.location.column = 3;
  d.note = "see Rule 6.1";
  std::string out = RenderHuman({d});
  EXPECT_EQ(out,
            "schema.tql:2:3: error: bad refinement [TC003]\n"
            "    note: see Rule 6.1\n");
}

// The golden test: the JSON rendering is byte-stable, and parsing it back
// reproduces the same diagnostics (round-trip).
TEST(DiagnosticRender, JsonGoldenRoundTrip) {
  Diagnostic a;
  a.code = "TC001";
  a.severity = Severity::kError;
  a.message = "ISA cycle: a -> b -> a";
  a.location.file = "schema.tql";
  a.location.offset = 17;
  a.location.line = 2;
  a.location.column = 5;
  a.note = "cycle members are skipped";
  a.fixits = {FixIt{20, 4, ""}, FixIt{30, 2, "t7"}};
  Diagnostic b;
  b.code = "TC104";
  b.severity = Severity::kWarning;
  b.message = "condition with \"quotes\"\nand a newline";
  // No file / offset / note / fixits: optional keys must be omitted.
  std::vector<Diagnostic> input = {a, b};

  const std::string kGolden =
      "{\"diagnostics\":["
      "{\"code\":\"TC001\",\"severity\":\"error\","
      "\"message\":\"ISA cycle: a -> b -> a\","
      "\"file\":\"schema.tql\",\"offset\":17,\"line\":2,\"column\":5,"
      "\"note\":\"cycle members are skipped\","
      "\"fixits\":[{\"offset\":20,\"length\":4,\"replacement\":\"\"},"
      "{\"offset\":30,\"length\":2,\"replacement\":\"t7\"}]},"
      "{\"code\":\"TC104\",\"severity\":\"warning\","
      "\"message\":\"condition with \\\"quotes\\\"\\nand a newline\"}"
      "],\"errors\":1,\"warnings\":1}";
  EXPECT_EQ(RenderJson(input), kGolden);

  Result<std::vector<Diagnostic>> parsed = ParseDiagnosticsJson(kGolden);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].code, "TC001");
  EXPECT_EQ((*parsed)[0].severity, Severity::kError);
  EXPECT_EQ((*parsed)[0].message, "ISA cycle: a -> b -> a");
  EXPECT_EQ((*parsed)[0].location.file, "schema.tql");
  EXPECT_EQ((*parsed)[0].location.offset, 17u);
  EXPECT_EQ((*parsed)[0].location.line, 2u);
  EXPECT_EQ((*parsed)[0].location.column, 5u);
  EXPECT_EQ((*parsed)[0].note, "cycle members are skipped");
  ASSERT_EQ((*parsed)[0].fixits.size(), 2u);
  EXPECT_EQ((*parsed)[0].fixits[0].offset, 20u);
  EXPECT_EQ((*parsed)[0].fixits[0].length, 4u);
  EXPECT_EQ((*parsed)[0].fixits[0].replacement, "");
  EXPECT_EQ((*parsed)[0].fixits[1].replacement, "t7");
  EXPECT_EQ((*parsed)[1].code, "TC104");
  EXPECT_TRUE((*parsed)[1].fixits.empty());
  EXPECT_EQ((*parsed)[1].message, "condition with \"quotes\"\nand a newline");
  EXPECT_FALSE((*parsed)[1].location.has_offset());

  // Re-rendering the parsed diagnostics reproduces the bytes exactly.
  EXPECT_EQ(RenderJson(*parsed), kGolden);
}

TEST(DiagnosticRender, EmptyJson) {
  EXPECT_EQ(RenderJson({}), "{\"diagnostics\":[],\"errors\":0,\"warnings\":0}");
  Result<std::vector<Diagnostic>> parsed =
      ParseDiagnosticsJson("{\"diagnostics\":[],\"errors\":0,\"warnings\":0}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(DiagnosticRender, ParseRejectsMalformedJson) {
  EXPECT_FALSE(ParseDiagnosticsJson("").ok());
  EXPECT_FALSE(ParseDiagnosticsJson("{\"diagnostics\":[").ok());
  EXPECT_FALSE(ParseDiagnosticsJson("{\"diagnostics\":[]} trailing").ok());
}

// Every code the analyzers can emit is registered with metadata, so
// docs/LINT.md and the JSON consumers always have something to link to.
TEST(DiagnosticRender, EmittedCodesAreRegistered) {
  auto ds = Lint(
      "tick 3;"
      "define class a under a attributes x: integer, x: integer end;"
      "define class b under ghost end;"
      "define class p attributes s: temporal(integer), pet: dog end;"
      "define class q under p attributes s: integer end;"
      "define class t attributes v: temporal(integer) end;"
      "create t (v: 1);"
      "select 1 from x in t where x.v = null;"
      "select 1 from z in t;"
      "select x.v @ now from x in t where 1 < 2;"
      "select x.v @ 1 from x in t;"
      "select x.nope from x in t;"
      "update i1 set v = 2 during [3,1];"
      "snapshot i1 at 1;"
      "define class u attributes w: integer end;"
      "create u (w: 1);"
      "history i2.w;"
      "history i2.w during [3,1];"
      "define class c1 c-attributes pop: integer end;"
      "define class c2 under c1 c-attributes pop: integer end;"
      "update i99 set v = 1");
  for (const Diagnostic& d : ds) {
    EXPECT_NE(FindDiagnosticInfo(d.code), nullptr)
        << "unregistered code " << d.code;
  }
  // The fixture above is designed to light up a wide spread of codes.
  for (const char* code :
       {"TC001", "TC002", "TC004", "TC006", "TC007", "TC013", "TC101",
        "TC102", "TC103", "TC104", "TC105", "TC106", "TC107", "TC108",
        "TC109", "TC110", "TC111"}) {
    EXPECT_TRUE(Has(ds, code)) << "expected " << code << " in:\n"
                               << Messages(ds);
  }
}

// --- the fixer: ApplyFixIts -----------------------------------------------

TEST(Fixer, AppliesDisjointEditsFromSeveralDiagnostics) {
  //                     0123456789012345
  std::string source = "aaa bbb ccc ddd";
  Diagnostic d1;
  d1.code = "TC101";
  d1.fixits = {FixIt{4, 4, ""}};  // delete "bbb "
  Diagnostic d2;
  d2.code = "TC106";
  d2.fixits = {FixIt{0, 3, "xxx"}, FixIt{12, 3, "yyy"}};  // swap-style pair
  FixResult r = ApplyFixIts(source, {d1, d2});
  EXPECT_EQ(r.text, "xxx ccc yyy");
  EXPECT_EQ(r.applied, 2u);
  EXPECT_EQ(r.skipped, 0u);
}

TEST(Fixer, OverlappingDiagnosticsFirstWinsRestSkipped) {
  std::string source = "abcdefgh";
  Diagnostic first;
  first.code = "TC105";
  first.fixits = {FixIt{2, 4, ""}};  // delete "cdef"
  Diagnostic second;
  second.code = "TC103";
  second.fixits = {FixIt{4, 2, "XY"}};  // inside the deleted range
  FixResult r = ApplyFixIts(source, {first, second});
  EXPECT_EQ(r.text, "abgh");
  EXPECT_EQ(r.applied, 1u);
  EXPECT_EQ(r.skipped, 1u);
  ASSERT_EQ(r.skipped_reasons.size(), 1u);
  EXPECT_NE(r.skipped_reasons[0].find("TC103"), std::string::npos);
  EXPECT_NE(r.skipped_reasons[0].find("overlaps"), std::string::npos);
}

TEST(Fixer, GroupIsAtomicWhenOneEditConflicts) {
  // d2's second edit overlaps d1, so NEITHER of d2's edits applies.
  std::string source = "abcdefgh";
  Diagnostic d1;
  d1.code = "TC101";
  d1.fixits = {FixIt{1, 2, ""}};  // delete "bc"
  Diagnostic d2;
  d2.code = "TC106";
  d2.fixits = {FixIt{6, 1, "Z"}, FixIt{2, 1, "Q"}};
  FixResult r = ApplyFixIts(source, {d1, d2});
  EXPECT_EQ(r.text, "adefgh");
  EXPECT_EQ(r.applied, 1u);
  EXPECT_EQ(r.skipped, 1u);
}

TEST(Fixer, MalformedOutOfBoundsFixSkipped) {
  Diagnostic d;
  d.code = "TC101";
  d.fixits = {FixIt{3, 10, ""}};  // extends past the end
  FixResult r = ApplyFixIts("short", {d});
  EXPECT_EQ(r.text, "short");
  EXPECT_EQ(r.applied, 0u);
  EXPECT_EQ(r.skipped, 1u);
}

TEST(Fixer, DiagnosticsWithoutFixitsAreIgnored) {
  Diagnostic d;
  d.code = "TC104";
  FixResult r = ApplyFixIts("unchanged", {d});
  EXPECT_EQ(r.text, "unchanged");
  EXPECT_EQ(r.applied, 0u);
  EXPECT_EQ(r.skipped, 0u);
}

// The end-to-end fix loop at the library level: linting the script,
// applying its fix-its, and re-linting must converge — the fixed text is
// clean, and a second application changes nothing (idempotence).
TEST(Fixer, LintApplyRelintReachesCleanFixpoint) {
  const std::string kScript =
      "define class emp\n"
      "  attributes name: string, salary: temporal(integer)\n"
      "end;\n"
      "create emp (name: 'ada', salary: 100);\n"
      "tick 5;\n"
      "update i1 set salary = 120 during [t4, t2];\n"
      "select e.name, e.salary @ now from e in emp, u in emp;\n";

  auto ds = Lint(kScript);
  EXPECT_CODE(ds, "TC106");
  EXPECT_CODE(ds, "TC103");
  EXPECT_CODE(ds, "TC101");

  FixResult first = ApplyFixIts(kScript, ds);
  EXPECT_EQ(first.applied, 3u);
  EXPECT_EQ(first.skipped, 0u);

  auto fixed_ds = Lint(first.text);
  EXPECT_CLEAN(fixed_ds);

  FixResult second = ApplyFixIts(first.text, fixed_ds);
  EXPECT_EQ(second.applied, 0u);
  EXPECT_EQ(second.text, first.text);
}

// TC013's fix deletes the shadowing redeclaration (including the section
// keyword when it is the lone declaration), leaving a clean schema.
TEST(Fixer, ShadowedCAttributeRedeclarationDeleted) {
  const std::string kScript =
      "define class c1 c-attributes pop: integer end;\n"
      "define class c2 under c1 c-attributes pop: integer end;\n";
  auto ds = LintSchema(kScript);
  EXPECT_CODE(ds, "TC013");
  FixResult r = ApplyFixIts(kScript, ds);
  EXPECT_EQ(r.applied, 1u);
  auto fixed_ds = LintSchema(r.text);
  EXPECT_CLEAN(fixed_ds);
}

// --- deterministic ordering -----------------------------------------------

TEST(DiagnosticEngine, SortByLocationOrdersByFileLineColumnCode) {
  DiagnosticEngine e;
  Diagnostic d;
  d.code = "TC105";
  d.location = {"b.tql", 9, 2, 1};
  e.Add(d);
  d.code = "TC101";
  d.location = {"a.tql", 30, 3, 4};
  e.Add(d);
  d.code = "TC104";
  d.location = {"a.tql", 30, 3, 4};  // same spot: code breaks the tie
  e.Add(d);
  d.code = "TC103";
  d.location = {"a.tql", 5, 1, 6};
  e.Add(d);
  e.SortByLocation();
  std::vector<std::string> order;
  for (const Diagnostic& x : e.diagnostics()) {
    order.push_back(x.location.file + ":" + x.code);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"a.tql:TC103", "a.tql:TC101",
                                             "a.tql:TC104", "b.tql:TC105"}));
}

// --- TC201: definite initialization ---------------------------------------

TEST(FlowAnalyzer, UninitializedAttributeReadReported) {
  auto ds = Lint(
      "define class t attributes v: temporal(integer), w: integer end;"
      "create t (w: 1);"
      "when i1.v > 0");
  EXPECT_CODE(ds, "TC201");
}

TEST(FlowAnalyzer, InitializedAttributeReadIsClean) {
  auto ds = Lint(
      "define class t attributes v: temporal(integer) end;"
      "create t (v: 1);"
      "when i1.v > 0");
  EXPECT_NO_CODE(ds, "TC201");
}

TEST(FlowAnalyzer, UpdateBeforeReadInitializes) {
  auto ds = Lint(
      "define class t attributes v: temporal(integer), w: integer end;"
      "create t (w: 1);"
      "update i1 set v = 2;"
      "when i1.v > 0");
  EXPECT_NO_CODE(ds, "TC201");
}

TEST(FlowAnalyzer, HistoryOfUninitializedAttributeReported) {
  auto ds = Lint(
      "define class t attributes v: temporal(integer), w: integer end;"
      "create t (w: 1);"
      "history i1.v");
  EXPECT_CODE(ds, "TC201");
}

TEST(FlowAnalyzer, TemporalReadOutsideWrittenWindowsReported) {
  // v is assigned only from instant 5 on; the projection at 2 reads a
  // part of the timeline no statement ever wrote.
  auto ds = Lint(
      "define class t attributes v: temporal(integer), w: integer end;"
      "create t (w: 1);"
      "tick 5;"
      "update i1 set v = 9;"
      "tick 1;"
      "select x.w from x in t where i1.v @ 2 > 0");
  EXPECT_CODE(ds, "TC201");
}

TEST(FlowAnalyzer, TemporalReadInsideWrittenWindowIsClean) {
  auto ds = Lint(
      "define class t attributes v: temporal(integer), w: integer end;"
      "create t (w: 1);"
      "tick 5;"
      "update i1 set v = 9;"
      "tick 1;"
      "select x.w from x in t where i1.v @ 5 > 0");
  EXPECT_NO_CODE(ds, "TC201");
}

TEST(FlowAnalyzer, InheritedAttributeInitializationTracked) {
  auto ds = Lint(
      "define class base attributes v: temporal(integer) end;"
      "define class sub under base attributes w: integer end;"
      "create sub (w: 1);"
      "when i1.v > 0");
  EXPECT_CODE(ds, "TC201");
}

// --- TC202: static write-write conflicts ----------------------------------

TEST(FlowAnalyzer, TwoWritersOfSameObjectReported) {
  auto ds = Lint(
      "define class t attributes v: temporal(integer) end;"
      "create t (v: 1);"
      "update i1 set v = 2;"
      "update i1 set v = 3");
  EXPECT_EQ(Count(ds, "TC202"), 1u);
}

TEST(FlowAnalyzer, ThirdWriterDoesNotRepeatTheReport) {
  auto ds = Lint(
      "define class t attributes v: temporal(integer) end;"
      "create t (v: 1);"
      "update i1 set v = 2;"
      "update i1 set v = 3;"
      "update i1 set v = 4");
  EXPECT_EQ(Count(ds, "TC202"), 1u);
}

TEST(FlowAnalyzer, WritersOfDistinctObjectsAreClean) {
  auto ds = Lint(
      "define class t attributes v: temporal(integer) end;"
      "create t (v: 1);"
      "create t (v: 2);"
      "update i1 set v = 3;"
      "update i2 set v = 4");
  EXPECT_NO_CODE(ds, "TC202");
}

TEST(FlowAnalyzer, DeleteAfterUpdateCountsAsConflictPair) {
  auto ds = Lint(
      "define class t attributes v: temporal(integer) end;"
      "create t (v: 1);"
      "update i1 set v = 2;"
      "delete i1");
  EXPECT_EQ(Count(ds, "TC202"), 1u);
}

TEST(FlowAnalyzer, Tc202IsANote) {
  auto ds = Lint(
      "define class t attributes v: temporal(integer) end;"
      "create t (v: 1);"
      "update i1 set v = 2;"
      "update i1 set v = 3");
  for (const Diagnostic& d : ds) {
    if (d.code == "TC202") {
      EXPECT_EQ(d.severity, Severity::kNote);
    }
  }
}

// --- TC203: windows empty under the propagated clock ----------------------

TEST(FlowAnalyzer, NowEndpointWindowEmptyUnderClockReported) {
  // [t9, now] at clock 5 resolves to [9, 5]: empty. TC106 must skip it
  // (symbolic endpoint), TC203 catches it via constant propagation.
  auto ds = Lint(
      "define class t attributes v: temporal(integer) end;"
      "create t (v: 1);"
      "tick 5;"
      "update i1 set v = 2 during [t9, now]");
  EXPECT_CODE(ds, "TC203");
  EXPECT_NO_CODE(ds, "TC106");
}

TEST(FlowAnalyzer, NowEndpointWindowNonEmptyUnderClockIsClean) {
  auto ds = Lint(
      "define class t attributes v: temporal(integer) end;"
      "create t (v: 1);"
      "tick 5;"
      "update i1 set v = 2 during [t3, now]");
  EXPECT_NO_CODE(ds, "TC203");
}

TEST(FlowAnalyzer, HistoryWindowEmptyUnderClockReported) {
  auto ds = Lint(
      "define class t attributes v: temporal(integer) end;"
      "create t (v: 1);"
      "tick 2;"
      "history i1.v during [t7, now]");
  EXPECT_CODE(ds, "TC203");
  EXPECT_NO_CODE(ds, "TC109");
}

TEST(FlowAnalyzer, ConcreteInvertedWindowStaysTc106Territory) {
  auto ds = Lint(
      "define class t attributes v: temporal(integer) end;"
      "create t (v: 1);"
      "update i1 set v = 2 during [3,1]");
  EXPECT_CODE(ds, "TC106");
  EXPECT_NO_CODE(ds, "TC203");
}

TEST(FlowAnalyzer, Tc2xxCodesAreRegistered) {
  for (const char* code : {"TC201", "TC202", "TC203"}) {
    EXPECT_NE(FindDiagnosticInfo(code), nullptr) << code;
  }
}

TEST(FlowAnalyzer, NoFlowOptionSuppressesTc2xx) {
  DiagnosticEngine diags;
  LintOptions options;
  options.no_flow = true;
  LintTqlScript(
      "define class t attributes v: temporal(integer) end;"
      "create t (v: 1);"
      "update i1 set v = 2;"
      "update i1 set v = 3",
      options, &diags);
  EXPECT_FALSE(Has(diags.diagnostics(), "TC202"));
}

}  // namespace
}  // namespace tchimera
