// Replication tests: journal shipping into replicas, durable-horizon
// capping, retryable stream faults (seq gap / epoch mismatch / CRC
// corruption), live-tail reads that never salvage, checkpoint resync,
// promotion fencing, the read-your-writes watermark, and crash-point
// enumeration on both the shipping (primary) and replay (replica) sides
// with state-hash equality after recovery + resync + drain.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/crc32.h"
#include "common/fault_fs.h"
#include "query/session.h"
#include "storage/group_commit.h"
#include "storage/journal.h"
#include "storage/recovery.h"
#include "storage/replication.h"
#include "storage/serializer.h"

namespace tchimera {
namespace {

namespace stdfs = std::filesystem;

std::string FreshDir(const std::string& name) {
  stdfs::path dir = stdfs::temp_directory_path() / ("tchimera_repl_" + name);
  std::error_code ec;
  stdfs::remove_all(dir, ec);
  stdfs::create_directories(dir, ec);
  return dir.string();
}

// TCHIMERA_CRASH_STRIDE picks every Nth crash point in the enumeration
// tests (nightly CI sets 1 for the full sweep; the fallback keeps local
// runs quick).
uint64_t CrashStride(uint64_t fallback) {
  const char* env = std::getenv("TCHIMERA_CRASH_STRIDE");
  if (env == nullptr) return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  return (end != env && *end == '\0' && v > 0) ? static_cast<uint64_t>(v)
                                               : fallback;
}

// Workload split so tests can interleave checkpoints: part one builds the
// schema and objects, part two mutates them.
const std::vector<std::string>& WorkloadPartOne() {
  static const std::vector<std::string>& statements =
      *new std::vector<std::string>{
          "define class person attributes name: temporal(string), "
          "birthyear: integer end",
          "create person (name: 'Ann', birthyear: 1970)",  // i1
          "create person (name: 'Bob', birthyear: 1980)",  // i2
          "define class fan attributes idol: person end",
          "create fan (idol: i1)",  // i3
      };
  return statements;
}

const std::vector<std::string>& WorkloadPartTwo() {
  static const std::vector<std::string>& statements =
      *new std::vector<std::string>{
          "tick 3",
          "update i1 set name = 'Anna'",
          "update i2 set name = 'Bobby'",
          "tick 2",
          "update i3 set idol = i2",
          "delete i1",
      };
  return statements;
}

// A primary node: engine + group-commit sink over `dir`. All statements
// run through sessions AFTER the sink is installed, so the journal holds
// the complete history and a replica can replay from empty.
struct Primary {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<GroupCommitJournal> sink;
  std::string dir;

  std::string journal_path() const { return dir + "/journal.tql"; }
  std::string snapshot_path() const { return dir + "/snapshot.tchdb"; }

  static Primary Start(const std::string& dir, FileSystem* fs = nullptr) {
    Primary p;
    p.dir = dir;
    p.engine = std::make_unique<Engine>();
    p.sink = std::make_unique<GroupCommitJournal>();
    JournalOptions jopts;
    jopts.fs = fs;
    EXPECT_TRUE(p.sink->Open(p.journal_path(), jopts).ok());
    p.engine->set_commit_sink(p.sink.get());
    return p;
  }

  // Recovers a primary from whatever `dir` holds (the post-crash path).
  static Status Recover(const std::string& dir, FileSystem* fs, Primary* p) {
    p->dir = dir;
    RecoveryOptions ropts;
    ropts.fs = fs;
    ropts.audit = AuditMode::kOff;
    RecoveryManager manager(p->snapshot_path(), p->journal_path(), ropts);
    RecoveryStats stats;
    Result<std::unique_ptr<Database>> db = manager.LoadSnapshot(&stats);
    if (!db.ok()) return db.status();
    p->engine = std::make_unique<Engine>(std::move(db.value()));
    auto exec = [p](const std::string& statement) {
      return p->engine->WithExclusive(
          [&statement](Database&, ActiveDatabase& active) {
            return active.Execute(statement).status();
          });
    };
    for (const std::string& definition : manager.snapshot_definitions()) {
      TCH_RETURN_IF_ERROR(exec(definition));
    }
    TCH_RETURN_IF_ERROR(manager.ReplayJournals(exec, &stats));
    p->sink = std::make_unique<GroupCommitJournal>();
    JournalOptions jopts;
    jopts.fs = fs;
    jopts.epoch = stats.next_epoch;
    TCH_RETURN_IF_ERROR(p->sink->Open(p->journal_path(), jopts));
    p->engine->set_commit_sink(p->sink.get());
    return Status::OK();
  }

  Status Checkpoint(FileSystem* fs = nullptr) {
    return engine->WithExclusive(
        [this, fs](Database& live, ActiveDatabase& active) {
          return sink->WithQuiesced([&](Journal& journal) {
            return RecoveryManager::Checkpoint(live, &journal,
                                               snapshot_path(), fs,
                                               active.DefinitionStatements());
          });
        });
  }

  ReplicationSource::Options SourceOptions() const {
    ReplicationSource::Options opts;
    opts.horizon = sink.get();
    opts.snapshot_path = snapshot_path();
    return opts;
  }
};

uint32_t StateHashOf(Engine* engine) {
  uint32_t hash = 0;
  Status status = engine->WithExclusive(
      [&hash](Database& db, ActiveDatabase& active) {
        Result<uint32_t> h =
            DatabaseStateHash(db, active.DefinitionStatements());
        if (!h.ok()) return h.status();
        hash = h.value();
        return Status::OK();
      });
  EXPECT_TRUE(status.ok()) << status;
  return hash;
}

ReplicationShipper::Options InstantShipperOptions() {
  ReplicationShipper::Options opts;
  opts.sleeper = [](std::chrono::microseconds) {};  // no real sleeping
  return opts;
}

bool HasCorruptQuarantine(const std::string& dir) {
  for (const auto& entry : stdfs::directory_iterator(dir)) {
    if (entry.path().string().find(".corrupt") != std::string::npos) {
      return true;
    }
  }
  return false;
}

// A framed v2 record line exactly as the journal writes it.
std::string FramedRecord(uint64_t seq, const std::string& statement) {
  std::string payload = std::to_string(seq) + " " + statement;
  return "R " + std::to_string(seq) + " " +
         std::to_string(statement.size()) + " " +
         Crc32Hex(Crc32(payload)) + " " + statement + "\n";
}

// ---------------------------------------------------------------------------
// Basic shipping + watermark

TEST(ReplicationTest, ShipsWorkloadAndConvergesStateHash) {
  Primary primary = Primary::Start(FreshDir("basic_primary"));
  ReplicationSource source(primary.journal_path(), primary.SourceOptions());
  auto replica = Replica::Open(FreshDir("basic_replica"));
  ASSERT_TRUE(replica.ok()) << replica.status();

  ReplicationShipper shipper(&source, primary.engine.get(),
                             InstantShipperOptions());
  shipper.AddReplica(replica.value().get(), "r1");

  Session session = primary.engine->OpenSession();
  for (const std::string& statement : WorkloadPartOne()) {
    ASSERT_TRUE(session.Execute(statement).ok()) << statement;
  }
  for (const std::string& statement : WorkloadPartTwo()) {
    ASSERT_TRUE(session.Execute(statement).ok()) << statement;
  }
  ASSERT_TRUE(shipper.DrainAll().ok());

  // Caught up => the watermark covers every committed version. Checked
  // before the hashes: StateHashOf republishes the tip (WithExclusive),
  // which bumps version().
  EXPECT_EQ(primary.engine->min_replicated_version(),
            primary.engine->version());
  EXPECT_EQ(StateHashOf(primary.engine.get()),
            StateHashOf(&replica.value()->engine()));
  EXPECT_EQ(replica.value()->statements_applied(),
            WorkloadPartOne().size() + WorkloadPartTwo().size());
}

TEST(ReplicationTest, IndexDdlShipsAndReplicaRebuildsIdentically) {
  // Index DDL is a mutating statement: it must journal, ship, and replay
  // on the replica — which rebuilds the index data from its own objects
  // and must land bit-identical to the primary's incrementally-maintained
  // state (index data never travels over the wire).
  Primary primary = Primary::Start(FreshDir("idx_primary"));
  ReplicationSource source(primary.journal_path(), primary.SourceOptions());
  auto replica = Replica::Open(FreshDir("idx_replica"));
  ASSERT_TRUE(replica.ok()) << replica.status();
  ReplicationShipper shipper(&source, primary.engine.get(),
                             InstantShipperOptions());
  shipper.AddReplica(replica.value().get(), "r1");

  Session session = primary.engine->OpenSession();
  const std::vector<std::string> workload = {
      "define class person attributes name: temporal(string), "
      "salary: temporal(integer) end",
      "create person (name: 'Ann', salary: 100)",
      "create person (name: 'Bob', salary: 200)",
      "create index psal on person (salary)",
      "create index plife on person lifespan",
      "tick 3",
      "update i1 set salary = 150",
      "update i2 set salary = 50 during [1,2]",
      "tick 2",
      "drop index plife",
      "create person (name: 'Cyd', salary: 70)",
  };
  for (const std::string& statement : workload) {
    ASSERT_TRUE(session.Execute(statement).ok()) << statement;
  }
  ASSERT_TRUE(shipper.DrainAll().ok());

  EXPECT_EQ(StateHashOf(primary.engine.get()),
            StateHashOf(&replica.value()->engine()));
  const Database& pdb = primary.engine->writer_db();
  const Database& rdb = replica.value()->engine().writer_db();
  ASSERT_NE(rdb.GetIndexDef("psal"), nullptr);
  EXPECT_EQ(rdb.GetIndexDef("plife"), nullptr);  // dropped before drain
  EXPECT_EQ(pdb.DebugDumpIndexes(), rdb.DebugDumpIndexes());
  // The replica's index actually answers probes over its replayed data.
  std::vector<Oid> hit =
      rdb.IndexProbe("psal", ProbeOp::kEq, Value::Integer(150), rdb.now());
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].id, 1u);
}

TEST(ReplicationTest, ReadYourWritesWatermarkGatesReplicaReads) {
  Primary primary = Primary::Start(FreshDir("ryw_primary"));
  ReplicationSource source(primary.journal_path(), primary.SourceOptions());
  auto replica = Replica::Open(FreshDir("ryw_replica"));
  ASSERT_TRUE(replica.ok()) << replica.status();
  ReplicationShipper shipper(&source, primary.engine.get(),
                             InstantShipperOptions());
  shipper.AddReplica(replica.value().get(), "r1");

  Session session = primary.engine->OpenSession();
  EXPECT_EQ(session.read_staleness(), ReadStaleness::kReadYourWrites);
  // Nothing written yet: replica reads are trivially admissible.
  EXPECT_TRUE(session.CanReadFromReplica());

  for (const std::string& statement : WorkloadPartOne()) {
    ASSERT_TRUE(session.Execute(statement).ok()) << statement;
  }
  // The replica has not replayed the writes: read-your-writes forbids
  // routing this session's reads to it; eventual reads are fine.
  EXPECT_GT(session.last_write_version(), 0u);
  EXPECT_FALSE(session.CanReadFromReplica());
  session.set_read_staleness(ReadStaleness::kEventual);
  EXPECT_TRUE(session.CanReadFromReplica());
  session.set_read_staleness(ReadStaleness::kReadYourWrites);

  ASSERT_TRUE(shipper.DrainAll().ok());
  EXPECT_TRUE(session.CanReadFromReplica());
  EXPECT_GE(primary.engine->min_replicated_version(),
            session.last_write_version());
}

// ---------------------------------------------------------------------------
// Stream-fault validation (satellite: each is a retryable Status, no
// crash, no silent skip)

class StreamFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    primary_ = Primary::Start(FreshDir("fault_primary"));
    Session session = primary_.engine->OpenSession();
    for (const std::string& statement : WorkloadPartOne()) {
      ASSERT_TRUE(session.Execute(statement).ok()) << statement;
    }
    source_ = std::make_unique<ReplicationSource>(primary_.journal_path(),
                                                  primary_.SourceOptions());
    auto replica = Replica::Open(FreshDir("fault_replica"));
    ASSERT_TRUE(replica.ok()) << replica.status();
    replica_ = std::move(replica.value());
  }

  Result<ReplicationBatch> FetchAll() {
    return source_->Fetch(replica_->cursor(), 1024);
  }

  // After a rejected delivery the stream must still complete from the
  // replica's (unchanged or prefix-advanced) cursor.
  void ExpectStreamStillCompletes() {
    auto batch = FetchAll();
    ASSERT_TRUE(batch.ok()) << batch.status();
    ASSERT_TRUE(replica_->Apply(batch.value()).ok());
    EXPECT_EQ(StateHashOf(primary_.engine.get()),
              StateHashOf(&replica_->engine()));
  }

  Primary primary_;
  std::unique_ptr<ReplicationSource> source_;
  std::unique_ptr<Replica> replica_;
};

TEST_F(StreamFaultTest, SequenceGapIsRetryableNotSkipped) {
  auto batch = FetchAll();
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_GE(batch.value().records.size(), 3u);
  // Drop a middle record: the delivery must stop AT the gap — records
  // before it apply, the gap and everything after are refused.
  ReplicationBatch tampered = batch.value();
  tampered.records.erase(tampered.records.begin() + 1);
  Status status = replica_->Apply(tampered);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status;
  EXPECT_EQ(replica_->cursor().next_seq, 2u);  // stopped at the gap
  ExpectStreamStillCompletes();
}

TEST_F(StreamFaultTest, EpochMismatchIsRetryable) {
  auto batch = FetchAll();
  ASSERT_TRUE(batch.ok()) << batch.status();
  ReplicationBatch tampered = batch.value();
  ASSERT_FALSE(tampered.records.empty());
  tampered.records.front().epoch += 7;
  Status status = replica_->Apply(tampered);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status;
  EXPECT_EQ(replica_->cursor().next_seq, 1u);  // nothing applied
  ExpectStreamStillCompletes();
}

TEST_F(StreamFaultTest, CrcCorruptionIsRetryable) {
  auto batch = FetchAll();
  ASSERT_TRUE(batch.ok()) << batch.status();
  ReplicationBatch tampered = batch.value();
  ASSERT_FALSE(tampered.records.empty());
  tampered.records.front().statement[0] ^= 0x20;  // bit flip in transit
  Status status = replica_->Apply(tampered);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status;
  EXPECT_EQ(replica_->cursor().next_seq, 1u);
  ExpectStreamStillCompletes();
}

// ---------------------------------------------------------------------------
// Live-tail semantics (satellite: a partial record at the live tail is
// retried, never salvaged)

TEST(ReplicationTest, PartialLiveTailIsRetriedNeverSalvaged) {
  const std::string dir = FreshDir("partial_tail");
  const std::string path = dir + "/journal.tql";
  const std::string complete = FramedRecord(1, "tick 1");
  std::string torn = FramedRecord(2, "tick 2");
  torn.resize(torn.size() / 2);  // an append in flight: no newline yet
  {
    std::ofstream out(path, std::ios::binary);
    out << "TCHIMERA-JOURNAL 2 0\n" << complete << torn;
    ASSERT_TRUE(out.good());
  }

  // Offline source (no horizon provider): everything on disk ships.
  ReplicationSource source(path);
  ReplicationCursor cursor;
  auto first = source.Fetch(cursor, 16);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first.value().records.size(), 1u);
  EXPECT_TRUE(first.value().at_horizon);
  EXPECT_FALSE(HasCorruptQuarantine(dir)) << "live tail was salvaged";

  // Retrying at the tail keeps returning "nothing yet" without ever
  // touching the file.
  auto retry = source.Fetch(first.value().next, 16);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_TRUE(retry.value().records.empty());
  EXPECT_FALSE(HasCorruptQuarantine(dir));

  // The writer finishes the append: the record ships on the next fetch.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    std::string full = FramedRecord(2, "tick 2");
    out << full.substr(torn.size());
    ASSERT_TRUE(out.good());
  }
  auto after = source.Fetch(retry.value().next, 16);
  ASSERT_TRUE(after.ok()) << after.status();
  ASSERT_EQ(after.value().records.size(), 1u);
  EXPECT_EQ(after.value().records.front().seq, 2u);
  EXPECT_EQ(after.value().records.front().statement, "tick 2");
  EXPECT_FALSE(HasCorruptQuarantine(dir));
}

TEST(ReplicationTest, UnsyncedTailBeyondHorizonIsNotShipped) {
  Primary primary = Primary::Start(FreshDir("horizon_primary"));
  Session session = primary.engine->OpenSession();
  ASSERT_TRUE(session.Execute("tick 1").ok());

  // Forge bytes beyond the durable horizon: on disk, but the sink never
  // synced them — a crash could drop them, so they must not ship.
  {
    std::ofstream out(primary.journal_path(),
                      std::ios::binary | std::ios::app);
    out << FramedRecord(2, "tick 99");
    ASSERT_TRUE(out.good());
  }
  ReplicationSource source(primary.journal_path(), primary.SourceOptions());
  ReplicationCursor cursor;
  auto batch = source.Fetch(cursor, 16);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch.value().records.size(), 1u);
  EXPECT_EQ(batch.value().records.front().statement, "tick 1");
  EXPECT_TRUE(batch.value().at_horizon);
}

// ---------------------------------------------------------------------------
// Checkpoint resync + epoch rollover

TEST(ReplicationTest, LateJoinerResyncsFromCheckpoint) {
  Primary primary = Primary::Start(FreshDir("resync_primary"));
  Session session = primary.engine->OpenSession();
  for (const std::string& statement : WorkloadPartOne()) {
    ASSERT_TRUE(session.Execute(statement).ok()) << statement;
  }
  // The checkpoint deletes the epoch-0 journal: a follower that never
  // saw epoch 0 can only join via the snapshot.
  ASSERT_TRUE(primary.Checkpoint().ok());
  for (const std::string& statement : WorkloadPartTwo()) {
    ASSERT_TRUE(session.Execute(statement).ok()) << statement;
  }

  ReplicationSource source(primary.journal_path(), primary.SourceOptions());
  auto replica = Replica::Open(FreshDir("resync_replica"));
  ASSERT_TRUE(replica.ok()) << replica.status();
  ReplicationShipper shipper(&source, primary.engine.get(),
                             InstantShipperOptions());
  shipper.AddReplica(replica.value().get(), "late");

  ASSERT_TRUE(shipper.DrainAll().ok());
  EXPECT_GE(shipper.resyncs(), 1u);
  EXPECT_EQ(replica.value()->checkpoints_installed(), 1u);
  EXPECT_EQ(StateHashOf(primary.engine.get()),
            StateHashOf(&replica.value()->engine()));
}

TEST(ReplicationTest, FollowerRollsEpochsAcrossPrimaryCheckpoints) {
  Primary primary = Primary::Start(FreshDir("roll_primary"));
  ReplicationSource source(primary.journal_path(), primary.SourceOptions());
  auto replica = Replica::Open(FreshDir("roll_replica"));
  ASSERT_TRUE(replica.ok()) << replica.status();
  ReplicationShipper shipper(&source, primary.engine.get(),
                             InstantShipperOptions());
  shipper.AddReplica(replica.value().get(), "r1");

  Session session = primary.engine->OpenSession();
  for (const std::string& statement : WorkloadPartOne()) {
    ASSERT_TRUE(session.Execute(statement).ok()) << statement;
  }
  ASSERT_TRUE(shipper.DrainAll().ok());  // follower current in epoch 0

  ASSERT_TRUE(primary.Checkpoint().ok());
  for (const std::string& statement : WorkloadPartTwo()) {
    ASSERT_TRUE(session.Execute(statement).ok()) << statement;
  }
  ASSERT_TRUE(shipper.DrainAll().ok());

  // The follower crossed the rotation incrementally — no resync needed.
  EXPECT_EQ(shipper.resyncs(), 0u);
  EXPECT_EQ(replica.value()->cursor().epoch, 1u);
  EXPECT_EQ(StateHashOf(primary.engine.get()),
            StateHashOf(&replica.value()->engine()));

  // The replica mirrored the rotation locally: its own directory is a
  // recoverable snapshot+journal pair at the new epoch. Reopen it cold.
  std::string replica_dir = replica.value()->dir();
  replica.value().reset();
  auto reopened = Replica::Open(replica_dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(StateHashOf(primary.engine.get()),
            StateHashOf(&reopened.value()->engine()));
  EXPECT_EQ(reopened.value()->cursor().epoch, 1u);
}

// ---------------------------------------------------------------------------
// Promotion fencing

TEST(ReplicationTest, PromotionFencesOldPrimary) {
  EpochFence fence;
  Primary primary = Primary::Start(FreshDir("fence_primary"));
  primary.sink->AttachFence(&fence, /*authority_token=*/0);

  ReplicationSource source(primary.journal_path(), primary.SourceOptions());
  auto replica = Replica::Open(FreshDir("fence_replica"));
  ASSERT_TRUE(replica.ok()) << replica.status();
  ReplicationShipper shipper(&source, primary.engine.get(),
                             InstantShipperOptions());
  shipper.AddReplica(replica.value().get(), "r1");

  Session session = primary.engine->OpenSession();
  for (const std::string& statement : WorkloadPartOne()) {
    ASSERT_TRUE(session.Execute(statement).ok()) << statement;
  }
  ASSERT_TRUE(shipper.DrainAll().ok());

  // Failover: promote the replica. The fence must now reject the old
  // primary even though its process is still alive and its sink open.
  auto promotion = replica.value()->Promote(&fence);
  ASSERT_TRUE(promotion.ok()) << promotion.status();
  EXPECT_GT(promotion.value().token, 0u);

  Result<std::string> rejected = session.Execute("tick 1");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition)
      << rejected.status();
  // Checkpoints (the other way an ex-primary writes) are fenced too.
  Status checkpoint = primary.Checkpoint();
  EXPECT_EQ(checkpoint.code(), StatusCode::kFailedPrecondition);

  // The promoted node serves writes under its own authority: reopen its
  // journal through a group-commit sink carrying the promotion token.
  Replica& promoted = *replica.value();
  GroupCommitJournal new_sink;
  ASSERT_TRUE(new_sink.Open(promoted.dir() + "/journal.tql").ok());
  new_sink.AttachFence(&fence, promotion.value().token);
  promoted.engine().set_commit_sink(&new_sink);
  Session new_session = promoted.engine().OpenSession();
  EXPECT_TRUE(new_session.Execute("tick 1").ok());
  // A promoted replica never applies the old stream again.
  ReplicationBatch stale;
  EXPECT_EQ(promoted.Apply(stale).code(), StatusCode::kFailedPrecondition);
  new_sink.Close();
}

// ---------------------------------------------------------------------------
// Backoff

TEST(ReplicationTest, BackoffIsBoundedDeterministicAndJittered) {
  ExponentialBackoff::Options opts;
  opts.initial = std::chrono::microseconds(100);
  opts.max = std::chrono::microseconds(10'000);
  opts.multiplier = 2.0;
  opts.jitter = 0.2;
  ExponentialBackoff a(opts), b(opts);
  std::chrono::microseconds prev{0};
  for (int i = 0; i < 12; ++i) {
    auto delay_a = a.NextDelay();
    auto delay_b = b.NextDelay();
    EXPECT_EQ(delay_a, delay_b) << "same seed must reproduce";
    EXPECT_GE(delay_a.count(), 0);
    EXPECT_LE(delay_a.count(), opts.max.count());
    if (i < 5) {
      EXPECT_GE(delay_a, prev / 4);  // roughly growing
    }
    prev = delay_a;
  }
  // The tail of the sequence saturates near max (within jitter).
  EXPECT_GE(prev.count(),
            static_cast<int64_t>(opts.max.count() * (1.0 - opts.jitter)));
  a.Reset();
  EXPECT_EQ(a.attempts(), 0u);
  EXPECT_LE(a.NextDelay().count(),
            static_cast<int64_t>(opts.initial.count() * (1.0 + opts.jitter)));
}

TEST(ReplicationTest, PerReplicaSeedsSpreadTheHerd) {
  // Regression: every follower used to construct its backoff from the
  // shared options verbatim — identical seed, identical jitter stream —
  // so after a primary hiccup all replicas retried in lockstep, which is
  // exactly the thundering herd jitter exists to prevent. SeededFor must
  // derive distinct streams per replica name while staying deterministic
  // for a given (seed, name) pair.
  ExponentialBackoff::Options opts;
  opts.initial = std::chrono::microseconds(1'000);
  opts.max = std::chrono::microseconds(1'000'000);
  opts.multiplier = 2.0;
  opts.jitter = 0.5;

  const char* names[] = {"r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8"};
  std::vector<ExponentialBackoff> herd;
  for (const char* name : names) {
    herd.emplace_back(ExponentialBackoff::SeededFor(opts, name));
  }
  // Deterministic: the same (options, name) yields the same stream.
  ExponentialBackoff again(ExponentialBackoff::SeededFor(opts, "r1"));
  EXPECT_EQ(herd[0].NextDelay(), again.NextDelay());

  // Spread: across a few rounds the herd must not collapse onto one
  // delay. With 50% jitter and distinct streams, even one all-equal
  // round is astronomically unlikely — require most delays distinct.
  for (int round = 0; round < 4; ++round) {
    std::set<int64_t> distinct;
    for (ExponentialBackoff& b : herd) {
      distinct.insert(b.NextDelay().count());
    }
    EXPECT_GE(distinct.size(), herd.size() / 2)
        << "followers retried in lockstep on round " << round;
  }

  // A zero caller seed must not defeat the name mixing.
  ExponentialBackoff::Options zero = opts;
  zero.seed = 0;
  auto s1 = ExponentialBackoff::SeededFor(zero, "a");
  auto s2 = ExponentialBackoff::SeededFor(zero, "b");
  EXPECT_NE(s1.seed, s2.seed);
  EXPECT_NE(s1.seed, 0u);
}

// ---------------------------------------------------------------------------
// Concurrent replica reads while the pump applies (MVCC isolation)

TEST(ReplicationTest, SnapshotReadsRaceFreeWithApply) {
  Primary primary = Primary::Start(FreshDir("race_primary"));
  Session session = primary.engine->OpenSession();
  for (const std::string& statement : WorkloadPartOne()) {
    ASSERT_TRUE(session.Execute(statement).ok()) << statement;
  }
  for (const std::string& statement : WorkloadPartTwo()) {
    ASSERT_TRUE(session.Execute(statement).ok()) << statement;
  }

  ReplicationSource source(primary.journal_path(), primary.SourceOptions());
  auto replica = Replica::Open(FreshDir("race_replica"));
  ASSERT_TRUE(replica.ok()) << replica.status();
  ReplicationShipper shipper(&source, primary.engine.get(),
                             InstantShipperOptions());
  shipper.AddReplica(replica.value().get(), "r1");

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      ReadSnapshot snap = replica.value()->OpenSnapshot();
      // Touch the snapshot: versions must be immutable under the reader.
      (void)snap.db().now();
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });
  Status drained = shipper.DrainAll();
  done.store(true, std::memory_order_release);
  reader.join();
  ASSERT_TRUE(drained.ok()) << drained;
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(StateHashOf(primary.engine.get()),
            StateHashOf(&replica.value()->engine()));
}

// ---------------------------------------------------------------------------
// Crash-point enumeration — primary (shipping) side. The primary runs
// the workload with a checkpoint in the middle on a fault-injection
// filesystem, crashing at every Nth mutating operation. After each
// crash: recover the primary, attach a fresh replica, drain, and demand
// state-hash equality. This proves the stream is always reconstructible
// from whatever a primary crash leaves on disk (salvaged tails, half
// checkpoints, deleted epochs).

// Runs the primary workload (part one, checkpoint, part two); failures
// are expected when a crash plan is armed.
void RunPrimaryWorkloadOn(Primary* primary, FileSystem* fs) {
  Session session = primary->engine->OpenSession();
  for (const std::string& statement : WorkloadPartOne()) {
    if (!session.Execute(statement).ok()) return;
  }
  if (!primary->Checkpoint(fs).ok()) return;
  for (const std::string& statement : WorkloadPartTwo()) {
    if (!session.Execute(statement).ok()) return;
  }
}

TEST(ReplicationCrashTest, PrimaryCrashPointsAllRecoverAndShip) {
  FaultInjectionFileSystem ffs(FileSystem::Default());

  // Fault-free baseline: count the primary's mutating fs operations.
  {
    Primary baseline = Primary::Start(FreshDir("pcrash_base"), &ffs);
    ffs.ClearPlan();
    RunPrimaryWorkloadOn(&baseline, &ffs);
    baseline.sink->Close();
  }
  const uint64_t total_ops = ffs.ops_seen();
  ASSERT_GT(total_ops, 0u);
  const uint64_t stride = CrashStride((total_ops / 10) + 1);

  for (uint64_t crash_at = 0; crash_at < total_ops; crash_at += stride) {
    SCOPED_TRACE("crash at primary op " + std::to_string(crash_at));
    const std::string dir = FreshDir("pcrash_p");
    {
      Primary doomed = Primary::Start(dir, &ffs);
      FaultPlan plan;
      plan.mode = FaultPlan::Mode::kCrash;
      plan.at_op = crash_at;
      plan.surviving_tail_bytes = crash_at % 7;  // vary the torn prefix
      ffs.SetPlan(plan);
      RunPrimaryWorkloadOn(&doomed, &ffs);
      // The doomed node's buffers die with it (sink poisoned already).
    }
    ffs.ClearPlan();

    Primary recovered;
    Status status = Primary::Recover(dir, &ffs, &recovered);
    ASSERT_TRUE(status.ok()) << status;

    ReplicationSource source(recovered.journal_path(),
                             recovered.SourceOptions());
    auto replica = Replica::Open(FreshDir("pcrash_r"));
    ASSERT_TRUE(replica.ok()) << replica.status();
    ReplicationShipper shipper(&source, recovered.engine.get(),
                               InstantShipperOptions());
    shipper.AddReplica(replica.value().get(), "r1");
    Status drained = shipper.DrainAll();
    ASSERT_TRUE(drained.ok()) << drained;
    EXPECT_EQ(recovered.engine->min_replicated_version(),
              recovered.engine->version());
    EXPECT_EQ(StateHashOf(recovered.engine.get()),
              StateHashOf(&replica.value()->engine()));
    recovered.sink->Close();
  }
}

// ---------------------------------------------------------------------------
// Crash-point enumeration — replica (replay) side. The primary is
// healthy; the replica's filesystem crashes at every Nth mutating
// operation while it follows the stream across a checkpoint rollover.
// After each crash: reopen the replica (ordinary local recovery), drain
// again, and demand state-hash equality.

// One full follower run on `ffs`: join, drain part one, follow the
// primary across its checkpoint, drain part two. Failures expected.
void RunReplicaFollow(Primary* primary, FaultInjectionFileSystem* ffs,
                      const std::string& replica_dir) {
  ReplicationSource source(primary->journal_path(),
                           primary->SourceOptions());
  ReplicaOptions ropts;
  ropts.fs = ffs;
  auto replica = Replica::Open(replica_dir, ropts);
  if (!replica.ok()) return;  // crashed during open
  ReplicationShipper shipper(&source, primary->engine.get(),
                             InstantShipperOptions());
  shipper.AddReplica(replica.value().get(), "r1");
  if (!shipper.DrainAll().ok()) return;

  Session session = primary->engine->OpenSession();
  if (!primary->Checkpoint(nullptr).ok()) return;
  for (const std::string& statement : WorkloadPartTwo()) {
    if (!session.Execute(statement).ok()) return;
  }
  (void)shipper.DrainAll();
}

TEST(ReplicationCrashTest, ReplicaCrashPointsAllRecoverAndConverge) {
  // Fault-free baseline for the operation count.
  FaultInjectionFileSystem ffs(FileSystem::Default());
  uint64_t total_ops = 0;
  {
    Primary primary = Primary::Start(FreshDir("rcrash_base_p"));
    Session session = primary.engine->OpenSession();
    for (const std::string& statement : WorkloadPartOne()) {
      ASSERT_TRUE(session.Execute(statement).ok()) << statement;
    }
    ffs.ClearPlan();
    RunReplicaFollow(&primary, &ffs, FreshDir("rcrash_base_r"));
    total_ops = ffs.ops_seen();
    primary.sink->Close();
  }
  ASSERT_GT(total_ops, 0u);
  const uint64_t stride = CrashStride((total_ops / 10) + 1);

  for (uint64_t crash_at = 0; crash_at < total_ops; crash_at += stride) {
    SCOPED_TRACE("crash at replica op " + std::to_string(crash_at));
    Primary primary = Primary::Start(FreshDir("rcrash_p"));
    Session session = primary.engine->OpenSession();
    for (const std::string& statement : WorkloadPartOne()) {
      ASSERT_TRUE(session.Execute(statement).ok()) << statement;
    }
    const std::string replica_dir = FreshDir("rcrash_r");
    FaultPlan plan;
    plan.mode = FaultPlan::Mode::kCrash;
    plan.at_op = crash_at;
    plan.surviving_tail_bytes = crash_at % 5;
    ffs.SetPlan(plan);
    RunReplicaFollow(&primary, &ffs, replica_dir);
    ffs.ClearPlan();

    // Make sure the primary finished its side regardless of where the
    // follower died (the follower's crash must never stall the primary).
    {
      Session finish = primary.engine->OpenSession();
      ReadSnapshot tip = primary.engine->OpenSnapshot();
      if (tip.db().now() < 5) {
        if (primary.Checkpoint(nullptr).ok()) {
          for (const std::string& statement : WorkloadPartTwo()) {
            (void)finish.Execute(statement);
          }
        }
      }
    }

    // Replica restart: ordinary local recovery over the shipped copy,
    // then resume the stream (resyncing if its epoch was pruned).
    ReplicaOptions ropts;
    ropts.fs = &ffs;
    auto reopened = Replica::Open(replica_dir, ropts);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    ReplicationSource source(primary.journal_path(),
                             primary.SourceOptions());
    ReplicationShipper shipper(&source, primary.engine.get(),
                               InstantShipperOptions());
    shipper.AddReplica(reopened.value().get(), "r1");
    Status drained = shipper.DrainAll();
    ASSERT_TRUE(drained.ok()) << drained;
    EXPECT_EQ(StateHashOf(primary.engine.get()),
              StateHashOf(&reopened.value()->engine()));
    primary.sink->Close();
  }
}

}  // namespace
}  // namespace tchimera
