// Unit + property tests for IntervalSet (temporal elements). The property
// suite cross-checks the interval algebra against a brute-force bitset
// model over a small domain.
#include <gtest/gtest.h>

#include <bitset>
#include <random>

#include "core/temporal/interval_set.h"

namespace tchimera {
namespace {

TEST(IntervalSetTest, NormalizationSortsMergesAndDropsEmpties) {
  IntervalSet s({Interval(7, 9), Interval(1, 3), Interval(4, 5),
                 Interval::Empty(), Interval(2, 4)});
  // [1,3], [4,5], [2,4] merge into [1,5]; [7,9] stays.
  EXPECT_EQ(s.ToString(), "{[1,5],[7,9]}");
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_EQ(s.Cardinality(), 8);
}

TEST(IntervalSetTest, ContainsBinarySearch) {
  IntervalSet s({Interval(1, 3), Interval(10, 12), Interval(20, 20)});
  for (TimePoint t : {1, 2, 3, 10, 12, 20}) EXPECT_TRUE(s.Contains(t));
  for (TimePoint t : {0, 4, 9, 13, 19, 21}) EXPECT_FALSE(s.Contains(t));
}

TEST(IntervalSetTest, CoversInterval) {
  IntervalSet s({Interval(1, 5), Interval(8, 10)});
  EXPECT_TRUE(s.CoversInterval(Interval(2, 4)));
  EXPECT_TRUE(s.CoversInterval(Interval(1, 5)));
  EXPECT_TRUE(s.CoversInterval(Interval::Empty()));
  EXPECT_FALSE(s.CoversInterval(Interval(4, 8)));  // gap at 6-7
  EXPECT_FALSE(s.CoversInterval(Interval(0, 2)));
}

TEST(IntervalSetTest, UnionIntersectDifference) {
  IntervalSet a({Interval(1, 5), Interval(10, 15)});
  IntervalSet b({Interval(4, 11)});
  EXPECT_EQ(a.Union(b).ToString(), "{[1,15]}");
  EXPECT_EQ(a.Intersect(b).ToString(), "{[4,5],[10,11]}");
  EXPECT_EQ(a.Difference(b).ToString(), "{[1,3],[12,15]}");
  EXPECT_EQ(b.Difference(a).ToString(), "{[6,9]}");
}

TEST(IntervalSetTest, ContiguityForLifespans) {
  EXPECT_TRUE(IntervalSet().IsContiguous());
  EXPECT_TRUE(IntervalSet::Of(Interval(1, 9)).IsContiguous());
  EXPECT_FALSE(
      IntervalSet({Interval(1, 3), Interval(5, 9)}).IsContiguous());
}

TEST(IntervalSetTest, AddCoalesces) {
  IntervalSet s;
  s.Add(Interval(1, 3));
  s.Add(Interval(7, 9));
  s.Add(Interval(4, 6));  // bridges the gap
  EXPECT_EQ(s.ToString(), "{[1,9]}");
}

// --- property suite against a bitset model ----------------------------------

constexpr int kDomain = 64;

std::bitset<kDomain> ToBits(const IntervalSet& s) {
  std::bitset<kDomain> bits;
  for (int t = 0; t < kDomain; ++t) {
    if (s.Contains(t)) bits.set(t);
  }
  return bits;
}

IntervalSet RandomSet(std::mt19937_64* rng) {
  std::uniform_int_distribution<int> count(0, 5);
  std::uniform_int_distribution<int> point(0, kDomain - 1);
  std::vector<Interval> intervals;
  int n = count(*rng);
  for (int i = 0; i < n; ++i) {
    int a = point(*rng);
    int b = point(*rng);
    intervals.emplace_back(std::min(a, b), std::max(a, b));
  }
  return IntervalSet(std::move(intervals));
}

class IntervalSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSetPropertyTest, AlgebraMatchesBitsetModel) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    IntervalSet a = RandomSet(&rng);
    IntervalSet b = RandomSet(&rng);
    std::bitset<kDomain> ba = ToBits(a);
    std::bitset<kDomain> bb = ToBits(b);
    EXPECT_EQ(ToBits(a.Union(b)), ba | bb);
    EXPECT_EQ(ToBits(a.Intersect(b)), ba & bb);
    EXPECT_EQ(ToBits(a.Difference(b)), ba & ~bb);
    // Cardinality agrees with the model.
    EXPECT_EQ(static_cast<size_t>(a.Cardinality()), ba.count());
    // CoversSet <=> subset.
    EXPECT_EQ(a.CoversSet(b), (bb & ~ba).none());
  }
}

TEST_P(IntervalSetPropertyTest, AlgebraicLaws) {
  std::mt19937_64 rng(GetParam() ^ 0x9e3779b97f4a7c15ULL);
  for (int round = 0; round < 50; ++round) {
    IntervalSet a = RandomSet(&rng);
    IntervalSet b = RandomSet(&rng);
    IntervalSet c = RandomSet(&rng);
    // Commutativity and associativity of union/intersection.
    EXPECT_EQ(a.Union(b), b.Union(a));
    EXPECT_EQ(a.Intersect(b), b.Intersect(a));
    EXPECT_EQ(a.Union(b).Union(c), a.Union(b.Union(c)));
    EXPECT_EQ(a.Intersect(b).Intersect(c), a.Intersect(b.Intersect(c)));
    // Idempotence and absorption.
    EXPECT_EQ(a.Union(a), a);
    EXPECT_EQ(a.Intersect(a), a);
    EXPECT_EQ(a.Union(a.Intersect(b)), a);
    // Difference laws.
    EXPECT_EQ(a.Difference(a), IntervalSet());
    EXPECT_EQ(a.Difference(IntervalSet()), a);
    // Normalization is canonical: re-normalizing is the identity.
    EXPECT_EQ(IntervalSet(a.intervals()), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace tchimera
