// Tests for the four equality notions of Section 5.3 (Definitions
// 5.7-5.10), including the implication lattice
//   identity => value => instantaneous => weak
// verified as a property over randomly generated object pairs.
#include <gtest/gtest.h>

#include <random>

#include "core/db/equality.h"
#include "core/values/temporal_function.h"

namespace tchimera {
namespace {

Value I(int64_t v) { return Value::Integer(v); }

// An all-temporal object with one attribute "x" following `segments`.
Object HistoricalObject(uint64_t id, TimePoint born,
                        std::vector<TemporalFunction::Segment> segments) {
  Object obj(Oid{id}, "c", born);
  TemporalFunction f;
  for (auto& seg : segments) {
    EXPECT_TRUE(f.Define(seg.interval, std::move(seg.value)).ok());
  }
  obj.SetAttribute("x", Value::Temporal(std::move(f)));
  return obj;
}

TEST(EqualityTest, IdentityIsOidEquality) {
  Object a(Oid{1}, "c", 0);
  Object b(Oid{1}, "c", 0);
  Object c(Oid{2}, "c", 0);
  EXPECT_TRUE(EqualByIdentity(a, b));
  EXPECT_FALSE(EqualByIdentity(a, c));
}

TEST(EqualityTest, ValueEqualityComparesFullHistories) {
  Object a = HistoricalObject(1, 0, {{Interval(0, 10), I(1)},
                                     {Interval(11, 20), I(2)}});
  Object b = HistoricalObject(2, 0, {{Interval(0, 10), I(1)},
                                     {Interval(11, 20), I(2)}});
  EXPECT_TRUE(EqualByValue(a, b));
  // Same current value, different past: not value equal.
  Object c = HistoricalObject(3, 0, {{Interval(0, 5), I(9)},
                                     {Interval(6, 10), I(1)},
                                     {Interval(11, 20), I(2)}});
  EXPECT_FALSE(EqualByValue(a, c));
  // Different attribute names: not value equal.
  Object d(Oid{4}, "c", 0);
  d.SetAttribute("y", a.Attribute("x") != nullptr ? *a.Attribute("x")
                                                  : Value::Null());
  EXPECT_FALSE(EqualByValue(a, d));
}

TEST(EqualityTest, InstantaneousNeedsACommonInstant) {
  // a: x=1 on [0,10], x=2 on [11,20]; b: x=2 on [0,10], x=1 on [11,20].
  // They never agree at the same instant...
  Object a = HistoricalObject(1, 0, {{Interval(0, 10), I(1)},
                                     {Interval(11, 20), I(2)}});
  Object b = HistoricalObject(2, 0, {{Interval(0, 10), I(2)},
                                     {Interval(11, 20), I(1)}});
  // Close both lifespans at 20 — past 20 both attributes would project to
  // null and trivially agree.
  ASSERT_TRUE(a.CloseLifespan(20).ok());
  ASSERT_TRUE(b.CloseLifespan(20).ok());
  EXPECT_FALSE(InstantaneousValueEqual(a, b, 100));
  // ...but each value occurred in both lifetimes: weakly equal
  // (Definition 5.10).
  auto witness = WeakEqualityWitness(a, b, 100);
  ASSERT_TRUE(witness.has_value());
  EXPECT_NE(witness->first, witness->second);

  // c agrees with a on [5,10].
  Object c = HistoricalObject(3, 0, {{Interval(0, 4), I(7)},
                                     {Interval(5, 10), I(1)},
                                     {Interval(11, 20), I(2)}});
  auto t = InstantaneousEqualityWitness(a, c, 100);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 5);  // earliest witness
}

TEST(EqualityTest, DisjointLifespansAreNeverInstantaneouslyEqual) {
  Object a = HistoricalObject(1, 0, {{Interval(0, 10), I(1)}});
  Object b = HistoricalObject(2, 50, {{Interval(50, 60), I(1)}});
  // Lifespans are ongoing from birth; clip: a=[0,now], b=[50,now]; they
  // do intersect. Close a's lifespan first.
  ASSERT_TRUE(a.CloseLifespan(10).ok());
  EXPECT_FALSE(InstantaneousValueEqual(a, b, 100));
  // Weak equality still holds: both had x=1 at some instant.
  EXPECT_TRUE(WeakValueEqual(a, b, 100));
}

TEST(EqualityTest, ObjectsWithStaticAttributesCompareOnlyAtNow) {
  // Section 5.3: snapshots of objects with static attributes exist only
  // at the current time.
  Object a(Oid{1}, "c", 0);
  a.SetAttribute("s", I(5));
  ASSERT_TRUE(a.AssertTemporalAttribute("x", 0, I(1)).ok());
  Object b(Oid{2}, "c", 0);
  b.SetAttribute("s", I(5));
  ASSERT_TRUE(b.AssertTemporalAttribute("x", 0, I(2)).ok());
  // Current x values differ: not equal at now, and the past is
  // inaccessible.
  EXPECT_FALSE(InstantaneousValueEqual(a, b, 100));
  EXPECT_FALSE(WeakValueEqual(a, b, 100));
  // Align the current values: equal at now.
  ASSERT_TRUE(b.AssertTemporalAttribute("x", 50, I(1)).ok());
  auto t = InstantaneousEqualityWitness(a, b, 100);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 100);
  auto w = WeakEqualityWitness(a, b, 100);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->first, 100);
  EXPECT_EQ(w->second, 100);
}

TEST(EqualityTest, PaperExample54) {
  // "Two project objects having the same current state and the same
  // history of modifications ... are value equal. By contrast, two
  // project objects having the same current value for all the attributes
  // are instantaneous (and thus, weak) value equal."
  Object a = HistoricalObject(1, 0, {{Interval(0, 49), I(10)},
                                     {Interval(50, 99), I(20)}});
  Object b = HistoricalObject(2, 0, {{Interval(0, 49), I(10)},
                                     {Interval(50, 99), I(20)}});
  EXPECT_TRUE(EqualByValue(a, b));
  EXPECT_TRUE(InstantaneousValueEqual(a, b, 99));
  EXPECT_TRUE(WeakValueEqual(a, b, 99));
  Object c = HistoricalObject(3, 0, {{Interval(0, 98), I(77)},
                                     {Interval(99, 99), I(20)}});
  EXPECT_FALSE(EqualByValue(a, c));
  EXPECT_TRUE(InstantaneousValueEqual(a, c, 99));  // both 20 at t=99
}

// --- the implication lattice as a property ------------------------------------

class EqualityLatticeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EqualityLatticeTest, ImplicationsHoldOnRandomPairs) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> val(0, 2);
  std::uniform_int_distribution<TimePoint> len(1, 8);
  auto random_object = [&](uint64_t id) {
    Object obj(Oid{id}, "c", 0);
    TemporalFunction f;
    TimePoint cursor = 0;
    while (cursor < 40) {
      TimePoint end = cursor + len(rng);
      EXPECT_TRUE(f.Define(Interval(cursor, end), I(val(rng))).ok());
      cursor = end + 1;
    }
    obj.SetAttribute("x", Value::Temporal(std::move(f)));
    return obj;
  };
  int value_equal = 0, instant_equal = 0, weak_equal = 0;
  for (int round = 0; round < 200; ++round) {
    Object a = random_object(1);
    Object b = random_object(2);
    bool v = EqualByValue(a, b);
    bool inst = InstantaneousValueEqual(a, b, 40);
    bool weak = WeakValueEqual(a, b, 40);
    // value => instantaneous => weak.
    if (v) {
      EXPECT_TRUE(inst) << "round " << round;
    }
    if (inst) {
      EXPECT_TRUE(weak) << "round " << round;
    }
    value_equal += v;
    instant_equal += inst;
    weak_equal += weak;
    // Identity implies everything: compare an object with itself.
    EXPECT_TRUE(EqualByIdentity(a, a));
    EXPECT_TRUE(EqualByValue(a, a));
    EXPECT_TRUE(InstantaneousValueEqual(a, a, 40));
    EXPECT_TRUE(WeakValueEqual(a, a, 40));
  }
  // With only 3 values, instants collide frequently: the generator must
  // exercise all three levels distinctly.
  EXPECT_GT(weak_equal, instant_equal - 1);
  EXPECT_GT(instant_equal, value_equal - 1);
  EXPECT_GT(weak_equal, 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqualityLatticeTest,
                         ::testing::Values(7, 14, 21, 28));

}  // namespace
}  // namespace tchimera
