// Differential tests for the compiled query pipeline (query/lower.h +
// query/vm.h): every lowerable statement must produce bit-identical
// results on the batch VM and the tree-walking evaluator — including
// WHICH rows error (the short-circuit masks) — plus plan-cache
// behaviour (hits, DDL invalidation) through Engine/Session.
#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <string>
#include <vector>

#include "core/db/database.h"
#include "query/interpreter.h"
#include "query/lower.h"
#include "query/parser.h"
#include "query/session.h"
#include "query/vm.h"

namespace tchimera {
namespace {

// Lowers and runs `text` on the VM. A fallback is surfaced as an error so
// differential tests notice when a statement they expect to compile
// stops compiling.
Result<std::string> RunCompiled(const std::string& text,
                                const Database& db) {
  TCH_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(text));
  TCH_ASSIGN_OR_RETURN(LowerOutcome outcome, LowerStatement(&stmt, db));
  if (!outcome.compiled()) {
    return Status::FailedPrecondition("fallback: " +
                                      outcome.fallback_reason);
  }
  const ExecProgram& prog = outcome.plan->program;
  if (outcome.plan->kind == LoweredPlan::Kind::kSelect) {
    TCH_ASSIGN_OR_RETURN(std::vector<SelectRow> rows,
                         RunSelect(prog, db));
    return FormatSelectRows(rows);
  }
  TCH_ASSIGN_OR_RETURN(IntervalSet held, RunWhen(prog, db));
  return held.ToString();
}

class VmDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Interpreter interp(&db_);
    auto run = [&](const std::string& s) {
      auto r = interp.Execute(s);
      ASSERT_TRUE(r.ok()) << s << ": " << r.status();
    };
    run("define class person attributes name: temporal(string), "
        "birthyear: integer end");
    run("define class employee under person attributes "
        "salary: temporal(integer), office: string end");
    Result<std::string> a =
        interp.Execute("create employee (name: 'Ann', birthyear: 1970, "
                       "salary: 100, office: 'A1')");
    ASSERT_TRUE(a.ok());
    a_ = *a;
    Result<std::string> b =
        interp.Execute("create employee (name: 'Bob', birthyear: 1980, "
                       "salary: 200, office: 'B2')");
    ASSERT_TRUE(b.ok());
    b_ = *b;
    // Multi-segment histories: salary changes mid-life, one update is
    // retroactive (splits segments), names change too.
    run("advance to 20");
    run("update " + a_ + " set salary = 150");
    run("update " + b_ + " set name = 'Rob'");
    run("advance to 40");
    run("update " + a_ + " set salary = 90 during [5,9]");
    run("update " + b_ + " set salary = 300");
    Result<std::string> c =
        interp.Execute("create employee (name: 'Cyd', birthyear: 1990, "
                       "salary: 50, office: 'C3')");
    ASSERT_TRUE(c.ok());
    c_ = *c;
    run("advance to 60");
  }

  // The core differential assertion: same success/failure, same output
  // text, same error (code and message) on both paths.
  void ExpectSame(const std::string& text) {
    Interpreter interp(&db_);
    Result<std::string> walked = interp.Execute(text);
    Result<std::string> compiled = RunCompiled(text, db_);
    if (walked.ok()) {
      ASSERT_TRUE(compiled.ok())
          << text << "\n  tree-walker: " << *walked
          << "\n  vm error: " << compiled.status().ToString();
      EXPECT_EQ(*walked, *compiled) << text;
    } else {
      ASSERT_FALSE(compiled.ok())
          << text << "\n  tree-walker error: "
          << walked.status().ToString()
          << "\n  vm result: " << *compiled;
      EXPECT_EQ(walked.status().code(), compiled.status().code()) << text;
      EXPECT_EQ(walked.status().ToString(), compiled.status().ToString())
          << text;
    }
  }

  Database db_;
  std::string a_, b_, c_;
};

TEST_F(VmDifferentialTest, SelectBattery) {
  const std::string queries[] = {
      "select x from x in employee",
      "select x from x in person",
      "select x.name from x in employee where x.salary > 120",
      "select x, x.salary from x in employee where x.salary <= 150",
      "select x.name, x.office from x in employee",
      "select x from x in employee at 10 where x.salary > 95",
      "select x from x in employee at 3 where x.salary > 95",
      "select x from x in employee where x.salary @ 7 < 100",
      "select x from x in employee where x.salary @ 25 >= 150",
      "select x.name @ 10 from x in employee",
      "select x from x in employee where x.birthyear + 10 < 1985",
      "select x from x in employee where x.salary * 2 > 250 and "
      "x.birthyear < 1985",
      "select x from x in employee where x.salary > 100 or "
      "x.office = 'C3'",
      "select x from x in employee where not (x.salary > 100)",
      "select x from x in employee where x.name = 'Rob'",
      "select x from x in employee where 1 + 1 = 2",
      "select x from x in employee where false",
      "select x from x in employee where x = " + a_,
  };
  for (const std::string& q : queries) ExpectSame(q);
}

TEST_F(VmDifferentialTest, WhenBattery) {
  const std::string queries[] = {
      "when " + a_ + ".salary > 95",
      "when " + a_ + ".salary > 95 and " + b_ + ".salary < 250",
      "when " + a_ + ".salary + " + b_ + ".salary > 300",
      "when " + a_ + ".name = 'Ann' or " + c_ + ".salary = 50",
      "when not (" + a_ + ".salary = 100)",
      "when " + a_ + ".salary > 95 during [3,30]",
      "when " + a_ + ".salary > 95 during [0,now]",
      "when " + b_ + ".salary >= 300 during [35,now]",
      "when true",
      "when false",
  };
  for (const std::string& q : queries) ExpectSame(q);
}

TEST_F(VmDifferentialTest, ShortCircuitMasksErrorsIdentically) {
  // The masked rhs must evaluate over exactly the rows the tree-walker
  // reaches: rows short-circuited away never see the division.
  ExpectSame("select x from x in employee where false and 1 / 0 = 1");
  ExpectSame("select x from x in employee where true or 1 / 0 = 1");
  // Bob (1980) would divide by zero; the conjunction masks him out.
  ExpectSame("select x from x in employee where x.birthyear < 1979 and "
             "100 / (x.birthyear - 1980) < 0");
  // Here Ann (1970) reaches the division by zero on both paths.
  ExpectSame("select x from x in employee where x.birthyear < 1979 and "
             "100 / (x.birthyear - 1970) > 0");
  // Pure-but-erroring subtrees are not folded away; they fire only when
  // a row reaches them.
  ExpectSame("select x from x in employee where x.salary > 1000 and "
             "1 / 0 = 1");
}

TEST_F(VmDifferentialTest, RandomizedPredicates) {
  // Seeded grammar walk over int/bool expressions; every generated
  // predicate must agree between the two paths (including the ones that
  // error — e.g. a division whose divisor hits zero on some row).
  std::mt19937 rng(20260809);
  auto pick = [&](int n) { return static_cast<int>(rng() % n); };
  std::function<std::string(int)> int_expr = [&](int depth) -> std::string {
    if (depth <= 0 || pick(3) == 0) {
      switch (pick(4)) {
        case 0: return "x.birthyear";
        case 1: return "x.salary";
        case 2: return std::to_string(pick(400) - 50);
        default: return "x.salary @ " + std::to_string(pick(60));
      }
    }
    static const char* ops[] = {" + ", " - ", " * ", " / "};
    return "(" + int_expr(depth - 1) + ops[pick(4)] +
           int_expr(depth - 1) + ")";
  };
  std::function<std::string(int)> bool_expr =
      [&](int depth) -> std::string {
    if (depth <= 0 || pick(4) == 0) {
      static const char* cmps[] = {" = ", " <> ", " < ", " <= ", " > ",
                                   " >= "};
      return "(" + int_expr(1) + cmps[pick(6)] + int_expr(1) + ")";
    }
    switch (pick(3)) {
      case 0: return "(" + bool_expr(depth - 1) + " and " +
                     bool_expr(depth - 1) + ")";
      case 1: return "(" + bool_expr(depth - 1) + " or " +
                     bool_expr(depth - 1) + ")";
      default: return "(not " + bool_expr(depth - 1) + ")";
    }
  };
  for (int i = 0; i < 150; ++i) {
    ExpectSame("select x, x.salary from x in employee where " +
               bool_expr(3));
  }
  for (int i = 0; i < 100; ++i) {
    std::string cond = bool_expr(2);
    // Rebind the free variable to a literal object for WHEN.
    size_t pos;
    while ((pos = cond.find("x.")) != std::string::npos) {
      cond.replace(pos, 1, pick(2) == 0 ? a_ : b_);
    }
    ExpectSame("when " + cond);
  }
}

TEST_F(VmDifferentialTest, SessionCompileToggleMatches) {
  // The same statements through Session with the compiled path on/off.
  Engine engine;
  Session on = engine.OpenSession();
  Session off = engine.OpenSession();
  off.set_compile_enabled(false);
  for (const char* s :
       {"define class p attributes v: temporal(integer) end",
        "create p (v: 1)", "advance to 9", "update i1 set v = 5"}) {
    Result<std::string> r = on.Execute(s);
    ASSERT_TRUE(r.ok()) << s << ": " << r.status();
  }
  const std::string queries[] = {
      "select x, x.v from x in p where x.v > 0",
      "select x from x in p where x.v @ 3 = 1",
      "when i1.v > 2",
      "when i1.v > 2 during [0,5]",
  };
  for (const std::string& q : queries) {
    Result<std::string> compiled = on.Execute(q);
    Result<std::string> walked = off.Execute(q);
    ASSERT_TRUE(compiled.ok()) << q << ": " << compiled.status();
    ASSERT_TRUE(walked.ok()) << q << ": " << walked.status();
    EXPECT_EQ(*compiled, *walked) << q;
  }
}

TEST(PlanCacheTest, NormalizePlanKey) {
  // Comments stripped, whitespace collapsed, trimmed...
  EXPECT_EQ(NormalizePlanKey("  select   x -- pick x\n from x in p  "),
            "select x from x in p");
  // ...but quoted literals are preserved byte-for-byte (spacing and
  // comment-looking content included), and case is significant.
  EXPECT_EQ(NormalizePlanKey("select 'a  -- b'  from x in p"),
            "select 'a  -- b' from x in p");
  EXPECT_NE(NormalizePlanKey("select X from x in p"),
            NormalizePlanKey("select x from x in p"));
}

TEST(PlanCacheTest, NormalizePlanKeyUnterminatedLiteral) {
  // An unterminated quoted literal runs to end-of-statement, so every
  // byte after the quote — trailing spaces included — is literal content.
  // The final trim must not eat those bytes: `select 'ab` and
  // `select 'ab ` are different (both invalid) statements, and colliding
  // keys would let one statement's negative cache entry answer for the
  // other.
  EXPECT_NE(NormalizePlanKey("select 'ab"), NormalizePlanKey("select 'ab "));
  EXPECT_NE(NormalizePlanKey("select 'ab"),
            NormalizePlanKey("select 'ab   "));
  // Same collision through a trailing backslash: the escape consumes the
  // final space into the (unterminated) literal, which the trim then
  // used to strip.
  EXPECT_NE(NormalizePlanKey("select 'a\\"),
            NormalizePlanKey("select 'a\\ "));
  // Terminated literals still trim trailing whitespace outside the quote.
  EXPECT_EQ(NormalizePlanKey("select 'ab'  "), "select 'ab'");
  // And an escaped quote does not terminate the literal — the bytes
  // after it stay significant.
  EXPECT_NE(NormalizePlanKey("select 'a\\'"),
            NormalizePlanKey("select 'a\\' "));
}

TEST(PlanCacheTest, HitsAndDdlInvalidation) {
  Engine engine;
  Session s = engine.OpenSession();
  ASSERT_TRUE(
      s.Execute("define class p attributes v: temporal(integer) end").ok());
  ASSERT_TRUE(s.Execute("create p (v: 7)").ok());

  const std::string q = "select x from x in p where x.v > 0";
  Result<std::string> first = s.Execute(q);
  ASSERT_TRUE(first.ok()) << first.status();
  PlanCache::Stats stats = engine.plan_cache().stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);

  // Normalization makes the spaced/commented spelling the same plan.
  Result<std::string> second =
      s.Execute("select   x from x in p -- cached\n where x.v > 0");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  stats = engine.plan_cache().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);

  // DDL bumps the schema version: the cached plan is stale and must be
  // recompiled (counted as an invalidation + a miss), and the query
  // still answers correctly.
  ASSERT_TRUE(
      s.Execute("define class q attributes w: integer end").ok());
  Result<std::string> third = s.Execute(q);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*first, *third);
  stats = engine.plan_cache().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.invalidations, 1u);
}

TEST(PlanCacheTest, NegativeEntriesCacheFallbacks) {
  Engine engine;
  Session s = engine.OpenSession();
  ASSERT_TRUE(
      s.Execute("define class p attributes v: integer end").ok());
  ASSERT_TRUE(s.Execute("create p (v: 1)").ok());
  // A cartesian product does not lower; the session tree-walks it and
  // remembers the fallback so the next execution skips re-lowering.
  const std::string q = "select x, y from x in p, y in p";
  Result<std::string> r1 = s.Execute(q);
  ASSERT_TRUE(r1.ok()) << r1.status();
  Result<std::string> r2 = s.Execute(q);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);
  PlanCache::Stats stats = engine.plan_cache().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(LowerFallbackTest, ReasonsAreReported) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(
      interp.Execute("define class p attributes v: integer end").ok());
  Statement multi =
      ParseStatement("select x from x in p, y in p").value();
  Result<LowerOutcome> outcome = LowerStatement(&multi, db);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->compiled());
  EXPECT_NE(outcome->fallback_reason.find("multi-binder"),
            std::string::npos)
      << outcome->fallback_reason;

  Statement tick = ParseStatement("tick 1").value();
  outcome = LowerStatement(&tick, db);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->compiled());

  // Type errors are NOT fallbacks: they propagate as the same error the
  // interpreter reports.
  Statement bad =
      ParseStatement("select x from x in p where x.v = 'no'").value();
  Result<LowerOutcome> err = LowerStatement(&bad, db);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kTypeError);
}

// --- temporal secondary indexes: planner + differential correctness ---

// A class with an extent large enough (>= 64 rows) for the cost-based
// planner to consider an index probe, with multi-segment histories on a
// few objects so probes exercise temporal postings.
class IndexedSelectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Interpreter interp(&db_);
    auto run = [&](const std::string& s) {
      auto r = interp.Execute(s);
      ASSERT_TRUE(r.ok()) << s << ": " << r.status();
    };
    run("define class item attributes v: temporal(integer), "
        "tag: string end");
    for (int i = 0; i < 80; ++i) {
      run("create item (v: " + std::to_string(i % 20) + ", tag: 't" +
          std::to_string(i % 5) + "')");
    }
    run("advance to 10");
    run("update i3 set v = 100");
    run("update i7 set v = 100 during [2,5]");
    run("update i11 set v = 5");
    run("advance to 30");
  }

  Result<std::string> Walk(const std::string& q) {
    Interpreter interp(&db_);
    return interp.Execute(q);
  }

  Status CreateIndex() {
    Interpreter interp(&db_);
    return interp.Execute("create index idx_v on item (v)").status();
  }

  Database db_;
};

TEST_F(IndexedSelectTest, PlannerChoosesIndexAndExplainsIt) {
  ASSERT_TRUE(CreateIndex().ok());
  auto lower = [&](const std::string& q) {
    Statement stmt = ParseStatement(q).value();
    Result<LowerOutcome> outcome = LowerStatement(&stmt, db_);
    EXPECT_TRUE(outcome.ok()) << q << ": " << outcome.status();
    EXPECT_TRUE(outcome->compiled()) << q;
    return outcome->plan->program;
  };

  // A selective equality on the leftmost conjunct probes the index; the
  // decision and its estimates are visible in explain.
  ExecProgram p = lower("select x from x in item where x.v = 5");
  ASSERT_TRUE(p.access.has_value());
  EXPECT_EQ(p.access->names[0], "idx_v");
  EXPECT_NE(p.ToString().find("access: index idx_v"), std::string::npos)
      << p.ToString();

  // Flipped orientation still matches (literal on the left).
  EXPECT_TRUE(lower("select x from x in item where 5 = x.v")
                  .access.has_value());
  // Only the LEFTMOST conjunct of the AND spine may drive the probe.
  EXPECT_TRUE(
      lower("select x from x in item where x.v = 5 and x.tag = 't1'")
          .access.has_value());
  p = lower("select x from x in item where x.tag = 't1' and x.v = 5");
  EXPECT_FALSE(p.access.has_value());
  EXPECT_NE(p.access_note.find("no value index on 'tag'"),
            std::string::npos)
      << p.access_note;

  // Refused shapes fall back to the scan, with the reason recorded.
  p = lower("select x from x in item where x.v <> 5");
  EXPECT_FALSE(p.access.has_value());
  p = lower("select x from x in item where x.v @ 4 = 5");
  EXPECT_FALSE(p.access.has_value());
  p = lower("select x from x in item");
  EXPECT_FALSE(p.access.has_value());
  EXPECT_EQ(p.access_note, "no where clause");
  // A non-selective range (matches nearly every row) is rejected by the
  // cost model, not by shape.
  p = lower("select x from x in item where x.v >= 0");
  EXPECT_FALSE(p.access.has_value());
  EXPECT_NE(p.access_note.find("not selective"), std::string::npos)
      << p.access_note;
  EXPECT_NE(p.ToString().find("access: scan"), std::string::npos);
}

TEST_F(IndexedSelectTest, IndexScanAndTreeWalkerReturnIdenticalRows) {
  const std::string queries[] = {
      "select x from x in item where x.v = 5",
      "select x, x.v from x in item where x.v = 5",
      "select x from x in item where 5 = x.v",
      "select x from x in item where x.v < 2",
      "select x from x in item where x.v <= 1",
      "select x from x in item where x.v > 17",
      "select x from x in item where x.v >= 100",
      "select x from x in item where x.v = 100",
      "select x from x in item at 4 where x.v = 100",
      "select x from x in item at 4 where x.v = 3",
      "select x.tag from x in item where x.v = 19",
      "select x from x in item where x.v = 5 and x.tag = 't1'",
      // Probe survivors reach the second conjunct on both paths: here it
      // divides by zero on exactly the v = 5 rows (identical error), and
      // on the next one it never does (identical rows).
      "select x from x in item where x.v = 5 and 1 / (x.v - 5) = 1",
      "select x from x in item where x.v = 5 and 100 / (x.v - 6) < 0",
      "select x from x in item where x.v = -1",
  };
  // Capture the compiled-scan results before any index exists.
  std::vector<Result<std::string>> scan;
  for (const std::string& q : queries) scan.push_back(RunCompiled(q, db_));
  ASSERT_TRUE(CreateIndex().ok());
  for (size_t i = 0; i < std::size(queries); ++i) {
    const std::string& q = queries[i];
    Result<std::string> indexed = RunCompiled(q, db_);
    Result<std::string> walked = Walk(q);
    ASSERT_EQ(scan[i].ok(), indexed.ok()) << q;
    ASSERT_EQ(walked.ok(), indexed.ok()) << q;
    if (indexed.ok()) {
      EXPECT_EQ(*scan[i], *indexed) << q;
      EXPECT_EQ(*walked, *indexed) << q;
    } else {
      EXPECT_EQ(scan[i].status().ToString(), indexed.status().ToString())
          << q;
      EXPECT_EQ(walked.status().ToString(), indexed.status().ToString())
          << q;
    }
  }
}

TEST(PlanCacheTest, IndexDdlInvalidatesCachedPlans) {
  Engine engine;
  Session s = engine.OpenSession();
  ASSERT_TRUE(
      s.Execute("define class p attributes v: temporal(integer) end").ok());
  for (int i = 0; i < 70; ++i) {
    ASSERT_TRUE(
        s.Execute("create p (v: " + std::to_string(100 + i) + ")").ok());
  }
  ASSERT_TRUE(s.Execute("update i1 set v = 1").ok());

  const std::string q = "select x from x in p where x.v = 1";
  Result<std::string> scanned = s.Execute(q);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  ASSERT_TRUE(s.Execute(q).ok());
  PlanCache::Stats stats = engine.plan_cache().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);

  // Index DDL bumps the schema version: the cached scan plan (compiled
  // before the index existed) must be invalidated and recompiled, or the
  // session would keep scanning forever.
  ASSERT_TRUE(s.Execute("create index pv on p (v)").ok());
  Result<std::string> indexed = s.Execute(q);
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  EXPECT_EQ(*scanned, *indexed);
  stats = engine.plan_cache().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.invalidations, 1u);
  // The recompiled plan really takes the index path.
  Result<std::string> explained = s.Execute("explain " + q);
  ASSERT_TRUE(explained.ok()) << explained.status();
  EXPECT_NE(explained->find("access: index pv"), std::string::npos)
      << *explained;

  // Dropping the index invalidates again — a plan probing a dead index
  // would be unsound, not just slow.
  ASSERT_TRUE(s.Execute("drop index pv").ok());
  Result<std::string> after_drop = s.Execute(q);
  ASSERT_TRUE(after_drop.ok());
  EXPECT_EQ(*scanned, *after_drop);
  EXPECT_GE(engine.plan_cache().stats().invalidations, 2u);
  explained = s.Execute("explain " + q);
  ASSERT_TRUE(explained.ok());
  EXPECT_NE(explained->find("access: scan"), std::string::npos)
      << *explained;
}

// --- WHEN boundary handling at adjacent-interval edges (satellite 2) ---

TEST(VmWhenTest, AdjacentIntervalBoundariesMatchTreeWalker) {
  // i1.v has exactly adjacent segments: [0,9] -> 1, [10,19] -> 2,
  // [20,now] -> 3. Every WHEN below is answered identically by the VM
  // and the tree-walker, and a handful are pinned to exact interval
  // sets so a shared bug cannot hide.
  Database db;
  Interpreter interp(&db);
  auto run = [&](const std::string& s) {
    auto r = interp.Execute(s);
    ASSERT_TRUE(r.ok()) << s << ": " << r.status();
  };
  run("define class p attributes v: temporal(integer) end");
  run("create p (v: 1)");
  run("advance to 10");
  run("update i1 set v = 2");
  run("advance to 20");
  run("update i1 set v = 3");
  run("advance to 25");

  auto same = [&](const std::string& q) {
    Result<std::string> walked = interp.Execute(q);
    Result<std::string> compiled = RunCompiled(q, db);
    ASSERT_TRUE(walked.ok()) << q << ": " << walked.status();
    ASSERT_TRUE(compiled.ok()) << q << ": " << compiled.status();
    EXPECT_EQ(*walked, *compiled) << q;
  };
  auto pinned = [&](const std::string& q, const IntervalSet& want) {
    same(q);
    Result<std::string> walked = interp.Execute(q);
    ASSERT_TRUE(walked.ok());
    EXPECT_EQ(*walked, want.ToString()) << q;
  };

  pinned("when i1.v = 2", IntervalSet::Of(Interval(10, 19)));
  pinned("when i1.v >= 2", IntervalSet::Of(Interval(10, 25)));
  // Windows whose endpoints sit exactly on segment edges: the carry-in
  // boundary at the window start duplicates the segment edge, which the
  // dedup in CollectWhenBoundaries must absorb (a sorted-but-non-unique
  // boundary list would otherwise emit a degenerate piece).
  pinned("when i1.v = 2 during [10,19]", IntervalSet::Of(Interval(10, 19)));
  pinned("when i1.v = 2 during [10,10]", IntervalSet::Of(Interval(10, 10)));
  pinned("when i1.v = 2 during [9,10]", IntervalSet::Of(Interval(10, 10)));
  pinned("when i1.v = 2 during [19,20]", IntervalSet::Of(Interval(19, 19)));
  pinned("when i1.v = 1 during [0,9]", IntervalSet::Of(Interval(0, 9)));
  pinned("when i1.v = 3 during [20,now]",
         IntervalSet::Of(Interval(20, 25)));
  pinned("when i1.v = 2 during [11,12]", IntervalSet::Of(Interval(11, 12)));
  // Window entirely in one segment, endpoints interior.
  pinned("when i1.v = 1 during [3,6]", IntervalSet::Of(Interval(3, 6)));
  // Empty / out-of-range windows.
  pinned("when i1.v >= 1 during [26,40]", IntervalSet());
  same("when i1.v = 2 during [0,now]");
  same("when i1.v <> 2 during [5,14]");

  // The same battery with a value index present: CollectWhenBoundaries
  // switches to the pre-extracted timeline slice, which must be
  // point-identical to the segment walk it replaces.
  ASSERT_TRUE(interp.Execute("create index pv on p (v)").ok());
  pinned("when i1.v = 2", IntervalSet::Of(Interval(10, 19)));
  pinned("when i1.v = 2 during [10,19]", IntervalSet::Of(Interval(10, 19)));
  pinned("when i1.v = 2 during [9,10]", IntervalSet::Of(Interval(10, 10)));
  pinned("when i1.v = 2 during [19,20]", IntervalSet::Of(Interval(19, 19)));
  pinned("when i1.v >= 1 during [26,40]", IntervalSet());
  same("when i1.v <> 2 during [5,14]");
}

TEST(VmWhenTest, BoundaryRestrictionKeepsSemantics) {
  // The WHEN boundary scan only collects segment edges of the attributes
  // the condition actually reads; an unrelated attribute with a busy
  // history must not change the answer (it only ever could have split
  // intervals finer, and IntervalSet coalesces).
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp
                  .ExecuteScript(
                      "define class p attributes v: temporal(integer), "
                      "noise: temporal(integer) end; "
                      "create p (v: 1, noise: 0)")
                  .ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(interp.Execute("tick 3").ok());
    ASSERT_TRUE(
        interp.Execute("update i1 set noise = " + std::to_string(i)).ok());
  }
  ASSERT_TRUE(interp.Execute("update i1 set v = 9 during [7,11]").ok());
  Result<std::string> walked = interp.Execute("when i1.v > 5");
  ASSERT_TRUE(walked.ok()) << walked.status();
  Result<std::string> compiled = RunCompiled("when i1.v > 5", db);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_EQ(*walked, *compiled);
  EXPECT_EQ(*walked, IntervalSet::Of(Interval(7, 11)).ToString());
}

}  // namespace
}  // namespace tchimera
