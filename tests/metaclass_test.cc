// Tests for the metaclass machinery of Section 4: "a metaclass is a
// special class having a class as unique instance. Each class is then
// seen as an instance of a metaclass in the same way as an object is seen
// as an instance of a class."
#include <gtest/gtest.h>

#include "core/db/database.h"
#include "core/types/type_registry.h"
#include "workload/project_schema.h"

namespace tchimera {
namespace {

class MetaclassTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AdvanceTo(10).ok());
    ASSERT_TRUE(InstallProjectSchema(&db_).ok());
    ASSERT_TRUE(db_.SetClassAttribute("project", "average-participants",
                                      Value::Integer(20))
                    .ok());
    e_ = db_.CreateObject("project").value();
  }
  Database db_;
  Oid e_;
};

TEST_F(MetaclassTest, EveryClassNamesItsMetaclass) {
  for (const char* name : {"person", "employee", "manager", "task",
                           "project"}) {
    EXPECT_EQ(db_.GetClass(name)->metaclass(),
              std::string("m-") + name);
  }
}

TEST_F(MetaclassTest, MetaObjectMirrorsClassState) {
  Object meta = db_.MetaObjectOf("project").value();
  // The meta-object lives exactly as long as the class.
  EXPECT_EQ(meta.lifespan(), db_.GetClass("project")->lifespan());
  EXPECT_EQ(meta.CurrentClass().value(), "m-project");
  // Its state is the class history record: c-attributes + extents.
  EXPECT_EQ(*meta.Attribute("average-participants"), Value::Integer(20));
  ASSERT_NE(meta.Attribute("ext"), nullptr);
  EXPECT_EQ(meta.Attribute("ext")->kind(), ValueKind::kTemporal);
  // The extent temporal value contains the created object from t=10.
  const Value* at10 = meta.Attribute("ext")->AsTemporal().At(10);
  ASSERT_NE(at10, nullptr);
  EXPECT_TRUE(at10->Contains(Value::OfOid(e_)));
  // And it matches the class's History record field-for-field.
  Value history = db_.ClassHistory("project").value();
  EXPECT_EQ(meta.AttributeRecord(), history);
}

TEST_F(MetaclassTest, MetaObjectsAreDistinctFromRealObjects) {
  Object meta = db_.MetaObjectOf("project").value();
  EXPECT_EQ(db_.GetObject(meta.id()), nullptr);  // a view, not stored
  EXPECT_NE(meta.id(), e_);
}

TEST_F(MetaclassTest, MetaclassSpecDescribesTheMetaObject) {
  ClassSpec spec = db_.MetaclassSpecOf("project").value();
  EXPECT_EQ(spec.name, "m-project");
  // Attributes: the c-attribute + ext + proper-ext.
  ASSERT_EQ(spec.attributes.size(), 3u);
  bool has_ext = false, has_pext = false, has_cattr = false;
  for (const AttributeDef& a : spec.attributes) {
    if (a.name == "ext") has_ext = true;
    if (a.name == "proper-ext") has_pext = true;
    if (a.name == "average-participants") {
      has_cattr = true;
      EXPECT_EQ(a.type, types::Integer());
    }
  }
  EXPECT_TRUE(has_ext && has_pext && has_cattr);
  // A historical class (temporal c-attribute) yields a temporal
  // meta-attribute; check through a fresh class.
  ClassSpec tracked;
  tracked.name = "tracked";
  tracked.c_attributes = {
      {"avg", types::Temporal(types::Integer()).value()}};
  ASSERT_TRUE(db_.DefineClass(tracked).ok());
  EXPECT_EQ(db_.GetClass("tracked")->kind(), ClassKind::kHistorical);
  ClassSpec meta_spec = db_.MetaclassSpecOf("tracked").value();
  for (const AttributeDef& a : meta_spec.attributes) {
    if (a.name == "avg") {
      EXPECT_TRUE(a.is_temporal());
    }
  }
}

TEST_F(MetaclassTest, MetaObjectOfDeletedClassIsClosed) {
  ClassSpec scratch;
  scratch.name = "scratch";
  ASSERT_TRUE(db_.DefineClass(scratch).ok());
  db_.Tick(5);
  ASSERT_TRUE(db_.DropClass("scratch").ok());
  Object meta = db_.MetaObjectOf("scratch").value();
  EXPECT_FALSE(meta.alive());
  EXPECT_EQ(meta.lifespan(), Interval(10, 15));
}

TEST_F(MetaclassTest, UnknownClassFails) {
  EXPECT_FALSE(db_.MetaObjectOf("ghost").ok());
  EXPECT_FALSE(db_.MetaclassSpecOf("ghost").ok());
}

}  // namespace
}  // namespace tchimera
