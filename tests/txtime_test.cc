// Transaction-time travel via journal prefix replay (the "different
// notions of time" extension of Section 1.1, built on the write-ahead
// journal): reconstructing the database as of transaction n, and the
// valid-time/transaction-time distinction it exposes.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "storage/journal.h"

namespace tchimera {
namespace {

class TxTimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             "tchimera_txtime_test.tql")
                .string();
    std::ofstream out(path_, std::ios::trunc);
    // tx 1-2: schema + hire at valid time 0.
    out << "define class worker attributes salary: temporal(integer) "
           "end\n";
    out << "create worker (salary: 100)\n";
    // tx 3-4: time passes, a raise at valid time 10.
    out << "advance to 10\n";
    out << "update i1 set salary = 200\n";
    // tx 5: a *retroactive* correction recorded later: the raise was
    // really 150, effective from valid time 10.
    out << "update i1 set salary = 150 during [10,now]\n";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::unique_ptr<Database> AsOfTransaction(size_t n) {
    auto db = std::make_unique<Database>();
    Interpreter interp(db.get());
    Result<size_t> applied = Journal::ReplayPrefix(path_, &interp, n);
    EXPECT_TRUE(applied.ok()) << applied.status();
    return db;
  }

  int64_t SalaryAt(const Database& db, TimePoint t) {
    Result<Value> h = db.HStateOf(Oid{1}, t);
    EXPECT_TRUE(h.ok()) << h.status();
    return h->FieldValue("salary")->AsInteger();
  }

  std::string path_;
};

TEST_F(TxTimeTest, PrefixReplayReconstructsAsOfTransaction) {
  // As of tx 2: only the hire exists; clock at 0.
  auto tx2 = AsOfTransaction(2);
  EXPECT_EQ(tx2->now(), 0);
  EXPECT_EQ(SalaryAt(*tx2, 0), 100);
  // As of tx 4: the raise to 200 is believed.
  auto tx4 = AsOfTransaction(4);
  EXPECT_EQ(tx4->now(), 10);
  EXPECT_EQ(SalaryAt(*tx4, 10), 200);
  // As of tx 5: history has been corrected retroactively.
  auto tx5 = AsOfTransaction(5);
  EXPECT_EQ(SalaryAt(*tx5, 10), 150);
}

TEST_F(TxTimeTest, BitemporalDistinction) {
  // The bitemporal question: "what did we *believe at transaction 4* the
  // salary was at valid time 10?" vs "what do we believe *now*?". The
  // valid-time instant is the same; the answers differ because belief
  // changed at tx 5.
  auto believed_then = AsOfTransaction(4);
  auto believed_now = AsOfTransaction(999);
  EXPECT_EQ(SalaryAt(*believed_then, 10), 200);
  EXPECT_EQ(SalaryAt(*believed_now, 10), 150);
  // Valid-time history *before* the corrected interval is stable across
  // transaction time.
  EXPECT_EQ(SalaryAt(*believed_then, 5), 100);
  EXPECT_EQ(SalaryAt(*believed_now, 5), 100);
}

TEST_F(TxTimeTest, ReplayCountIsExact) {
  Database db;
  Interpreter interp(&db);
  EXPECT_EQ(Journal::ReplayPrefix(path_, &interp, 0).value(), 0u);
  Database db2;
  Interpreter interp2(&db2);
  EXPECT_EQ(Journal::ReplayPrefix(path_, &interp2, 3).value(), 3u);
  Database db3;
  Interpreter interp3(&db3);
  EXPECT_EQ(Journal::ReplayPrefix(path_, &interp3, 999).value(), 5u);
}

}  // namespace
}  // namespace tchimera
