// Unit tests for the TIME domain (Section 3.2): intervals, the symbolic
// `now`, and Allen relations.
#include <gtest/gtest.h>

#include "core/temporal/clock.h"
#include "core/temporal/interval.h"

namespace tchimera {
namespace {

TEST(InstantTest, NowSentinel) {
  EXPECT_TRUE(IsNow(kNow));
  EXPECT_FALSE(IsNow(0));
  EXPECT_FALSE(IsNow(123456));
  EXPECT_EQ(ResolveInstant(kNow, 77), 77);
  EXPECT_EQ(ResolveInstant(42, 77), 42);
  EXPECT_EQ(InstantToString(kNow), "now");
  EXPECT_EQ(InstantToString(9), "9");
}

TEST(IntervalTest, EmptyAndSingleton) {
  EXPECT_TRUE(Interval::Empty().empty());
  EXPECT_TRUE(Interval(5, 4).empty());
  EXPECT_FALSE(Interval::At(5).empty());
  EXPECT_EQ(Interval::At(5).Duration(100), 1);
  EXPECT_EQ(Interval::Empty().ToString(), "[]");
  EXPECT_EQ(Interval(3, 17).ToString(), "[3,17]");
  EXPECT_EQ(Interval::FromUntilNow(10).ToString(), "[10,now]");
}

TEST(IntervalTest, OngoingBehavesAsUnbounded) {
  Interval ongoing = Interval::FromUntilNow(10);
  EXPECT_TRUE(ongoing.is_ongoing());
  // Arithmetically kNow acts as +infinity.
  EXPECT_TRUE(ongoing.ContainsResolved(10));
  EXPECT_TRUE(ongoing.ContainsResolved(1'000'000));
  EXPECT_FALSE(ongoing.ContainsResolved(9));
}

TEST(IntervalTest, Resolve) {
  Interval ongoing = Interval::FromUntilNow(10);
  EXPECT_EQ(ongoing.Resolve(50), Interval(10, 50));
  // Resolving before the start yields the empty interval.
  EXPECT_TRUE(ongoing.Resolve(9).empty());
  EXPECT_EQ(Interval(3, 7).Resolve(100), Interval(3, 7));
}

TEST(IntervalTest, ContainsWithNow) {
  Interval ongoing = Interval::FromUntilNow(10);
  EXPECT_TRUE(ongoing.Contains(10, 50));
  EXPECT_TRUE(ongoing.Contains(50, 50));
  EXPECT_FALSE(ongoing.Contains(51, 50));  // beyond resolved `now`
  EXPECT_TRUE(ongoing.Contains(kNow, 50));  // query instant `now` -> 50
}

TEST(IntervalTest, IntersectAndOverlap) {
  EXPECT_EQ(Interval(1, 10).Intersect(Interval(5, 20), 100),
            Interval(5, 10));
  EXPECT_TRUE(Interval(1, 4).Intersect(Interval(5, 20), 100).empty());
  EXPECT_TRUE(Interval(1, 10).Overlaps(Interval(10, 12), 100));
  EXPECT_FALSE(Interval(1, 9).Overlaps(Interval(10, 12), 100));
}

TEST(IntervalTest, Covers) {
  EXPECT_TRUE(Interval(1, 10).Covers(Interval(3, 7), 100));
  EXPECT_TRUE(Interval(1, 10).Covers(Interval::Empty(), 100));
  EXPECT_FALSE(Interval(3, 7).Covers(Interval(1, 10), 100));
  EXPECT_TRUE(
      Interval::FromUntilNow(1).Covers(Interval::FromUntilNow(5), 100));
}

TEST(IntervalTest, Touches) {
  EXPECT_TRUE(Interval(1, 4).Touches(Interval(5, 9), 100));  // adjacent
  EXPECT_TRUE(Interval(1, 6).Touches(Interval(5, 9), 100));  // overlapping
  EXPECT_FALSE(Interval(1, 3).Touches(Interval(5, 9), 100));  // gap
}

TEST(IntervalTest, DurationResolvesNow) {
  EXPECT_EQ(Interval(3, 7).Duration(100), 5);
  EXPECT_EQ(Interval::FromUntilNow(95).Duration(100), 6);
  EXPECT_EQ(Interval::Empty().Duration(100), 0);
}

struct AllenCase {
  Interval a;
  Interval b;
  AllenRelation expected;
};

class AllenRelationTest : public ::testing::TestWithParam<AllenCase> {};

TEST_P(AllenRelationTest, Relation) {
  const AllenCase& c = GetParam();
  auto r = c.a.RelationTo(c.b, 1000);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, c.expected) << c.a.ToString() << " vs " << c.b.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllThirteen, AllenRelationTest,
    ::testing::Values(
        AllenCase{Interval(1, 3), Interval(5, 9), AllenRelation::kBefore},
        AllenCase{Interval(1, 4), Interval(5, 9), AllenRelation::kMeets},
        AllenCase{Interval(1, 6), Interval(5, 9), AllenRelation::kOverlaps},
        AllenCase{Interval(5, 7), Interval(5, 9), AllenRelation::kStarts},
        AllenCase{Interval(6, 8), Interval(5, 9), AllenRelation::kDuring},
        AllenCase{Interval(7, 9), Interval(5, 9), AllenRelation::kFinishes},
        AllenCase{Interval(5, 9), Interval(5, 9), AllenRelation::kEquals},
        AllenCase{Interval(5, 9), Interval(7, 9),
                  AllenRelation::kFinishedBy},
        AllenCase{Interval(5, 9), Interval(6, 8), AllenRelation::kContains},
        AllenCase{Interval(5, 9), Interval(5, 7),
                  AllenRelation::kStartedBy},
        AllenCase{Interval(5, 9), Interval(1, 6),
                  AllenRelation::kOverlappedBy},
        AllenCase{Interval(5, 9), Interval(1, 4), AllenRelation::kMetBy},
        AllenCase{Interval(5, 9), Interval(1, 3), AllenRelation::kAfter}));

TEST(AllenRelationTest, EmptyHasNoRelation) {
  EXPECT_FALSE(Interval::Empty().RelationTo(Interval(1, 2), 10).has_value());
  EXPECT_FALSE(Interval(1, 2).RelationTo(Interval::Empty(), 10).has_value());
}

TEST(ClockTest, TickAndAdvance) {
  Clock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.Tick();
  EXPECT_EQ(clock.now(), 1);
  clock.Tick(9);
  EXPECT_EQ(clock.now(), 10);
  EXPECT_TRUE(clock.AdvanceTo(10).ok());  // no-op advance is fine
  EXPECT_TRUE(clock.AdvanceTo(25).ok());
  EXPECT_EQ(clock.now(), 25);
  // Time is monotone.
  Status back = clock.AdvanceTo(24);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.code(), StatusCode::kTemporalError);
  // `now` is not a valid target.
  EXPECT_FALSE(clock.AdvanceTo(kNow).ok());
}

}  // namespace
}  // namespace tchimera
