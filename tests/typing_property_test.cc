// Property suites for the three formal results of the type system:
//
//   Theorem 3.1 (soundness):    InferType(v) = T  ==>  v in [[T]]_now
//   Theorem 3.2 (completeness): v in [[T]]_t      ==>  InferType(v) <=_T T
//   Theorem 6.1 (extensions):   T1 <=_T T2        ==>  [[T1]]_t subset of
//                                                      [[T2]]_t
//
// Values and types are generated randomly over a database with the ISA
// chain person <- employee <- manager and a pool of live objects, so the
// object-type rules (extent membership, most specific classes) are
// exercised, not just the value-type fragment.
#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "core/db/database.h"
#include "core/types/type_registry.h"
#include "core/values/temporal_function.h"
#include "core/values/typing.h"

namespace tchimera {
namespace {

constexpr TimePoint kNowTime = 100;

class TypingPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    ClassSpec person;
    person.name = "person";
    ASSERT_TRUE(db_.DefineClass(person).ok());
    ClassSpec employee;
    employee.name = "employee";
    employee.superclasses = {"person"};
    ASSERT_TRUE(db_.DefineClass(employee).ok());
    ClassSpec manager;
    manager.name = "manager";
    manager.superclasses = {"employee"};
    ASSERT_TRUE(db_.DefineClass(manager).ok());
    for (int i = 0; i < 4; ++i) {
      persons_.push_back(db_.CreateObject("person").value());
      employees_.push_back(db_.CreateObject("employee").value());
      managers_.push_back(db_.CreateObject("manager").value());
    }
    ASSERT_TRUE(db_.AdvanceTo(kNowTime).ok());
    rng_.seed(GetParam());
  }

  TypingContext Ctx() { return db_.typing_context(); }

  int Rand(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }

  Oid RandomOidOfClass(const std::string& cls) {
    const std::vector<Oid>& pool = cls == "person"
                                       ? persons_
                                       : (cls == "employee" ? employees_
                                                            : managers_);
    return pool[static_cast<size_t>(Rand(0, static_cast<int>(pool.size()) -
                                                1))];
  }

  // Any live oid (used by the unconstrained value generator).
  Oid RandomOid() {
    switch (Rand(0, 2)) {
      case 0:
        return RandomOidOfClass("person");
      case 1:
        return RandomOidOfClass("employee");
      default:
        return RandomOidOfClass("manager");
    }
  }

  // --- random values (for soundness) -------------------------------------

  Value RandomValue(int depth) {
    int pick = Rand(0, depth > 0 ? 10 : 6);
    switch (pick) {
      case 0:
        return Value::Integer(Rand(-100, 100));
      case 1:
        return Value::Real(Rand(-100, 100) / 4.0);
      case 2:
        return Value::Bool(Rand(0, 1) == 1);
      case 3:
        return Value::Char(static_cast<char>('a' + Rand(0, 25)));
      case 4:
        return Value::String(std::string(
            static_cast<size_t>(Rand(0, 5)), 'z'));
      case 5:
        return Value::Time(Rand(0, kNowTime));
      case 6:
        return Value::OfOid(RandomOid());
      case 7: {
        std::vector<Value> elems;
        // Homogeneous-ish sets: mix oids of related classes or integers.
        bool oids = Rand(0, 1) == 1;
        for (int i = 0, n = Rand(0, 3); i < n; ++i) {
          elems.push_back(oids ? Value::OfOid(RandomOid())
                               : Value::Integer(Rand(0, 9)));
        }
        return Rand(0, 1) == 1 ? Value::Set(std::move(elems))
                               : Value::List(std::move(elems));
      }
      case 8: {
        std::vector<Value::Field> fields;
        int n = Rand(1, 3);
        for (int i = 0; i < n; ++i) {
          fields.emplace_back("f" + std::to_string(i),
                              RandomValue(depth - 1));
        }
        return Value::Record(std::move(fields)).value();
      }
      default: {
        TemporalFunction f;
        TimePoint cursor = static_cast<TimePoint>(Rand(0, 20));
        bool oids = Rand(0, 1) == 1;
        for (int i = 0, n = Rand(1, 3); i < n && cursor < kNowTime; ++i) {
          TimePoint end = cursor + Rand(0, 15);
          Value v = oids ? Value::OfOid(RandomOid())
                         : Value::Integer(Rand(0, 9));
          EXPECT_TRUE(f.Define(Interval(cursor, end), std::move(v)).ok());
          cursor = end + Rand(1, 5);
        }
        return Value::Temporal(std::move(f));
      }
    }
  }

  // --- random types and witnesses (for completeness / Thm 6.1) -----------

  const Type* RandomType(int depth, bool chimera_only) {
    int hi = depth > 0 ? (chimera_only ? 9 : 10) : 6;
    switch (Rand(0, hi)) {
      case 0:
        return types::Integer();
      case 1:
        return types::Real();
      case 2:
        return types::Bool();
      case 3:
        return types::Char();
      case 4:
        return types::String();
      case 5:
        return types::Time();
      case 6: {
        const char* classes[] = {"person", "employee", "manager"};
        return types::Object(classes[Rand(0, 2)]);
      }
      case 7:
        return types::SetOf(RandomType(depth - 1, chimera_only));
      case 8:
        return types::ListOf(RandomType(depth - 1, chimera_only));
      case 9: {
        std::vector<RecordField> fields;
        int n = Rand(1, 3);
        for (int i = 0; i < n; ++i) {
          fields.push_back({"f" + std::to_string(i),
                            RandomType(depth - 1, chimera_only)});
        }
        return types::RecordOf(std::move(fields)).value();
      }
      default:
        return types::Temporal(RandomType(depth - 1, /*chimera_only=*/true))
            .value();
    }
  }

  // A value in [[type]]_t, constructed by rule (Definition 3.5).
  Value LegalValueFor(const Type* type, int depth) {
    if (Rand(0, 9) == 0) return Value::Null();  // null : T for all T
    switch (type->kind()) {
      case TypeKind::kInteger:
        return Value::Integer(Rand(-50, 50));
      case TypeKind::kReal:
        return Value::Real(Rand(-50, 50) / 2.0);
      case TypeKind::kBool:
        return Value::Bool(Rand(0, 1) == 1);
      case TypeKind::kChar:
        return Value::Char(static_cast<char>('a' + Rand(0, 25)));
      case TypeKind::kString:
        return Value::String(std::string(
            static_cast<size_t>(Rand(0, 4)), 'q'));
      case TypeKind::kTime:
        return Value::Time(Rand(0, kNowTime));
      case TypeKind::kObject: {
        // Any member works: instances of subclasses included.
        const std::string& c = type->class_name();
        if (c == "person") {
          const char* choices[] = {"person", "employee", "manager"};
          return Value::OfOid(RandomOidOfClass(choices[Rand(0, 2)]));
        }
        if (c == "employee") {
          const char* choices[] = {"employee", "manager"};
          return Value::OfOid(RandomOidOfClass(choices[Rand(0, 1)]));
        }
        return Value::OfOid(RandomOidOfClass("manager"));
      }
      case TypeKind::kSet: {
        std::vector<Value> elems;
        for (int i = 0, n = Rand(0, 3); i < n; ++i) {
          elems.push_back(LegalValueFor(type->element(), depth - 1));
        }
        return Value::Set(std::move(elems));
      }
      case TypeKind::kList: {
        std::vector<Value> elems;
        for (int i = 0, n = Rand(0, 3); i < n; ++i) {
          elems.push_back(LegalValueFor(type->element(), depth - 1));
        }
        return Value::List(std::move(elems));
      }
      case TypeKind::kRecord: {
        std::vector<Value::Field> fields;
        for (const RecordField& f : type->fields()) {
          fields.emplace_back(f.name, LegalValueFor(f.type, depth - 1));
        }
        return Value::Record(std::move(fields)).value();
      }
      case TypeKind::kTemporal: {
        TemporalFunction f;
        TimePoint cursor = static_cast<TimePoint>(Rand(0, 20));
        for (int i = 0, n = Rand(0, 3); i < n && cursor < kNowTime; ++i) {
          TimePoint end = cursor + Rand(0, 15);
          EXPECT_TRUE(f.Define(Interval(cursor, end),
                               LegalValueFor(type->element(), depth - 1))
                          .ok());
          cursor = end + Rand(1, 5);
        }
        return Value::Temporal(std::move(f));
      }
      case TypeKind::kAny:
        return Value::Null();
    }
    return Value::Null();
  }

  // A random subtype of `type` (possibly `type` itself): specializes
  // object types down the ISA chain, recurses through constructors.
  const Type* RandomSubtype(const Type* type) {
    switch (type->kind()) {
      case TypeKind::kObject: {
        const std::string& c = type->class_name();
        if (c == "person") {
          const char* choices[] = {"person", "employee", "manager"};
          return types::Object(choices[Rand(0, 2)]);
        }
        if (c == "employee") {
          const char* choices[] = {"employee", "manager"};
          return types::Object(choices[Rand(0, 1)]);
        }
        return type;
      }
      case TypeKind::kSet:
        return types::SetOf(RandomSubtype(type->element()));
      case TypeKind::kList:
        return types::ListOf(RandomSubtype(type->element()));
      case TypeKind::kTemporal:
        return types::Temporal(RandomSubtype(type->element())).value();
      case TypeKind::kRecord: {
        std::vector<RecordField> fields;
        for (const RecordField& f : type->fields()) {
          fields.push_back({f.name, RandomSubtype(f.type)});
        }
        return types::RecordOf(std::move(fields)).value();
      }
      default:
        return type;
    }
  }

  Database db_;
  std::vector<Oid> persons_, employees_, managers_;
  std::mt19937_64 rng_;
};

TEST_P(TypingPropertyTest, Theorem31Soundness) {
  int deduced = 0;
  for (int round = 0; round < 300; ++round) {
    Value v = RandomValue(3);
    Result<const Type*> inferred = InferType(v, kNowTime, Ctx());
    if (!inferred.ok()) continue;  // no deduction, theorem vacuous
    ++deduced;
    Status legal = CheckLegalValue(v, *inferred, kNowTime, Ctx());
    EXPECT_TRUE(legal.ok())
        << "value " << v.ToString() << " inferred "
        << (*inferred)->ToString() << " but " << legal.ToString();
  }
  // The generator must produce plenty of typeable values for the run to
  // mean anything.
  EXPECT_GT(deduced, 200);
}

TEST_P(TypingPropertyTest, Theorem32Completeness) {
  for (int round = 0; round < 300; ++round) {
    const Type* type = RandomType(3, /*chimera_only=*/false);
    Value v = LegalValueFor(type, 3);
    // Sanity: the constructed witness really is legal.
    Status legal = CheckLegalValue(v, type, kNowTime, Ctx());
    ASSERT_TRUE(legal.ok()) << "witness " << v.ToString() << " for "
                            << type->ToString() << ": " << legal.ToString();
    // Completeness: the deduced type is at most `type`.
    Result<const Type*> inferred = InferType(v, kNowTime, Ctx());
    ASSERT_TRUE(inferred.ok())
        << v.ToString() << " for " << type->ToString();
    EXPECT_TRUE(IsSubtype(*inferred, type, db_.isa()))
        << "value " << v.ToString() << ": inferred "
        << (*inferred)->ToString() << " not a subtype of "
        << type->ToString();
  }
}

TEST_P(TypingPropertyTest, Theorem61ExtensionInclusion) {
  for (int round = 0; round < 300; ++round) {
    const Type* super = RandomType(3, /*chimera_only=*/false);
    const Type* sub = RandomSubtype(super);
    ASSERT_TRUE(IsSubtype(sub, super, db_.isa()))
        << sub->ToString() << " vs " << super->ToString();
    Value v = LegalValueFor(sub, 3);
    ASSERT_TRUE(IsLegalValue(v, sub, kNowTime, Ctx()));
    // [[sub]]_t subset of [[super]]_t.
    Status in_super = CheckLegalValue(v, super, kNowTime, Ctx());
    EXPECT_TRUE(in_super.ok())
        << "value " << v.ToString() << " in [[" << sub->ToString()
        << "]] but not in [[" << super->ToString()
        << "]]: " << in_super.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TypingPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

}  // namespace
}  // namespace tchimera
