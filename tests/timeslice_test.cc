// Tests for database timeslicing: the whole-database snapshot coercion.
#include <gtest/gtest.h>

#include "core/db/consistency.h"
#include "core/db/timeslice.h"
#include "core/types/type_registry.h"
#include "storage/serializer.h"
#include "workload/generator.h"
#include "workload/project_schema.h"

namespace tchimera {
namespace {

Value I(int64_t v) { return Value::Integer(v); }

class TimeSliceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallProjectSchema(&db_).ok());
    ann_ = db_.CreateObject("employee",
                            {{"name", Value::String("Ann")},
                             {"birthyear", I(1970)},
                             {"salary", I(100)},
                             {"office", Value::String("A1")}})
               .value();
    ASSERT_TRUE(db_.AdvanceTo(30).ok());
    ASSERT_TRUE(db_.Migrate(ann_, "manager",
                            {{"dependents", I(2)},
                             {"officialcar", Value::String("car")}})
                    .ok());
    ASSERT_TRUE(db_.AdvanceTo(50).ok());
    ASSERT_TRUE(db_.UpdateAttribute(ann_, "salary", I(200)).ok());
    ASSERT_TRUE(db_.AdvanceTo(80).ok());
  }

  Database db_;
  Oid ann_;
};

TEST_F(TimeSliceTest, CurrentSliceCoercesEverything) {
  auto slice = TimeSlice(db_, kNow).value();
  // The slice pretends `now` is the present.
  EXPECT_EQ(slice->now(), 80);
  // Schema coerced: salary is a plain integer now.
  const ClassDef* employee = slice->GetClass("employee");
  ASSERT_NE(employee, nullptr);
  EXPECT_EQ(employee->FindAttribute("salary")->type, types::Integer());
  EXPECT_FALSE(employee->HasTemporalAttributes());
  // Ann appears with projected values, as a manager.
  const Object* ann = slice->GetObject(ann_);
  ASSERT_NE(ann, nullptr);
  EXPECT_EQ(ann->CurrentClass().value(), "manager");
  EXPECT_EQ(*ann->Attribute("salary"), I(200));
  EXPECT_EQ(ann->Attribute("office")->AsString(), "A1");
  EXPECT_FALSE(ann->IsHistorical());
  // The slice is a fully consistent (non-temporal) database.
  Status s = CheckDatabaseConsistency(*slice);
  EXPECT_TRUE(s.ok()) << s;
}

TEST_F(TimeSliceTest, PastSliceKeepsOnlyTemporalAttributes) {
  auto slice = TimeSlice(db_, 40).value();
  EXPECT_EQ(slice->now(), 40);
  // At a past instant, static attributes are unavailable (Section 5.3):
  // the sliced schema is the coerced historical type.
  const ClassDef* employee = slice->GetClass("employee");
  EXPECT_EQ(employee->FindAttribute("salary")->type, types::Integer());
  EXPECT_EQ(employee->FindAttribute("office"), nullptr);
  const Object* ann = slice->GetObject(ann_);
  ASSERT_NE(ann, nullptr);
  EXPECT_EQ(ann->CurrentClass().value(), "manager");  // class at 40
  EXPECT_EQ(*ann->Attribute("salary"), I(100));       // value before raise
  EXPECT_EQ(*ann->Attribute("dependents"), I(2));
  EXPECT_EQ(ann->Attribute("office"), nullptr);
  Status s = CheckDatabaseConsistency(*slice);
  EXPECT_TRUE(s.ok()) << s;
}

TEST_F(TimeSliceTest, SliceBeforePromotionShowsEmployee) {
  auto slice = TimeSlice(db_, 10).value();
  const Object* ann = slice->GetObject(ann_);
  ASSERT_NE(ann, nullptr);
  EXPECT_EQ(ann->CurrentClass().value(), "employee");
  EXPECT_EQ(ann->Attribute("dependents"), nullptr);
  // Extents frozen at t=10: a manager extent exists but is empty.
  EXPECT_TRUE(slice->Pi("manager", kNow).empty());
  EXPECT_EQ(slice->Pi("employee", kNow).size(), 1u);
}

TEST_F(TimeSliceTest, ObjectsOutsideLifespanAreExcluded) {
  Oid late = db_.CreateObject("person").value();
  auto slice = TimeSlice(db_, 10).value();
  EXPECT_EQ(slice->GetObject(late), nullptr);
  // ...but they are in the current slice.
  auto current = TimeSlice(db_, kNow).value();
  EXPECT_NE(current->GetObject(late), nullptr);
  // Oid allocation continues past the sliced population.
  Result<Oid> fresh = current->CreateObject("person");
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh->id, late.id);
}

TEST_F(TimeSliceTest, SliceEvolvesIndependently) {
  auto slice = TimeSlice(db_, kNow).value();
  slice->Tick();
  ASSERT_TRUE(slice->UpdateAttribute(ann_, "salary", I(999)).ok());
  // The original database is untouched.
  EXPECT_EQ(db_.HStateOf(ann_, 80).value().FieldValue("salary")->AsInteger(),
            200);
  EXPECT_TRUE(CheckDatabaseConsistency(*slice).ok());
  EXPECT_TRUE(CheckDatabaseConsistency(db_).ok());
}

TEST_F(TimeSliceTest, InvalidInstantsAreRejected) {
  EXPECT_FALSE(TimeSlice(db_, 81).ok());   // the future
  EXPECT_FALSE(TimeSlice(db_, -1).ok());   // before the beginning
  EXPECT_TRUE(TimeSlice(db_, 0).ok());
  EXPECT_TRUE(TimeSlice(db_, 80).ok());
}

TEST_F(TimeSliceTest, PopulatedDatabaseSlicesConsistently) {
  Database db;
  PopulationConfig config;
  config.persons = 20;
  config.projects = 5;
  config.timesteps = 20;
  config.updates_per_step = 8;
  config.migration_rate = 0.4;
  ASSERT_TRUE(PopulateDatabase(&db, config).ok());
  for (TimePoint t : {0, 7, 13, 20}) {
    Result<std::unique_ptr<Database>> slice = TimeSlice(db, t);
    ASSERT_TRUE(slice.ok()) << "t=" << t << ": " << slice.status();
    Status s = CheckDatabaseConsistency(**slice);
    EXPECT_TRUE(s.ok()) << "t=" << t << ": " << s;
    // A slice serializes like any database.
    EXPECT_TRUE(SaveDatabaseToString(**slice).ok());
  }
}

}  // namespace
}  // namespace tchimera
