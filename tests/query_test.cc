// Tests for the TQL substrate: lexer, parser, type checker (built on the
// paper's typing rules, including the temporal->static coercion of
// Section 6.1) and evaluator/interpreter.
#include <gtest/gtest.h>

#include <random>

#include "core/db/database.h"
#include "query/interpreter.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "query/type_checker.h"

namespace tchimera {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("select x from x in person where x.age >= 30 "
                         "and x.name = 'Bob' -- comment\n i7 t42 tnow");
  ASSERT_TRUE(tokens.ok()) << tokens.status();
  // select, x, from, x, in, person, where, x, ., age, >=, 30, and, x, .,
  // name, =, 'Bob', i7, t42, tnow, END
  EXPECT_EQ(tokens->size(), 22u);
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[10].kind, TokenKind::kGe);
  EXPECT_EQ((*tokens)[17].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[17].text, "Bob");
  EXPECT_EQ((*tokens)[18].kind, TokenKind::kOidLit);
  EXPECT_EQ((*tokens)[18].int_value, 7);
  EXPECT_EQ((*tokens)[19].kind, TokenKind::kTimeLit);
  EXPECT_EQ((*tokens)[19].int_value, 42);
  EXPECT_EQ((*tokens)[20].kind, TokenKind::kTimeLit);
  EXPECT_EQ((*tokens)[20].int_value, kNow);
  EXPECT_EQ((*tokens)[21].kind, TokenKind::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("SELECT Select select");
  ASSERT_TRUE(tokens.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE((*tokens)[i].IsKeyword("select"));
  }
}

TEST(LexerTest, IdentifiersStartingWithIOrT) {
  // `income`, `i7x`, `total` are identifiers, not oid/time literals.
  auto tokens = Tokenize("income i7x total t42abc");
  ASSERT_TRUE(tokens.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*tokens)[i].kind, TokenKind::kIdentifier) << i;
  }
}

TEST(LexerTest, RejectsBadInput) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ยง b").ok());
  EXPECT_FALSE(Tokenize("c'ab'").ok());
}

TEST(ParserTest, ExpressionPrecedence) {
  auto e = ParseExpression("1 + 2 * 3 = 7 and not false or true");
  ASSERT_TRUE(e.ok()) << e.status();
  // or is outermost; and binds tighter; * tighter than +.
  EXPECT_EQ((*e)->ToString(),
            "((((1 + (2 * 3)) = 7) and not false) or true)");
}

TEST(ParserTest, AttrAccessChainsAndAt) {
  auto e = ParseExpression("x.subproject.name @ t40");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ((*e)->ToString(), "x.subproject.name@t40");
}

TEST(ParserTest, Statements) {
  EXPECT_TRUE(ParseStatement("create project (name: 'IDEA')").ok());
  EXPECT_TRUE(ParseStatement("update i3 set salary = 100").ok());
  EXPECT_TRUE(
      ParseStatement("update i3 set salary = 100 during [10,20]").ok());
  EXPECT_TRUE(ParseStatement("migrate i3 to manager set dependents = 2")
                  .ok());
  EXPECT_TRUE(ParseStatement("delete i3").ok());
  EXPECT_TRUE(ParseStatement("snapshot i3 at 40").ok());
  EXPECT_TRUE(ParseStatement("history i3.salary").ok());
  EXPECT_TRUE(ParseStatement("tick 5").ok());
  EXPECT_TRUE(ParseStatement("advance to 99").ok());
  EXPECT_TRUE(ParseStatement("check").ok());
  EXPECT_TRUE(ParseStatement("show classes").ok());
  EXPECT_TRUE(ParseStatement(
                  "select x, x.salary from x in employee at 30 where "
                  "x.salary > 100")
                  .ok());
  EXPECT_TRUE(ParseStatement(
                  "define class employee under person attributes "
                  "salary: temporal(integer), office: string methods "
                  "raise(integer): employee end")
                  .ok());
}

TEST(ParserTest, Explain) {
  auto r = ParseStatement("explain select x from x in employee");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->kind, Statement::Kind::kExplain);
  ASSERT_NE(r->explain_inner, nullptr);
  EXPECT_EQ(r->explain_inner->kind, Statement::Kind::kSelect);
  EXPECT_TRUE(ParseStatement("explain when i1.a > 0").ok());
  EXPECT_TRUE(ParseStatement("explain tick 3").ok());
  // explain needs a statement and cannot wrap itself.
  EXPECT_FALSE(ParseStatement("explain").ok());
  EXPECT_FALSE(ParseStatement("explain explain select x from x in c").ok());
}

TEST(ParserTest, Rejections) {
  EXPECT_FALSE(ParseStatement("").ok());
  EXPECT_FALSE(ParseStatement("select from x in c").ok());
  EXPECT_FALSE(ParseStatement("update 3 set a = 1").ok());  // not an oid
  EXPECT_FALSE(ParseStatement("create").ok());
  EXPECT_FALSE(ParseStatement("select x from x in c where").ok());
  EXPECT_FALSE(ParseStatement("define class c attributes end").ok());
  EXPECT_FALSE(ParseStatement("delete i1 i2").ok());
}

class QueryEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    interp_ = std::make_unique<Interpreter>(&db_);
    ASSERT_TRUE(
        Run("define class person attributes name: temporal(string), "
            "birthyear: integer end")
            .ok());
    ASSERT_TRUE(
        Run("define class employee under person attributes "
            "salary: temporal(integer), office: string end")
            .ok());
    a_ = Run("create employee (name: 'Ann', birthyear: 1970, salary: 100, "
             "office: 'A1')")
             .value();
    b_ = Run("create employee (name: 'Bob', birthyear: 1980, salary: 200, "
             "office: 'B2')")
             .value();
    ASSERT_TRUE(Run("advance to 50").ok());
  }

  Result<std::string> Run(std::string_view stmt) {
    return interp_->Execute(stmt);
  }

  Database db_;
  std::unique_ptr<Interpreter> interp_;
  std::string a_, b_;
};

TEST_F(QueryEndToEndTest, SelectWithCoercedTemporalAttribute) {
  // x.salary coerces the temporal attribute to its value at the query
  // instant (the Section 6.1 snapshot coercion).
  EXPECT_EQ(Run("select x from x in employee where x.salary > 150").value(),
            b_);
  EXPECT_EQ(Run("select x.name from x in employee where x.salary <= 150")
                .value(),
            "'Ann'");
}

TEST_F(QueryEndToEndTest, TemporalSelectAtPastInstant) {
  ASSERT_TRUE(Run("update " + a_ + " set salary = 500").ok());
  // At now, Ann earns 500...
  EXPECT_EQ(
      Run("select x from x in employee where x.salary > 300").value(), a_);
  // ...but AT 10 the query evaluates against the past extension and the
  // past attribute values.
  EXPECT_EQ(Run("select x from x in employee at 10 where x.salary > 300")
                .value(),
            "(no results)");
  // Explicit @ overrides the evaluation instant.
  EXPECT_EQ(Run("select x from x in employee where x.salary @ 10 > 150")
                .value(),
            b_);
}

TEST_F(QueryEndToEndTest, TypeErrorsAreStatic) {
  // Comparing integer with string is rejected by the checker, not at
  // evaluation time.
  Result<std::string> r =
      Run("select x from x in employee where x.salary = 'rich'");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
  // Accessing a static attribute at a past instant is a type error
  // (Section 5.2: past static values are not recorded).
  r = Run("select x from x in employee where x.office @ 10 = 'A1'");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
  // Unknown attribute / class / unbound variable.
  EXPECT_FALSE(Run("select x from x in employee where x.ghost = 1").ok());
  EXPECT_FALSE(Run("select x from x in ghost").ok());
  EXPECT_FALSE(Run("select y.salary from x in employee").ok());
}

TEST_F(QueryEndToEndTest, ExplainPrintsCompiledPlan) {
  Result<std::string> r =
      Run("explain select x.name from x in employee where x.salary > 150");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->find("compiled select plan"), std::string::npos) << *r;
  EXPECT_NE(r->find("extent: employee"), std::string::npos) << *r;
  r = Run("explain when " + a_ + ".salary > 150");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->find("compiled when plan"), std::string::npos) << *r;
}

TEST_F(QueryEndToEndTest, ExplainReportsFallbackAndTypeErrors) {
  // Non-query verbs do not lower; explain names the reason instead of
  // executing anything (`tick` must NOT advance the clock).
  Result<std::string> r = Run("explain tick 5");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rfind("fallback:", 0), 0u) << *r;
  EXPECT_EQ(Run("show now").value(), "now = 50");
  // A statement that fails the type checker fails identically under
  // explain (lowering type-checks first).
  Result<std::string> bad =
      Run("explain select x from x in employee where x.salary = 'rich'");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
}

TEST_F(QueryEndToEndTest, UpdateDuringAndHistory) {
  ASSERT_TRUE(Run("update " + a_ + " set salary = 110 during [10,19]")
                  .ok());
  EXPECT_EQ(Run("history " + a_ + ".salary").value(),
            "{<[0,9],100>,<[10,19],110>,<[20,now],100>}");
  // DURING on a static attribute is rejected.
  EXPECT_FALSE(
      Run("update " + a_ + " set office = 'C3' during [10,19]").ok());
}

TEST_F(QueryEndToEndTest, SnapshotAndShow) {
  EXPECT_EQ(Run("snapshot " + a_).value(),
            "(birthyear:1970,name:'Ann',office:'A1',salary:100)");
  // Past snapshots are undefined for objects with static attributes.
  EXPECT_FALSE(Run("snapshot " + a_ + " at 10").ok());
  EXPECT_NE(Run("show object " + a_).value().find("lifespan"),
            std::string::npos);
  EXPECT_NE(Run("show class employee").value().find("salary"),
            std::string::npos);
  EXPECT_EQ(Run("show now").value(), "now = 50");
}

TEST_F(QueryEndToEndTest, EqualityPredicates) {
  std::string c =
      Run("create employee (name: 'Ann', birthyear: 1970, salary: 100, "
          "office: 'A1')")
          .value();
  EXPECT_EQ(Run("select x from x in employee where videntical(x, " + a_ +
                ")")
                .value(),
            a_);
  // c was created at t=50 with the same current state as Ann had at
  // creation... but Ann's salary history started at 0, so vequal fails
  // while vinstant compares snapshots at now.
  EXPECT_EQ(Run("select x from x in employee where vinstant(x, " + c +
                ") and not videntical(x, " + c + ")")
                .value(),
            a_);
  EXPECT_EQ(Run("select x from x in employee where vequal(x, " + c +
                ") and not videntical(x, " + c + ")")
                .value(),
            "(no results)");
}

TEST_F(QueryEndToEndTest, MigrationAndCheckThroughTql) {
  ASSERT_TRUE(
      Run("define class manager under employee attributes "
          "dependents: temporal(integer), officialcar: string end")
          .ok());
  ASSERT_TRUE(Run("migrate " + a_ +
                  " to manager set dependents = 2, officialcar = 'sedan'")
                  .ok());
  EXPECT_EQ(Run("select x from x in manager").value(), a_);
  EXPECT_EQ(Run("check").value(), "consistent");
  ASSERT_TRUE(Run("tick").ok());
  ASSERT_TRUE(Run("delete " + b_).ok());
  EXPECT_EQ(Run("check").value(), "consistent");
}

TEST_F(QueryEndToEndTest, WhenComputesValidIntervals) {
  // WHEN: temporal selection over histories, the TQuel-valid-clause
  // analog. Ann earned 100 on [0,9] and 110 on [10,19], then back to 100.
  ASSERT_TRUE(Run("update " + a_ + " set salary = 110 during [10,19]")
                  .ok());
  EXPECT_EQ(Run("when " + a_ + ".salary > 105").value(), "{[10,19]}");
  EXPECT_EQ(Run("when " + a_ + ".salary >= 100").value(), "{[0,50]}");
  EXPECT_EQ(Run("when " + a_ + ".salary > 99999").value(), "{}");
  // Cross-object conditions take both histories into account.
  ASSERT_TRUE(Run("update " + b_ + " set salary = 105 during [15,30]")
                  .ok());
  EXPECT_EQ(
      Run("when " + a_ + ".salary > " + b_ + ".salary").value(),
      "{[15,19]}");
  // Before an object exists its attributes are null: the condition is
  // false there, not an error.
  ASSERT_TRUE(Run("tick").ok());
  std::string late = Run("create employee (salary: 1)").value();
  EXPECT_EQ(Run("when " + late + ".salary = 1").value(), "{[51,51]}");
  // Non-boolean conditions are a static type error.
  Result<std::string> bad = Run("when " + a_ + ".salary + 1");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
}

TEST_F(QueryEndToEndTest, MultiBinderSelect) {
  // Pair queries over the cartesian product of two extents: the setting
  // where the equality predicates of Section 5.3 become useful.
  Result<std::string> pairs = Run(
      "select x, y from x in employee, y in employee where "
      "x.salary < y.salary");
  ASSERT_TRUE(pairs.ok()) << pairs.status();
  EXPECT_EQ(*pairs, a_ + " | " + b_);
  // Self-pairs excluded via identity.
  EXPECT_EQ(Run("select x, y from x in employee, y in employee where "
                "not videntical(x, y) and x.name <> y.name")
                .value()
                .find('\n') != std::string::npos,
            true);  // both orderings appear
  // Duplicate binder names are a static error.
  Result<std::string> dup =
      Run("select x from x in employee, x in person");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kTypeError);
  // Binders range over different classes.
  ASSERT_TRUE(
      Run("define class team attributes lead: person end").ok());
  std::string t = Run("create team (lead: " + a_ + ")").value();
  EXPECT_EQ(Run("select t.lead from t in team, p in person where "
                "videntical(t.lead, p) and p.birthyear < 1975")
                .value(),
            a_);
}

TEST_F(QueryEndToEndTest, DropClassStatement) {
  ASSERT_TRUE(
      Run("define class scratch attributes x: integer end").ok());
  std::string o = Run("create scratch ()").value();
  // Cannot drop while members live.
  EXPECT_FALSE(Run("drop class scratch").ok());
  ASSERT_TRUE(Run("tick").ok());
  ASSERT_TRUE(Run("delete " + o).ok());
  ASSERT_TRUE(Run("tick").ok());
  EXPECT_EQ(Run("drop class scratch").value(), "class scratch dropped");
  // The class lifespan is closed: no new instances.
  EXPECT_FALSE(Run("create scratch ()").ok());
  EXPECT_FALSE(Run("drop class ghost").ok());
}

TEST_F(QueryEndToEndTest, ScriptExecution) {
  Result<std::string> out = interp_->ExecuteScript(
      "tick 1; create person (name: 'Cy', birthyear: 1999); "
      "select x.name from x in person where x.birthyear > 1990");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("'Cy'"), std::string::npos);
  // Scripts stop at the first failing statement.
  EXPECT_FALSE(interp_->ExecuteScript("tick 1; bogus statement").ok());
}

TEST_F(QueryEndToEndTest, BuiltinFunctions) {
  ASSERT_TRUE(
      Run("define class team attributes members: set-of(person), "
          "tags: list-of(string) end")
          .ok());
  std::string t =
      Run("create team (members: {" + a_ + "," + b_ + "}, tags: ['x','y'])")
          .value();
  EXPECT_EQ(Run("select size(x.members) from x in team").value(), "2");
  EXPECT_EQ(Run("select x from x in team where " + a_ + " in x.members")
                .value(),
            t);
  EXPECT_EQ(Run("select defined(x.members) from x in team").value(),
            "true");
  EXPECT_EQ(
      Run("select lifespan(x) from x in team").value(), "[t50,tnow]");
}

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  // Statements assembled from random fragments must always yield a clean
  // parse or a clean error — never a crash or a hang.
  std::mt19937_64 rng(GetParam());
  const char* fragments[] = {
      "select", "from",   "in",     "where",  "update", "set",    "i1",
      "t42",    "now",    "(",      ")",      "{",      "}",      "[",
      "]",      ",",      ":",      ".",      "@",      "=",      "<>",
      "x",      "person", "salary", "'str'",  "42",     "3.5",    "and",
      "or",     "not",    "define", "class",  "end",    "create", "null",
      "during", "migrate","to",     "check",  "tick",   "+",      "*",
      "vdeep",  "rec",    "size",   ";",      "-",      "<",      ">=",
  };
  std::uniform_int_distribution<size_t> pick(0,
                                             std::size(fragments) - 1);
  std::uniform_int_distribution<int> len(0, 24);
  for (int round = 0; round < 500; ++round) {
    std::string soup;
    int n = len(rng);
    for (int i = 0; i < n; ++i) {
      soup += fragments[pick(rng)];
      soup += ' ';
    }
    Result<Statement> r = ParseStatement(soup);  // ok or error, no crash
    (void)r;
    Result<std::vector<Statement>> rs = ParseScript(soup);
    (void)rs;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(31, 62, 93, 124));

}  // namespace
}  // namespace tchimera
