// Tests for temporal integrity constraints (the Section 7 future-work
// language): parsing, the four quantification modes, piecewise-exact
// evaluation over histories, and the registry.
#include <gtest/gtest.h>

#include "constraints/constraint.h"
#include "workload/project_schema.h"

namespace tchimera {
namespace {

Value I(int64_t v) { return Value::Integer(v); }

class ConstraintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallProjectSchema(&db_).ok());
    ann_ = db_.CreateObject("employee",
                            {{"name", Value::String("Ann")},
                             {"birthyear", I(1970)},
                             {"salary", I(48000)},
                             {"office", Value::String("A1")}})
               .value();
  }

  Status Check(const char* text) {
    Result<TemporalConstraint> c = TemporalConstraint::Parse(text);
    if (!c.ok()) return c.status();
    return c->Check(db_);
  }

  Database db_;
  Oid ann_;
};

TEST_F(ConstraintTest, Parsing) {
  EXPECT_TRUE(TemporalConstraint::Parse(
                  "constraint c1 on employee always x.salary > 0")
                  .ok());
  EXPECT_TRUE(TemporalConstraint::Parse(
                  "constraint c2 on employee sometime x.salary > 100")
                  .ok());
  EXPECT_TRUE(TemporalConstraint::Parse(
                  "constraint c3 on employee nondecreasing salary")
                  .ok());
  EXPECT_TRUE(TemporalConstraint::Parse(
                  "constraint c4 on person immutable name")
                  .ok());
  EXPECT_FALSE(TemporalConstraint::Parse("nonsense").ok());
  EXPECT_FALSE(
      TemporalConstraint::Parse("constraint c on employee never x").ok());
  EXPECT_FALSE(TemporalConstraint::Parse(
                   "constraint c on employee always )bad(")
                   .ok());
  EXPECT_FALSE(TemporalConstraint::Parse(
                   "constraint c on employee nondecreasing 9bad")
                   .ok());
  // Round-trip printing.
  TemporalConstraint c =
      TemporalConstraint::Parse(
          "constraint pay on employee nondecreasing salary")
          .value();
  EXPECT_EQ(c.ToString(),
            "constraint pay on employee nondecreasing salary");
}

TEST_F(ConstraintTest, AlwaysHoldsOverWholeHistory) {
  ASSERT_TRUE(db_.AdvanceTo(10).ok());
  ASSERT_TRUE(db_.UpdateAttribute(ann_, "salary", I(61000)).ok());
  EXPECT_TRUE(Check("constraint pos on employee always x.salary > 0").ok());
  // A violation hidden in the *past* is still found: the current salary
  // satisfies the condition, an old segment does not.
  ASSERT_TRUE(db_.AdvanceTo(20).ok());
  ASSERT_TRUE(
      db_.UpdateAttributeAt(ann_, "salary", Interval(5, 7), I(-1)).ok());
  Status s = Check("constraint pos on employee always x.salary > 0");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kConsistencyViolation);
  EXPECT_NE(s.message().find("instant 5"), std::string::npos);
}

TEST_F(ConstraintTest, SometimeNeedsOneWitness) {
  ASSERT_TRUE(db_.AdvanceTo(10).ok());
  ASSERT_TRUE(db_.UpdateAttribute(ann_, "salary", I(70000)).ok());
  EXPECT_TRUE(
      Check("constraint rich on employee sometime x.salary > 69000").ok());
  Status s =
      Check("constraint richer on employee sometime x.salary > 90000");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("never held"), std::string::npos);
}

TEST_F(ConstraintTest, NondecreasingSalary) {
  ASSERT_TRUE(db_.AdvanceTo(10).ok());
  ASSERT_TRUE(db_.UpdateAttribute(ann_, "salary", I(61000)).ok());
  ASSERT_TRUE(db_.AdvanceTo(20).ok());
  ASSERT_TRUE(db_.UpdateAttribute(ann_, "salary", I(61000)).ok());
  EXPECT_TRUE(
      Check("constraint pay on employee nondecreasing salary").ok());
  ASSERT_TRUE(db_.AdvanceTo(30).ok());
  ASSERT_TRUE(db_.UpdateAttribute(ann_, "salary", I(50000)).ok());
  Status s = Check("constraint pay on employee nondecreasing salary");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("decreased"), std::string::npos);
}

TEST_F(ConstraintTest, ImmutableAttribute) {
  EXPECT_TRUE(Check("constraint nm on person immutable name").ok());
  ASSERT_TRUE(db_.AdvanceTo(10).ok());
  ASSERT_TRUE(
      db_.UpdateAttribute(ann_, "name", Value::String("Anna")).ok());
  Status s = Check("constraint nm on person immutable name");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("immutable"), std::string::npos);
  // Immutability of a *non-temporal* attribute is undecidable (no
  // history): a type error, not a silent pass.
  Status st = Check("constraint off on employee immutable office");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
}

TEST_F(ConstraintTest, ConstraintsFollowSubclassMembership) {
  // A constraint on `person` also covers employees (members, not just
  // instances).
  ASSERT_TRUE(db_.AdvanceTo(10).ok());
  ASSERT_TRUE(
      db_.UpdateAttribute(ann_, "name", Value::String("Anna")).ok());
  Status s = Check("constraint nm on person immutable name");
  EXPECT_FALSE(s.ok());
  // Objects that were never members are not checked.
  EXPECT_TRUE(Check("constraint t on task immutable effort").ok());
}

TEST_F(ConstraintTest, TypeErrorsAreReported) {
  Status s = Check("constraint bad on employee always x.salary + 1");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  s = Check("constraint bad on employee always x.ghost = 1");
  EXPECT_FALSE(s.ok());
  s = Check("constraint bad on ghost always true");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(ConstraintTest, RegistryCollectsAllViolations) {
  ConstraintRegistry registry;
  ASSERT_TRUE(registry
                  .Define("constraint pos on employee always x.salary > 0")
                  .ok());
  ASSERT_TRUE(
      registry.Define("constraint nm on person immutable name").ok());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_FALSE(
      registry.Define("constraint pos on task always true").ok());  // dup
  EXPECT_TRUE(registry.CheckAll(db_).ok());
  // Break both; CheckAll reports both.
  ASSERT_TRUE(db_.AdvanceTo(10).ok());
  ASSERT_TRUE(
      db_.UpdateAttribute(ann_, "name", Value::String("Anna")).ok());
  ASSERT_TRUE(
      db_.UpdateAttributeAt(ann_, "salary", Interval(3, 4), I(-5)).ok());
  Status s = registry.CheckAll(db_);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("pos"), std::string::npos);
  EXPECT_NE(s.message().find("nm"), std::string::npos);
  // Per-object incremental check.
  EXPECT_FALSE(registry.CheckObject(db_, ann_).ok());
  ASSERT_TRUE(registry.Drop("pos").ok());
  ASSERT_TRUE(registry.Drop("nm").ok());
  EXPECT_TRUE(registry.CheckAll(db_).ok());
  EXPECT_FALSE(registry.Drop("ghost").ok());
}

}  // namespace
}  // namespace tchimera
