// Tests for the session/transaction engine: snapshot-isolated readers
// over a VersionedDatabase, serialized writes through the query Engine,
// and cross-session group commit (storage/group_commit.h) — including
// crash-point enumeration proving acknowledged commits land on
// whole-batch boundaries.
//
// The stress tests here are the ones the TSan CI job exercises
// (-DTCHIMERA_SANITIZE=thread): a data race in the snapshot or commit
// protocol is a test failure there, not a flake.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/lint_driver.h"
#include "common/fault_fs.h"
#include "core/db/consistency.h"
#include "core/db/database.h"
#include "core/db/versioned_db.h"
#include "query/interpreter.h"
#include "query/session.h"
#include "storage/deserializer.h"
#include "storage/group_commit.h"
#include "storage/journal.h"
#include "storage/recovery.h"
#include "storage/serializer.h"

namespace tchimera {
namespace {

// A fresh scratch directory per test case (wiped on entry, so reruns are
// deterministic).
std::string FreshDir(const std::string& name) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("tchimera_conc_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

constexpr char kSchema[] = "define class emp attributes v: integer end";

// ---------------------------------------------------------------------------
// VersionedDatabase: the core snapshot/commit protocol.

TEST(VersionedDbTest, SnapshotPinsVersionAndCommitBumpsIt) {
  VersionedDatabase vdb;
  EXPECT_EQ(vdb.version(), 0u);

  ReadSnapshot before = vdb.OpenSnapshot();
  EXPECT_TRUE(before.valid());
  EXPECT_EQ(before.version(), 0u);
  EXPECT_EQ(before.db().now(), 0);
  // Snapshots of the same version are views of one immutable Database,
  // not copies: concurrent snapshots are free.
  ReadSnapshot sibling = vdb.OpenSnapshot();
  EXPECT_EQ(&sibling.db(), &before.db());
  {
    ReadSnapshot released = std::move(sibling);  // movable; pin travels
    EXPECT_TRUE(released.valid());
  }

  // MVCC: `before` stays alive across the write — a held snapshot never
  // blocks a writer, it just keeps pinning its own version.
  {
    WriteGuard guard = vdb.BeginWrite();
    guard.db().Tick();
    EXPECT_EQ(guard.Commit(), 1u);
  }
  EXPECT_EQ(vdb.version(), 1u);
  EXPECT_EQ(before.version(), 0u);
  EXPECT_EQ(before.db().now(), 0);  // still the pinned pre-commit state
  ReadSnapshot after = vdb.OpenSnapshot();
  EXPECT_EQ(after.version(), 1u);
  EXPECT_EQ(after.db().now(), 1);

  // A guard dropped without Commit publishes nothing version-wise.
  { WriteGuard abandoned = vdb.BeginWrite(); }
  EXPECT_EQ(vdb.version(), 1u);
}

// Satellite regression: Commit() publishes under the writer lock and
// releases it — a second Commit() (the old commit-after-release pattern,
// which used to bump the version counter without the lock and could
// publish out of order) is a hard error, not a silent race.
TEST(VersionedDbDeathTest, CommitAfterReleaseIsAHardError) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  VersionedDatabase vdb;
  EXPECT_DEATH(
      {
        WriteGuard guard = vdb.BeginWrite();
        guard.db().Tick();
        guard.Commit();
        guard.Commit();  // lock already released by the first Commit
      },
      "no longer holds the writer lock");
}

// Version chains retire by refcount: a published version's Database is
// freed as soon as no snapshot pins it and a newer version exists.
TEST(VersionedDbTest, RetiredVersionsFreeTheirDatabases) {
  const int64_t base = Database::live_instance_count();
  VersionedDatabase vdb;  // the tip + the published version 0
  EXPECT_EQ(Database::live_instance_count(), base + 2);
  {
    ReadSnapshot pinned = vdb.OpenSnapshot();
    for (int i = 0; i < 5; ++i) {
      WriteGuard guard = vdb.BeginWrite();
      guard.db().Tick();
      guard.Commit();
    }
    // Intermediate versions 1..4 retired the moment their successor was
    // published; alive: tip, pinned version 0, latest version 5.
    EXPECT_EQ(vdb.version(), 5u);
    EXPECT_EQ(Database::live_instance_count(), base + 3);
    EXPECT_EQ(pinned.db().now(), 0);
  }
  // Dropping the last pin retires version 0 too.
  EXPECT_EQ(Database::live_instance_count(), base + 2);
}

// Satellite: snapshot-retirement property test (run under ASan in CI).
// After N random commit / open / drop steps, the process holds exactly
// the Databases still reachable: the tip plus one per *distinct* version
// some snapshot pins (or the published head). No retired version leaks.
TEST(VersionedDbTest, SnapshotRetirementProperty) {
  const int64_t base = Database::live_instance_count();
  VersionedDatabase vdb;
  std::mt19937 rng(0x7c01u);  // deterministic: failures must reproduce
  std::vector<ReadSnapshot> held;
  for (int step = 0; step < 400; ++step) {
    switch (rng() % 3) {
      case 0: {
        WriteGuard guard = vdb.BeginWrite();
        guard.db().Tick();
        guard.Commit();
        break;
      }
      case 1:
        held.push_back(vdb.OpenSnapshot());
        break;
      default:
        if (!held.empty()) {
          size_t victim = rng() % held.size();
          held[victim] = std::move(held.back());
          held.pop_back();
        }
        break;
    }
    std::set<uint64_t> pinned_versions;
    for (const ReadSnapshot& snap : held) {
      pinned_versions.insert(snap.version());
    }
    pinned_versions.insert(vdb.version());  // the head is always alive
    ASSERT_EQ(Database::live_instance_count(),
              base + 1 + static_cast<int64_t>(pinned_versions.size()))
        << "at step " << step << " with " << held.size() << " snapshots";
  }
  held.clear();
  EXPECT_EQ(Database::live_instance_count(), base + 2);  // tip + head
}

// ---------------------------------------------------------------------------
// Session routing: reads on snapshots, writes serialized, one version
// bump per successful mutation.

TEST(SessionTest, ReadsSeeCommittedWritesAndDontBumpVersion) {
  Engine engine;
  Session session = engine.OpenSession();

  ASSERT_TRUE(session.Execute(kSchema).ok());
  Result<std::string> oid = session.Execute("create emp (v: 1)");
  ASSERT_TRUE(oid.ok()) << oid.status();
  EXPECT_EQ(*oid, "i1");
  uint64_t after_writes = engine.version();
  EXPECT_EQ(after_writes, 2u);  // one commit per mutating statement

  Result<std::string> read = session.Execute("select x.v from x in emp");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, "1");
  EXPECT_EQ(session.Execute("show now").value(), "now = 0");
  EXPECT_EQ(session.Execute("snapshot i1").value(),
            session.Execute("snapshot i1 at 0").value());
  // Reads never commit.
  EXPECT_EQ(engine.version(), after_writes);

  // A failing write publishes nothing.
  EXPECT_FALSE(session.Execute("create nosuch (v: 1)").ok());
  EXPECT_EQ(engine.version(), after_writes);
}

TEST(SessionTest, DirectSnapshotMatchesWriterState) {
  Engine engine;
  Session session = engine.OpenSession();
  ASSERT_TRUE(session.Execute(kSchema).ok());
  ASSERT_TRUE(session.Execute("create emp (v: 7)").ok());

  ReadSnapshot snap = session.snapshot();
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap.version(), engine.version());
  EXPECT_EQ(snap.db().object_count(), engine.writer_db().object_count());
  EXPECT_TRUE(CheckDatabaseConsistency(snap.db()).ok());
}

// ---------------------------------------------------------------------------
// The stress test: >=4 readers racing 1 writer. Every snapshot a reader
// opens must pass the full Definition 5.3-5.6 consistency audit, and the
// version sequence each reader observes must be monotone (snapshot
// isolation: no time travel). Run under TSan this also proves the
// locking protocol is race-free.

TEST(ConcurrencyTest, StressReadersVsWriter) {
  Engine engine;
  {
    Session setup = engine.OpenSession();
    ASSERT_TRUE(setup.Execute(kSchema).ok());
    ASSERT_TRUE(setup.Execute("create emp (v: 0)").ok());
  }

  constexpr int kReaders = 4;
  constexpr int kWrites = 60;
  std::atomic<bool> done{false};
  std::atomic<int> audit_failures{0};
  std::atomic<int> monotonicity_violations{0};
  std::atomic<int> read_errors{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&engine, &done, &audit_failures,
                          &monotonicity_violations, &read_errors] {
      Session session = engine.OpenSession();
      uint64_t last_version = 0;
      do {
        ReadSnapshot snap = session.snapshot();
        if (snap.version() < last_version) {
          monotonicity_violations.fetch_add(1, std::memory_order_relaxed);
        }
        last_version = snap.version();
        if (!CheckDatabaseConsistency(snap.db()).ok()) {
          audit_failures.fetch_add(1, std::memory_order_relaxed);
        }
        snap = ReadSnapshot();  // drop the pin before the TQL read
        Result<std::string> rows =
            session.Execute("select x.v from x in emp");
        if (!rows.ok()) read_errors.fetch_add(1, std::memory_order_relaxed);
        // Breathe between iterations so the writer makes progress per
        // reader-observed version (more interesting interleavings).
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      } while (!done.load(std::memory_order_acquire));
    });
  }

  Session writer = engine.OpenSession();
  for (int i = 0; i < kWrites; ++i) {
    Result<std::string> out = (i % 2 == 0)
                                  ? writer.Execute("create emp (v: 1)")
                                  : writer.Execute("tick 1");
    ASSERT_TRUE(out.ok()) << out.status();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(audit_failures.load(), 0);
  EXPECT_EQ(monotonicity_violations.load(), 0);
  EXPECT_EQ(read_errors.load(), 0);
  EXPECT_EQ(engine.version(), static_cast<uint64_t>(kWrites) + 2);
  EXPECT_TRUE(CheckDatabaseConsistency(engine.writer_db()).ok());
}

// ---------------------------------------------------------------------------
// The MVCC interference stress: one deliberately slow reader pins a
// single snapshot for the ENTIRE run while a writer commits hundreds of
// statements. Under the old shared_mutex protocol this deadlocked (the
// writer waited on the held read lock); under MVCC the writer never
// waits, the reader's pinned view never changes, and the chain of
// intermediate versions retires as it is superseded. TSan-clean.

TEST(ConcurrencyTest, SlowReaderDoesNotBlockWriters) {
  Engine engine;
  {
    Session setup = engine.OpenSession();
    ASSERT_TRUE(setup.Execute(kSchema).ok());
    ASSERT_TRUE(setup.Execute("create emp (v: 0)").ok());
  }
  const uint64_t pinned_version = engine.version();
  const int64_t live_before = Database::live_instance_count();

  constexpr int kWrites = 200;
  std::atomic<bool> reader_pinned{false};
  std::atomic<bool> writer_done{false};
  std::atomic<int> reader_failures{0};

  std::thread slow_reader([&engine, &reader_pinned, &writer_done,
                           &reader_failures, pinned_version] {
    Session session = engine.OpenSession();
    ReadSnapshot pinned = session.snapshot();  // held for the whole run
    if (!pinned.valid() || pinned.version() != pinned_version) {
      reader_failures.fetch_add(1, std::memory_order_relaxed);
      reader_pinned.store(true, std::memory_order_release);
      return;
    }
    reader_pinned.store(true, std::memory_order_release);
    const size_t expected_objects = pinned.db().object_count();
    while (!writer_done.load(std::memory_order_acquire)) {
      // The pinned view must be frozen: same version, same state, fully
      // consistent, no matter how many commits land meanwhile.
      if (pinned.version() != pinned_version ||
          pinned.db().object_count() != expected_objects ||
          pinned.db().now() != 0 ||
          !CheckDatabaseConsistency(pinned.db()).ok()) {
        reader_failures.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Only start committing once the reader's pin is in place — the whole
  // point is that the pinned snapshot outlives every one of the writes.
  while (!reader_pinned.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  Session writer = engine.OpenSession();
  for (int i = 0; i < kWrites; ++i) {
    Result<std::string> out = (i % 2 == 0)
                                  ? writer.Execute("create emp (v: 1)")
                                  : writer.Execute("tick 1");
    ASSERT_TRUE(out.ok()) << out.status();
  }
  // With the reader still pinning its snapshot, all writes are already
  // committed and visible — the old protocol never got here.
  EXPECT_EQ(engine.version(), pinned_version + kWrites);
  // The version chain retired as it went: only the tip, the published
  // head and the reader's pinned version are alive, not kWrites copies.
  EXPECT_LE(Database::live_instance_count(), live_before + 2);

  writer_done.store(true, std::memory_order_release);
  slow_reader.join();
  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_TRUE(CheckDatabaseConsistency(engine.writer_db()).ok());
}

// ---------------------------------------------------------------------------
// Group commit: deterministic batching on one thread.

TEST(GroupCommitTest, OneSyncAcknowledgesManyStatements) {
  std::string dir = FreshDir("batching");
  GroupCommitJournal sink;
  ASSERT_TRUE(sink.Open(dir + "/journal.tchl").ok());

  constexpr uint64_t kStatements = 8;
  CommitSink::Ticket last;
  for (uint64_t i = 0; i < kStatements; ++i) last = sink.Enqueue("tick 1");
  EXPECT_EQ(last.seq, kStatements);
  EXPECT_EQ(sink.durable(), 0u);  // nothing on disk until someone awaits

  ASSERT_TRUE(sink.Await(last).ok());
  EXPECT_EQ(sink.durable(), kStatements);
  EXPECT_EQ(sink.batches(), 1u);  // all eight rode one fdatasync

  Status quiesced = sink.WithQuiesced([&](Journal& journal) {
    EXPECT_EQ(journal.appended(), kStatements);
    EXPECT_EQ(journal.sync_count(), 1u);
    return Status::OK();
  });
  ASSERT_TRUE(quiesced.ok()) << quiesced;
  // Awaiting an already-durable ticket is free — no new batch.
  ASSERT_TRUE(sink.Await(last).ok());
  EXPECT_EQ(sink.batches(), 1u);
  sink.Close();

  Result<JournalScan> scan = ScanJournal(dir + "/journal.tchl");
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->tail_error.ok());
  EXPECT_EQ(scan->statements.size(), kStatements);
}

// ---------------------------------------------------------------------------
// Group commit under real concurrency: N writer sessions hammer one
// engine; the journal must replay to the exact final state (journal
// order == commit order, even across threads).

TEST(GroupCommitTest, MultiWriterJournalReplaysToIdenticalState) {
  std::string dir = FreshDir("multiwriter");
  const std::string journal_path = dir + "/journal.tchl";

  Engine engine;
  {
    Session setup = engine.OpenSession();
    ASSERT_TRUE(setup.Execute(kSchema).ok());
  }
  GroupCommitJournal sink;
  ASSERT_TRUE(sink.Open(journal_path).ok());
  engine.set_commit_sink(&sink);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&engine, &failures] {
      Session session = engine.OpenSession();
      for (int i = 0; i < kPerThread; ++i) {
        if (!session.Execute("create emp (v: 1)").ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_EQ(sink.durable(), static_cast<uint64_t>(kThreads * kPerThread));
  // Contention should have batched at least some commits (not a hard
  // guarantee per run, but durable/batches is the interesting ratio).
  EXPECT_LE(sink.batches(), sink.durable());
  sink.Close();

  // Replay the journal (schema first — it was executed before the sink
  // was installed, the recovery-replay position) into a fresh database.
  Result<JournalScan> scan = ScanJournal(journal_path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_TRUE(scan->tail_error.ok());
  ASSERT_EQ(scan->statements.size(),
            static_cast<size_t>(kThreads * kPerThread));
  Database replayed;
  Interpreter interp(&replayed);
  ASSERT_TRUE(interp.Execute(kSchema).ok());
  for (const std::string& stmt : scan->statements) {
    Result<std::string> out = interp.Execute(stmt);
    ASSERT_TRUE(out.ok()) << out.status() << " replaying: " << stmt;
  }
  EXPECT_EQ(SaveDatabaseToString(replayed).value(),
            SaveDatabaseToString(engine.writer_db()).value());
}

// ---------------------------------------------------------------------------
// Crash consistency. Drives the sink directly (single-threaded, so batch
// boundaries are deterministic: each Await flushes exactly one group) on
// a fault-injection filesystem, enumerating every crash point. After
// salvage, the journal must hold (a) at least every acknowledged
// statement and (b) — with no torn tail — a whole number of batches.

struct CrashRunResult {
  uint64_t acked = 0;     // statements whose Await returned OK
  size_t recovered = 0;   // statements in the salvaged journal
  uint64_t ops_seen = 0;  // mutating fs ops during the workload proper
};

CrashRunResult RunCrashWorkload(const std::string& dir,
                                FaultInjectionFileSystem* ffs,
                                const FaultPlan& plan, uint64_t group) {
  const std::string path = dir + "/journal.tchl";
  JournalOptions jopts;
  jopts.fs = ffs;
  GroupCommitJournal sink;
  ffs->ClearPlan();  // header writes are not crash candidates here
  EXPECT_TRUE(sink.Open(path, jopts).ok());
  ffs->SetPlan(plan);

  CrashRunResult result;
  constexpr uint64_t kGroups = 5;
  for (uint64_t g = 0; g < kGroups; ++g) {
    CommitSink::Ticket last;
    for (uint64_t i = 0; i < group; ++i) last = sink.Enqueue("tick 1");
    if (!sink.Await(last).ok()) break;  // sink is poisoned from here on
    result.acked += group;
  }
  sink.Close();
  result.ops_seen = ffs->ops_seen();  // before ClearPlan resets the counter
  ffs->ClearPlan();

  Result<JournalScan> scan = SalvageJournal(path, ffs);
  EXPECT_TRUE(scan.ok()) << scan.status();
  if (scan.ok()) result.recovered = scan->statements.size();
  return result;
}

TEST(GroupCommitCrashTest, RecoveryLandsOnWholeBatchBoundary) {
  FaultInjectionFileSystem ffs(FileSystem::Default());
  constexpr uint64_t kGroup = 3;

  // Fault-free run to learn the op count, then crash at every op.
  std::string dir = FreshDir("crash_count");
  CrashRunResult clean = RunCrashWorkload(dir, &ffs, FaultPlan{}, kGroup);
  ASSERT_EQ(clean.acked, 5 * kGroup);
  ASSERT_EQ(clean.recovered, 5 * kGroup);
  const uint64_t total_ops = clean.ops_seen;
  ASSERT_GT(total_ops, 0u);

  for (uint64_t at = 0; at < total_ops; ++at) {
    std::string crash_dir =
        FreshDir("crash_at_" + std::to_string(at));
    FaultPlan plan;
    plan.mode = FaultPlan::Mode::kCrash;
    plan.at_op = at;
    CrashRunResult r = RunCrashWorkload(crash_dir, &ffs, plan, kGroup);
    // Acknowledged commits survive the crash...
    EXPECT_GE(r.recovered, r.acked) << "crash at op " << at;
    // ...and with the unsynced tail fully lost, the survivors are exactly
    // whole batches: group commit never exposes half a batch. (A crash at
    // the very last ops — during Close, after the final batch synced —
    // legitimately leaves all statements acked and recovered.)
    EXPECT_EQ(r.recovered % kGroup, 0u) << "crash at op " << at;
    EXPECT_LE(r.acked, 5 * kGroup) << "crash at op " << at;
  }
}

TEST(GroupCommitCrashTest, TornTailNeverLosesAcknowledgedCommits) {
  FaultInjectionFileSystem ffs(FileSystem::Default());
  constexpr uint64_t kGroup = 3;

  std::string dir = FreshDir("torn_count");
  CrashRunResult clean = RunCrashWorkload(dir, &ffs, FaultPlan{}, kGroup);
  ASSERT_EQ(clean.acked, 5 * kGroup);
  const uint64_t total_ops = clean.ops_seen;

  for (uint64_t at = 0; at < total_ops; ++at) {
    std::string crash_dir = FreshDir("torn_at_" + std::to_string(at));
    FaultPlan plan;
    plan.mode = FaultPlan::Mode::kCrash;
    plan.at_op = at;
    plan.surviving_tail_bytes = 7;  // a torn write: part of a record
    CrashRunResult r = RunCrashWorkload(crash_dir, &ffs, plan, kGroup);
    // A torn tail may preserve extra *unacknowledged* records (salvage
    // keeps any valid prefix), so only the prefix property holds: nothing
    // acknowledged is ever lost.
    EXPECT_GE(r.recovered, r.acked) << "torn crash at op " << at;
  }
}

TEST(GroupCommitTest, FailedSyncPoisonsTheSink) {
  std::string dir = FreshDir("poison");
  FaultInjectionFileSystem ffs(FileSystem::Default());
  JournalOptions jopts;
  jopts.fs = &ffs;
  GroupCommitJournal sink;
  ASSERT_TRUE(sink.Open(dir + "/journal.tchl", jopts).ok());

  Engine engine;
  Session session = engine.OpenSession();
  ASSERT_TRUE(session.Execute(kSchema).ok());
  engine.set_commit_sink(&sink);
  ASSERT_TRUE(session.Execute("create emp (v: 1)").ok());

  FaultPlan plan;
  plan.mode = FaultPlan::Mode::kFailOp;
  plan.at_op = 0;  // the very next journal write fails (EIO-style)
  ffs.SetPlan(plan);
  EXPECT_FALSE(session.Execute("create emp (v: 2)").ok());
  ffs.ClearPlan();

  // The lost write can never be acknowledged, so neither can anything
  // after it: the sink stays poisoned even though the disk recovered.
  EXPECT_FALSE(session.Execute("create emp (v: 3)").ok());
  EXPECT_FALSE(session.Execute("tick 1").ok());
  // Reads are unaffected — durability is a write-path concern.
  EXPECT_TRUE(session.Execute("select x.v from x in emp").ok());
  sink.Close();
}

// Satellite regression: Enqueue after Close used to hand out a live
// ticket for a statement that silently never reached the journal. It
// must fail fast instead — a rejected ticket (seq 0, failed status)
// that Await reports verbatim, with nothing counted as enqueued.
TEST(GroupCommitTest, EnqueueAfterCloseFailsFast) {
  std::string dir = FreshDir("enqueue_after_close");
  GroupCommitJournal sink;
  ASSERT_TRUE(sink.Open(dir + "/journal.tchl").ok());
  CommitSink::Ticket ok_ticket = sink.Enqueue("tick 1");
  ASSERT_TRUE(sink.Await(ok_ticket).ok());
  sink.Close();

  CommitSink::Ticket rejected = sink.Enqueue("tick 1");
  EXPECT_EQ(rejected.seq, 0u);
  EXPECT_FALSE(rejected.status.ok());
  Status awaited = sink.Await(rejected);
  EXPECT_FALSE(awaited.ok());
  EXPECT_NE(awaited.message().find("closed"), std::string::npos) << awaited;
  // The rejected statement was never admitted to the pipeline.
  EXPECT_EQ(sink.enqueued(), 1u);
  EXPECT_EQ(sink.durable(), 1u);

  // On disk: exactly the one statement that was acknowledged.
  Result<JournalScan> scan = ScanJournal(dir + "/journal.tchl");
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->statements.size(), 1u);
}

// Same fail-fast contract for a poisoned sink: once a sync has failed,
// Enqueue itself reports the sticky error instead of admitting
// statements that can never become durable.
TEST(GroupCommitTest, EnqueueAfterPoisonFailsFast) {
  std::string dir = FreshDir("enqueue_after_poison");
  FaultInjectionFileSystem ffs(FileSystem::Default());
  JournalOptions jopts;
  jopts.fs = &ffs;
  GroupCommitJournal sink;
  ASSERT_TRUE(sink.Open(dir + "/journal.tchl", jopts).ok());

  FaultPlan plan;
  plan.mode = FaultPlan::Mode::kFailOp;
  plan.at_op = 0;  // the first journal write fails (EIO-style)
  ffs.SetPlan(plan);
  CommitSink::Ticket doomed = sink.Enqueue("tick 1");
  ASSERT_EQ(doomed.seq, 1u);  // admitted before the fault fired
  EXPECT_FALSE(sink.Await(doomed).ok());
  ffs.ClearPlan();

  // The sink is poisoned: later Enqueues are rejected outright, with
  // the original failure as the sticky explanation.
  CommitSink::Ticket rejected = sink.Enqueue("tick 1");
  EXPECT_EQ(rejected.seq, 0u);
  EXPECT_FALSE(rejected.status.ok());
  EXPECT_FALSE(sink.Await(rejected).ok());
  EXPECT_EQ(sink.enqueued(), 1u);
  sink.Close();
}

// ---------------------------------------------------------------------------
// The full engine + sink + checkpoint + recovery cycle, with trigger and
// constraint definitions riding the v3 snapshot's DEFINE records.

TEST(EngineRecoveryTest, CheckpointPreservesDefinitionsAcrossRestart) {
  std::string dir = FreshDir("checkpoint");
  const std::string snapshot_path = dir + "/snapshot.tchdb";
  const std::string journal_path = dir + "/journal.tchl";

  {
    Engine engine;
    GroupCommitJournal sink;
    ASSERT_TRUE(sink.Open(journal_path).ok());
    engine.set_commit_sink(&sink);
    Session session = engine.OpenSession();
    ASSERT_TRUE(session.Execute(kSchema).ok());
    ASSERT_TRUE(session
                    .Execute("trigger boost on create of emp do "
                             "update $self set v = 42")
                    .ok());
    ASSERT_TRUE(
        session.Execute("constraint positive on emp always x.v > 0").ok());

    Status checkpointed = engine.WithExclusive(
        [&](Database& live, ActiveDatabase& active) {
          return sink.WithQuiesced([&](Journal& journal) {
            return RecoveryManager::Checkpoint(live, &journal, snapshot_path,
                                               nullptr,
                                               active.DefinitionStatements());
          });
        });
    ASSERT_TRUE(checkpointed.ok()) << checkpointed;
    sink.Close();
  }

  // Restart: phase API, definitions replayed through the new facade.
  RecoveryManager manager(snapshot_path, journal_path);
  RecoveryStats stats;
  Result<std::unique_ptr<Database>> db = manager.LoadSnapshot(&stats);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_EQ(manager.snapshot_definitions().size(), 2u);

  Engine engine(std::move(*db));
  Session session = engine.OpenSession();
  for (const std::string& definition : manager.snapshot_definitions()) {
    Result<std::string> out = session.Execute(definition);
    ASSERT_TRUE(out.ok()) << out.status() << " restoring: " << definition;
  }
  Status replayed = manager.ReplayJournals(
      [&](const std::string& stmt) { return session.Execute(stmt).status(); },
      &stats);
  ASSERT_TRUE(replayed.ok()) << replayed;
  EXPECT_EQ(engine.active().DefinitionStatements().size(), 2u);

  // The restored trigger actually fires...
  Result<std::string> oid = session.Execute("create emp (v: 1)");
  ASSERT_TRUE(oid.ok()) << oid.status();
  EXPECT_EQ(session.Execute("select x.v from x in emp").value(), "42");
  // ...and the restored constraint is actually evaluated: `check` passes
  // now, fails once the history violates it (constraints are checked at
  // `check` points, not per mutation).
  EXPECT_TRUE(session.Execute("check").ok());
  ASSERT_TRUE(session.Execute("tick 1").ok());
  ASSERT_TRUE(session.Execute("update " + *oid + " set v = -5").ok());
  EXPECT_FALSE(session.Execute("check").ok());
}

// ---------------------------------------------------------------------------
// Satellite (c): diagnostics isolation — each session owns a private
// DiagnosticEngine, so concurrent lint runs cannot interleave findings.

TEST(SessionTest, PerSessionDiagnosticsAreIsolated) {
  Engine engine;
  Session noisy = engine.OpenSession();
  Session quiet = engine.OpenSession();
  ASSERT_TRUE(noisy.Execute(kSchema).ok());

  noisy.set_lint_enabled(true);
  quiet.set_lint_enabled(true);
  ASSERT_TRUE(noisy.Execute("select 1 from x in emp").ok());  // TC101
  ASSERT_TRUE(quiet.Execute("select x.v from x in emp").ok());

  ASSERT_EQ(noisy.diags().diagnostics().size(), 1u);
  EXPECT_EQ(noisy.diags().diagnostics()[0].code, "TC101");
  EXPECT_TRUE(quiet.diags().diagnostics().empty());
}

// ---------------------------------------------------------------------------
// Optimistic multi-writer commits: OptimisticTransaction validation at
// the VersionedDatabase layer, then the engine-level conflict matrix the
// TSan job exercises.

// Primes a VersionedDatabase: executes `script` against the tip and
// publishes the result as the base version.
void Prime(VersionedDatabase* vdb, const std::string& script) {
  Interpreter interp(&vdb->writer_db());
  Result<std::string> out = interp.ExecuteScript(script);
  ASSERT_TRUE(out.ok()) << out.status();
  vdb->PublishWriterState();
}

TEST(OptimisticTxnTest, DisjointWritersBothCommitWithoutConflict) {
  VersionedDatabase vdb;
  Prime(&vdb,
      "define class emp attributes v: integer end\n"
      "create emp (v: 1)\n"
      "create emp (v: 2)");

  OptimisticTransaction t1 = vdb.BeginTransaction();
  OptimisticTransaction t2 = vdb.BeginTransaction();
  ASSERT_TRUE(Interpreter(&t1.db()).Execute("update i1 set v = 10").ok());
  ASSERT_TRUE(Interpreter(&t2.db()).Execute("update i2 set v = 20").ok());

  Result<uint64_t> c1 = vdb.CommitTransaction(&t1);
  ASSERT_TRUE(c1.ok()) << c1.status();
  // t2's base predates t1's commit, but the footprints are disjoint
  // slots: validation admits it.
  Result<uint64_t> c2 = vdb.CommitTransaction(&t2);
  ASSERT_TRUE(c2.ok()) << c2.status();
  EXPECT_GT(*c2, *c1);
  EXPECT_EQ(vdb.conflict_count(), 0u);
  EXPECT_FALSE(t1.valid());  // consumed by the successful commit

  // Both writes landed in the published tip.
  ReadSnapshot snap = vdb.OpenSnapshot();
  Interpreter reader(const_cast<Database*>(&snap.db()));
  EXPECT_EQ(reader.Execute("select x.v from x in emp").value(), "10\n20");
}

TEST(OptimisticTxnTest, SameSlotSecondCommitterAborts) {
  VersionedDatabase vdb;
  Prime(&vdb,
      "define class emp attributes v: integer end\n"
      "create emp (v: 1)");

  OptimisticTransaction t1 = vdb.BeginTransaction();
  OptimisticTransaction t2 = vdb.BeginTransaction();
  ASSERT_TRUE(Interpreter(&t1.db()).Execute("update i1 set v = 10").ok());
  ASSERT_TRUE(Interpreter(&t2.db()).Execute("update i1 set v = 20").ok());

  // First committer wins; the second aborts with the retryable Conflict.
  ASSERT_TRUE(vdb.CommitTransaction(&t1).ok());
  Result<uint64_t> lost = vdb.CommitTransaction(&t2);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), StatusCode::kConflict) << lost.status();
  EXPECT_EQ(vdb.conflict_count(), 1u);

  // The winner's value is the published one, and a retry against a
  // fresh base succeeds.
  OptimisticTransaction retry = vdb.BeginTransaction();
  ASSERT_TRUE(Interpreter(&retry.db()).Execute("update i1 set v = 20").ok());
  ASSERT_TRUE(vdb.CommitTransaction(&retry).ok());
  ReadSnapshot snap = vdb.OpenSnapshot();
  Interpreter reader(const_cast<Database*>(&snap.db()));
  EXPECT_EQ(reader.Execute("select x.v from x in emp").value(), "20");
}

TEST(OptimisticTxnTest, ConcurrentOidAllocatorsConflict) {
  VersionedDatabase vdb;
  Prime(&vdb,
      "define class emp attributes v: integer end");

  OptimisticTransaction t1 = vdb.BeginTransaction();
  OptimisticTransaction t2 = vdb.BeginTransaction();
  ASSERT_TRUE(Interpreter(&t1.db()).Execute("create emp (v: 1)").ok());
  ASSERT_TRUE(Interpreter(&t2.db()).Execute("create emp (v: 2)").ok());

  // Both allocated the same oid from the same base: replaying the
  // journal in commit order must re-derive the same oids, so the second
  // allocator aborts rather than silently colliding.
  ASSERT_TRUE(vdb.CommitTransaction(&t1).ok());
  Result<uint64_t> lost = vdb.CommitTransaction(&t2);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), StatusCode::kConflict) << lost.status();
}

TEST(OptimisticTxnTest, CommittedClockAdvanceConflictsLaterValidators) {
  VersionedDatabase vdb;
  Prime(&vdb,
      "define class emp attributes v: integer end\n"
      "create emp (v: 1)");

  OptimisticTransaction ticker = vdb.BeginTransaction();
  OptimisticTransaction writer = vdb.BeginTransaction();
  ASSERT_TRUE(Interpreter(&ticker.db()).Execute("tick 1").ok());
  ASSERT_TRUE(Interpreter(&writer.db()).Execute("update i1 set v = 9").ok());

  // The writer computed its assertion against the pre-tick `now`;
  // once the tick commits, that computation is stale.
  ASSERT_TRUE(vdb.CommitTransaction(&ticker).ok());
  Result<uint64_t> lost = vdb.CommitTransaction(&writer);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), StatusCode::kConflict) << lost.status();
}

TEST(OptimisticTxnTest, ReferentialIntegrityRecheckAtCommit) {
  // Definition 5.6: even when the slot footprints are disjoint, a delete
  // must abort if a concurrently committed writer made some other object
  // reference the deleted one.
  VersionedDatabase vdb;
  Prime(&vdb,
      "define class emp attributes v: integer, boss: emp end\n"
      "create emp (v: 1)\n"
      "create emp (v: 2)");

  OptimisticTransaction deleter = vdb.BeginTransaction();
  OptimisticTransaction linker = vdb.BeginTransaction();
  // Locally valid: nothing references i2 at the deleter's base.
  ASSERT_TRUE(Interpreter(&deleter.db()).Execute("delete i2").ok());
  // Disjoint slot: touches only i1.
  ASSERT_TRUE(Interpreter(&linker.db()).Execute("update i1 set boss = i2").ok());

  ASSERT_TRUE(vdb.CommitTransaction(&linker).ok());
  Result<uint64_t> lost = vdb.CommitTransaction(&deleter);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), StatusCode::kConflict) << lost.status();
  EXPECT_NE(lost.status().message().find("5.6"), std::string::npos)
      << lost.status();

  // And the other direction: the deleter commits first, the linker's
  // reference into the now-dead object aborts.
  VersionedDatabase vdb2;
  Prime(&vdb2,
      "define class emp attributes v: integer, boss: emp end\n"
      "create emp (v: 1)\n"
      "create emp (v: 2)");
  OptimisticTransaction deleter2 = vdb2.BeginTransaction();
  OptimisticTransaction linker2 = vdb2.BeginTransaction();
  ASSERT_TRUE(Interpreter(&deleter2.db()).Execute("delete i2").ok());
  ASSERT_TRUE(
      Interpreter(&linker2.db()).Execute("update i1 set boss = i2").ok());
  ASSERT_TRUE(vdb2.CommitTransaction(&deleter2).ok());
  Result<uint64_t> lost2 = vdb2.CommitTransaction(&linker2);
  ASSERT_FALSE(lost2.ok());
  EXPECT_EQ(lost2.status().code(), StatusCode::kConflict) << lost2.status();
}

TEST(OptimisticTxnTest, ReadOnlyTransactionCommitsWithoutPublishing) {
  VersionedDatabase vdb;
  Prime(&vdb,
      "define class emp attributes v: integer end\n"
      "create emp (v: 1)");
  const uint64_t before = vdb.version();
  OptimisticTransaction txn = vdb.BeginTransaction();
  ASSERT_TRUE(
      Interpreter(&txn.db()).Execute("select x.v from x in emp").ok());
  Result<uint64_t> committed = vdb.CommitTransaction(&txn);
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(*committed, before);
  EXPECT_EQ(vdb.version(), before);  // nothing to publish
}

TEST(OptimisticTxnTest, FailedPrepareAbortsWithoutPublishing) {
  VersionedDatabase vdb;
  Prime(&vdb,
      "define class emp attributes v: integer end\n"
      "create emp (v: 1)");
  const uint64_t before = vdb.version();
  OptimisticTransaction txn = vdb.BeginTransaction();
  ASSERT_TRUE(Interpreter(&txn.db()).Execute("update i1 set v = 7").ok());
  Result<uint64_t> committed = vdb.CommitTransaction(
      &txn, [] { return Status::IoError("journal unavailable"); });
  ASSERT_FALSE(committed.ok());
  EXPECT_EQ(committed.status().code(), StatusCode::kIoError);
  EXPECT_EQ(vdb.version(), before);  // abort left no published trace
  ReadSnapshot snap = vdb.OpenSnapshot();
  Interpreter reader(const_cast<Database*>(&snap.db()));
  EXPECT_EQ(reader.Execute("select x.v from x in emp").value(), "1");
}

// ---------------------------------------------------------------------------
// Engine-level conflict matrix (the TSan targets of this PR).

TEST(ConcurrencyTest, DisjointShardWritersCommitWithoutAborts) {
  Engine engine;
  constexpr int kThreads = 4;
  {
    Session setup = engine.OpenSession();
    ASSERT_TRUE(setup.Execute(kSchema).ok());
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_TRUE(setup.Execute("create emp (v: 0)").ok());
    }
  }
  constexpr int kPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&engine, &failures, t] {
      Session session = engine.OpenSession();
      const std::string target = "i" + std::to_string(t + 1);
      for (int i = 1; i <= kPerThread; ++i) {
        if (!session
                 .Execute("update " + target + " set v = " +
                          std::to_string(i))
                 .ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_EQ(failures.load(), 0);
  // Disjoint objects, no clock movement, no oid allocation: every
  // optimistic commit validates on the first attempt.
  EXPECT_EQ(engine.conflict_count(), 0u);
  EXPECT_EQ(engine.version(),
            static_cast<uint64_t>(1 + kThreads + kThreads * kPerThread));
  Session check = engine.OpenSession();
  EXPECT_EQ(check.Execute("select x.v from x in emp").value(),
            "50\n50\n50\n50");
}

TEST(ConcurrencyTest, SameSlotWritersSerializeToOneWinnerPerRound) {
  Engine engine;
  {
    Session setup = engine.OpenSession();
    ASSERT_TRUE(setup.Execute(kSchema).ok());
    ASSERT_TRUE(setup.Execute("create emp (v: 0)").ok());
  }
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&engine, &failures, t] {
      Session session = engine.OpenSession();
      for (int i = 0; i < kPerThread; ++i) {
        if (!session
                 .Execute("update i1 set v = " +
                          std::to_string(t * kPerThread + i))
                 .ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  // Statement-level retry (bounded, then the exclusive fallback) makes
  // every writer succeed eventually even though each commit round has
  // exactly one validation winner.
  ASSERT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.version(),
            static_cast<uint64_t>(2 + kThreads * kPerThread));
  Session check = engine.OpenSession();
  Result<std::string> v = check.Execute("select x.v from x in emp");
  ASSERT_TRUE(v.ok());
  // The final value is the last committed update — some thread's write,
  // in range by construction.
  EXPECT_GE(std::stoi(*v), 0);
  EXPECT_LT(std::stoi(*v), kThreads * kPerThread);
}

TEST(ConcurrencyTest, AbortedThenRetriedWritersPreserveReplayEquality) {
  // A mixed contended workload (shared-slot updates + allocations) over
  // a real group-commit journal: after every writer finishes, replaying
  // the journal must reproduce the engine's in-memory state bit-for-bit
  // even though many statements lost a validation round and retried.
  std::string dir = FreshDir("occ_replay");
  const std::string journal_path = dir + "/journal.tchl";

  Engine engine;
  {
    Session setup = engine.OpenSession();
    ASSERT_TRUE(setup.Execute(kSchema).ok());
    ASSERT_TRUE(setup.Execute("create emp (v: 0)").ok());
  }
  GroupCommitJournal sink;
  ASSERT_TRUE(sink.Open(journal_path).ok());
  engine.set_commit_sink(&sink);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&engine, &failures, t] {
      Session session = engine.OpenSession();
      for (int i = 0; i < kPerThread; ++i) {
        // Alternate a contended update with a contended allocation.
        const std::string stmt =
            (i % 2 == 0) ? "update i1 set v = " + std::to_string(t * 100 + i)
                         : "create emp (v: " + std::to_string(t) + ")";
        if (!session.Execute(stmt).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_EQ(sink.durable(), static_cast<uint64_t>(kThreads * kPerThread));
  sink.Close();

  Result<JournalScan> scan = ScanJournal(journal_path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_TRUE(scan->tail_error.ok());
  ASSERT_EQ(scan->statements.size(),
            static_cast<size_t>(kThreads * kPerThread));
  Database replayed;
  Interpreter interp(&replayed);
  ASSERT_TRUE(interp.Execute(kSchema).ok());
  ASSERT_TRUE(interp.Execute("create emp (v: 0)").ok());
  for (const std::string& stmt : scan->statements) {
    Result<std::string> out = interp.Execute(stmt);
    ASSERT_TRUE(out.ok()) << out.status() << " replaying: " << stmt;
  }
  EXPECT_EQ(SaveDatabaseToString(replayed).value(),
            SaveDatabaseToString(engine.writer_db()).value());
}

// ---------------------------------------------------------------------------
// Satellite regression: Close() with a backlog that can never flush must
// release every waiter with a non-OK status — before this PR a ticket
// whose batch never got a leader could block in Await forever.

TEST(GroupCommitTest, CloseWithUnflushedBacklogReleasesEveryWaiterNonOk) {
  std::string dir = FreshDir("close_backlog");
  FaultInjectionFileSystem ffs(FileSystem::Default());
  JournalOptions jopts;
  jopts.fs = &ffs;
  GroupCommitJournal sink;
  ASSERT_TRUE(sink.Open(dir + "/journal.tchl", jopts).ok());

  // Admit a backlog, then make the disk reject everything: the backlog
  // can never become durable.
  std::vector<CommitSink::Ticket> tickets;
  for (int i = 0; i < 3; ++i) tickets.push_back(sink.Enqueue("tick 1"));
  for (const CommitSink::Ticket& t : tickets) ASSERT_GT(t.seq, 0u);
  FaultPlan plan;
  plan.mode = FaultPlan::Mode::kFailOp;
  plan.at_op = 0;
  ffs.SetPlan(plan);

  // No waiter ever led a batch for these tickets; Close's drain must
  // absorb the failure and leave a sticky status behind.
  sink.Close();
  ffs.ClearPlan();

  for (const CommitSink::Ticket& t : tickets) {
    Status released = sink.Await(t);  // must return, not block
    EXPECT_FALSE(released.ok()) << released;
  }
  EXPECT_LT(sink.durable(), sink.enqueued());

  // Waiters already parked in Await when the failure hits are released
  // too (each non-OK): run the same shape with threads blocked before
  // Close.
  std::string dir2 = FreshDir("close_backlog_threads");
  GroupCommitJournal sink2;
  ASSERT_TRUE(sink2.Open(dir2 + "/journal.tchl", jopts).ok());
  ffs.SetPlan(plan);
  constexpr int kWaiters = 4;
  std::vector<CommitSink::Ticket> tickets2;
  for (int i = 0; i < kWaiters; ++i) tickets2.push_back(sink2.Enqueue("tick 1"));
  std::atomic<int> released_non_ok{0};
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&sink2, &tickets2, &released_non_ok, i] {
      if (!sink2.Await(tickets2[i]).ok()) {
        released_non_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  sink2.Close();
  for (std::thread& t : waiters) t.join();  // termination IS the assertion
  ffs.ClearPlan();
  EXPECT_EQ(released_non_ok.load(), kWaiters);
}

// ---------------------------------------------------------------------------
// Temporal secondary indexes under optimistic concurrency. Index entries
// ride the same per-shard COW protocol as objects, and postings are a
// pure function of single-object state — so two writers touching
// *different* oids of the SAME index shard must both commit and leave
// the index exactly as a from-scratch rebuild would, while same-oid
// writers keep first-committer-wins.

// Rebuilds the database's indexes from scratch by round-tripping through
// the serializer (v4 snapshots persist definitions only; restore rebuilds
// the data from the objects) and dumps them.
std::string RebuiltIndexDump(const Database& db) {
  Result<std::string> text = SaveDatabaseToString(db);
  EXPECT_TRUE(text.ok()) << text.status();
  if (!text.ok()) return "<save failed>";
  Result<std::unique_ptr<Database>> loaded = LoadDatabaseFromString(*text);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  if (!loaded.ok()) return "<load failed>";
  return (*loaded)->DebugDumpIndexes();
}

TEST(OptimisticTxnTest, SameIndexShardDisjointOidsBothCommit) {
  VersionedDatabase vdb;
  // 65 objects so i1 and i65 share an object shard (65 % 64 == 1) and
  // therefore the same index shard.
  std::string script = "define class emp attributes v: integer end";
  for (int i = 1; i <= 65; ++i) {
    script += "\ncreate emp (v: " + std::to_string(i) + ")";
  }
  script += "\ncreate index ev on emp (v)";
  Prime(&vdb, script);

  OptimisticTransaction t1 = vdb.BeginTransaction();
  OptimisticTransaction t2 = vdb.BeginTransaction();
  ASSERT_TRUE(Interpreter(&t1.db()).Execute("update i1 set v = 1001").ok());
  ASSERT_TRUE(Interpreter(&t2.db()).Execute("update i65 set v = 1065").ok());
  ASSERT_TRUE(vdb.CommitTransaction(&t1).ok());
  // Same index shard, disjoint oids: adoption re-derives i65's postings
  // on the tip, so t1's index write is not lost and t2 still commits.
  Result<uint64_t> c2 = vdb.CommitTransaction(&t2);
  ASSERT_TRUE(c2.ok()) << c2.status();

  ReadSnapshot snap = vdb.OpenSnapshot();
  const Database& db = snap.db();
  std::vector<Oid> hit =
      db.IndexProbe("ev", ProbeOp::kEq, Value::Integer(1001), db.now());
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].id, 1u);
  hit = db.IndexProbe("ev", ProbeOp::kEq, Value::Integer(1065), db.now());
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].id, 65u);
  // The merged index state is bit-identical to a from-scratch rebuild.
  EXPECT_EQ(db.DebugDumpIndexes(), RebuiltIndexDump(db));
}

TEST(OptimisticTxnTest, SameOidIndexWriteKeepsFirstCommitterWins) {
  VersionedDatabase vdb;
  Prime(&vdb,
      "define class emp attributes v: integer end\n"
      "create emp (v: 1)\n"
      "create index ev on emp (v)");

  OptimisticTransaction t1 = vdb.BeginTransaction();
  OptimisticTransaction t2 = vdb.BeginTransaction();
  ASSERT_TRUE(Interpreter(&t1.db()).Execute("update i1 set v = 10").ok());
  ASSERT_TRUE(Interpreter(&t2.db()).Execute("update i1 set v = 20").ok());
  ASSERT_TRUE(vdb.CommitTransaction(&t1).ok());
  // The losing index write must abort with the retryable Conflict — a
  // silent merge would leave a posting for a value no object holds.
  Result<uint64_t> lost = vdb.CommitTransaction(&t2);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), StatusCode::kConflict) << lost.status();

  ReadSnapshot snap = vdb.OpenSnapshot();
  const Database& db = snap.db();
  EXPECT_EQ(
      db.IndexProbe("ev", ProbeOp::kEq, Value::Integer(10), db.now()).size(),
      1u);
  EXPECT_TRUE(
      db.IndexProbe("ev", ProbeOp::kEq, Value::Integer(20), db.now())
          .empty());
  EXPECT_EQ(db.DebugDumpIndexes(), RebuiltIndexDump(db));
}

TEST(ConcurrencyTest, IndexedWritersReplayToIdenticalIndexState) {
  // A contended indexed workload over a real group-commit journal —
  // including an index DDL issued mid-run (it must journal like any
  // mutation and serialize against concurrent commits). Afterwards the
  // journal replays to the engine's exact state, and the live index is
  // bit-identical to a from-scratch rebuild.
  std::string dir = FreshDir("indexed_replay");
  const std::string journal_path = dir + "/journal.tchl";

  const std::vector<std::string> setup = {
      kSchema, "create index ev on emp (v)", "create emp (v: 0)",
      "create emp (v: 0)", "create emp (v: 0)", "create emp (v: 0)"};
  Engine engine;
  {
    Session s = engine.OpenSession();
    for (const std::string& stmt : setup) {
      ASSERT_TRUE(s.Execute(stmt).ok()) << stmt;
    }
  }
  GroupCommitJournal sink;
  ASSERT_TRUE(sink.Open(journal_path).ok());
  engine.set_commit_sink(&sink);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&engine, &failures, t] {
      Session session = engine.OpenSession();
      const std::string own = "i" + std::to_string(t + 1);
      for (int i = 0; i < kPerThread; ++i) {
        // Alternate an uncontended indexed update with a contended one.
        const std::string stmt =
            (i % 2 == 0)
                ? "update " + own + " set v = " + std::to_string(t * 100 + i)
                : "update i1 set v = " + std::to_string(1000 + t * 100 + i);
        if (!session.Execute(stmt).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  writers.emplace_back([&engine, &failures] {
    // Index DDL mid-run: takes the exclusive write path and journals.
    Session session = engine.OpenSession();
    if (!session.Execute("create index ev2 on emp lifespan").ok()) {
      failures.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::thread& t : writers) t.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_EQ(sink.durable(),
            static_cast<uint64_t>(kThreads * kPerThread + 1));
  sink.Close();

  // Journal order == commit order: replay reproduces objects AND index
  // state (definitions and rebuilt-vs-incremental data agree exactly).
  Result<JournalScan> scan = ScanJournal(journal_path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_TRUE(scan->tail_error.ok());
  Database replayed;
  Interpreter interp(&replayed);
  for (const std::string& stmt : setup) {
    ASSERT_TRUE(interp.Execute(stmt).ok()) << stmt;
  }
  for (const std::string& stmt : scan->statements) {
    Result<std::string> out = interp.Execute(stmt);
    ASSERT_TRUE(out.ok()) << out.status() << " replaying: " << stmt;
  }
  EXPECT_EQ(SaveDatabaseToString(replayed).value(),
            SaveDatabaseToString(engine.writer_db()).value());
  EXPECT_EQ(replayed.DebugDumpIndexes(),
            engine.writer_db().DebugDumpIndexes());
  EXPECT_EQ(engine.writer_db().DebugDumpIndexes(),
            RebuiltIndexDump(engine.writer_db()));
}

// The flow-sensitive linter (TC202) statically predicts which statement
// pairs carry intersecting write footprints. This test holds the
// prediction against the real engine: the pair the linter flags aborts
// with the retryable Conflict when issued from concurrent optimistic
// transactions, and the pair it leaves clean commits on both sides.
TEST(OptimisticTxnTest, Tc202PredictionMatchesEngineConflicts) {
  const std::string kSchema =
      "define class emp attributes v: integer end\n"
      "create emp (v: 1)\n"
      "create emp (v: 2)";
  const std::string kWriteA = "update i1 set v = 10";
  const std::string kWriteSameOid = "update i1 set v = 20";
  const std::string kWriteOtherOid = "update i2 set v = 20";

  auto count_tc202 = [](const std::string& script) {
    DiagnosticEngine diags;
    LintTqlScript(script, LintOptions{}, &diags);
    size_t n = 0;
    for (const Diagnostic& d : diags.diagnostics()) {
      if (d.code == "TC202") ++n;
    }
    return n;
  };
  const std::string kLintSchema =
      "define class emp attributes v: integer end;"
      "create emp (v: 1);"
      "create emp (v: 2);";
  ASSERT_EQ(count_tc202(kLintSchema + kWriteA + ";" + kWriteSameOid), 1u);
  ASSERT_EQ(count_tc202(kLintSchema + kWriteA + ";" + kWriteOtherOid), 0u);

  // Predicted conflict: the second committer must abort.
  {
    VersionedDatabase vdb;
    Prime(&vdb, kSchema);
    OptimisticTransaction t1 = vdb.BeginTransaction();
    OptimisticTransaction t2 = vdb.BeginTransaction();
    ASSERT_TRUE(Interpreter(&t1.db()).Execute(kWriteA).ok());
    ASSERT_TRUE(Interpreter(&t2.db()).Execute(kWriteSameOid).ok());
    ASSERT_TRUE(vdb.CommitTransaction(&t1).ok());
    Result<uint64_t> lost = vdb.CommitTransaction(&t2);
    ASSERT_FALSE(lost.ok());
    EXPECT_EQ(lost.status().code(), StatusCode::kConflict) << lost.status();
    EXPECT_EQ(vdb.conflict_count(), 1u);
  }

  // No prediction: both commits must land.
  {
    VersionedDatabase vdb;
    Prime(&vdb, kSchema);
    OptimisticTransaction t1 = vdb.BeginTransaction();
    OptimisticTransaction t2 = vdb.BeginTransaction();
    ASSERT_TRUE(Interpreter(&t1.db()).Execute(kWriteA).ok());
    ASSERT_TRUE(Interpreter(&t2.db()).Execute(kWriteOtherOid).ok());
    ASSERT_TRUE(vdb.CommitTransaction(&t1).ok());
    Result<uint64_t> won = vdb.CommitTransaction(&t2);
    ASSERT_TRUE(won.ok()) << won.status();
    EXPECT_EQ(vdb.conflict_count(), 0u);
  }
}

}  // namespace
}  // namespace tchimera
