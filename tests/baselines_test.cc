// Tests for the Table 1 / Table 2 baseline stores: all temporal stores
// must agree on every read, the non-temporal store must refuse the past,
// and the storage accounting must reflect the designs' asymptotics.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/attribute_store.h"
#include "baselines/dense_temporal_value.h"
#include "baselines/object_version_store.h"
#include "baselines/snapshot_store.h"
#include "baselines/triple_store.h"
#include "workload/generator.h"

namespace tchimera {
namespace {

Value I(int64_t v) { return Value::Integer(v); }

TEST(BaselinesTest, DescriptorsMatchTableRows) {
  AttributeTimestampStore attr;
  ObjectVersionStore object;
  TripleStore triple;
  SnapshotStore snap;
  EXPECT_EQ(attr.Describe().what_is_timestamped, "attributes");
  EXPECT_EQ(attr.Describe().temporal_attribute_values, "functions");
  EXPECT_TRUE(attr.Describe().class_features);
  EXPECT_TRUE(attr.Describe().histories_of_object_types);
  EXPECT_EQ(object.Describe().what_is_timestamped, "objects");
  EXPECT_EQ(triple.Describe().temporal_attribute_values, "sets of triples");
  EXPECT_EQ(snap.Describe().what_is_timestamped, "nothing");
}

class TemporalStoreAgreementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stores_.emplace_back(new AttributeTimestampStore());
    stores_.emplace_back(new ObjectVersionStore());
    stores_.emplace_back(new TripleStore());
    for (auto& store : stores_) {
      id_.push_back(store->CreateObject(
          {{"a", I(1)}, {"b", Value::String("x")}}, 1));
      ASSERT_TRUE(store->UpdateAttribute(id_.back(), "a", I(2), 10).ok());
      ASSERT_TRUE(
          store->UpdateAttribute(id_.back(), "b", Value::String("y"), 15)
              .ok());
      ASSERT_TRUE(store->UpdateAttribute(id_.back(), "a", I(3), 20).ok());
    }
  }

  std::vector<std::unique_ptr<TemporalStore>> stores_;
  std::vector<uint64_t> id_;
};

TEST_F(TemporalStoreAgreementTest, ReadsAgreeAcrossDesigns) {
  struct Probe {
    const char* attr;
    TimePoint t;
    Value expected;
  };
  const Probe probes[] = {
      {"a", 1, I(1)},     {"a", 9, I(1)},  {"a", 10, I(2)},
      {"a", 19, I(2)},    {"a", 20, I(3)}, {"a", 1000, I(3)},
      {"b", 14, Value::String("x")},       {"b", 15, Value::String("y")},
  };
  for (size_t s = 0; s < stores_.size(); ++s) {
    for (const Probe& p : probes) {
      Result<Value> got = stores_[s]->ReadAttribute(id_[s], p.attr, p.t);
      ASSERT_TRUE(got.ok()) << s;
      EXPECT_EQ(*got, p.expected)
          << stores_[s]->Describe().model_name << " " << p.attr << "@"
          << p.t;
    }
  }
}

TEST_F(TemporalStoreAgreementTest, SnapshotsAgreeAcrossDesigns) {
  for (TimePoint t : {1, 12, 17, 25}) {
    Value reference =
        stores_[0]->SnapshotObject(id_[0], t).value();
    for (size_t s = 1; s < stores_.size(); ++s) {
      EXPECT_EQ(stores_[s]->SnapshotObject(id_[s], t).value(), reference)
          << stores_[s]->Describe().model_name << " @" << t;
    }
  }
}

TEST_F(TemporalStoreAgreementTest, HistoriesAgreeAfterCoalescing) {
  auto reference = stores_[0]->History(id_[0], "a").value();
  for (size_t s = 1; s < stores_.size(); ++s) {
    auto got = stores_[s]->History(id_[s], "a").value();
    ASSERT_EQ(got.size(), reference.size())
        << stores_[s]->Describe().model_name;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].first, reference[i].first);
      EXPECT_EQ(got[i].second, reference[i].second);
    }
  }
}

TEST_F(TemporalStoreAgreementTest, OnlyAttributeStoreSupportsRetroactiveUpdates) {
  // The attribute-level design splices retroactive valid-time updates;
  // whole-object versions and interval triples cannot (a design cost the
  // T2a benchmark reports).
  EXPECT_TRUE(stores_[0]->UpdateAttribute(id_[0], "b",
                                          Value::String("z"), 12)
                  .ok());
  EXPECT_EQ(stores_[0]->ReadAttribute(id_[0], "b", 13).value(),
            Value::String("z"));
  for (size_t s = 1; s < stores_.size(); ++s) {
    Status st = stores_[s]->UpdateAttribute(id_[s], "b",
                                            Value::String("z"), 12);
    EXPECT_FALSE(st.ok()) << stores_[s]->Describe().model_name;
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  }
}

TEST(SnapshotStoreTest, RefusesThePast) {
  SnapshotStore store;
  uint64_t id = store.CreateObject({{"a", I(1)}}, 1);
  ASSERT_TRUE(store.UpdateAttribute(id, "a", I(2), 10).ok());
  EXPECT_EQ(store.ReadAttribute(id, "a", 10).value(), I(2));
  Result<Value> past = store.ReadAttribute(id, "a", 5);
  EXPECT_FALSE(past.ok());
  EXPECT_EQ(past.status().code(), StatusCode::kTemporalError);
  EXPECT_FALSE(store.SnapshotObject(id, 5).ok());
  EXPECT_FALSE(store.History(id, "a").ok());
}

TEST(BaselinesTest, StorageAsymptotics) {
  // One object, many attributes, updates hitting a single attribute:
  // object-level versioning copies the whole record per update while
  // attribute-level stores grow by one segment.
  StoreWorkloadConfig config;
  config.objects = 10;
  config.attributes = 12;
  config.updates_per_object = 40;
  config.hot_fraction = 1.0;  // all updates on a0
  std::vector<StoreOp> ops = GenerateStoreOps(config);

  AttributeTimestampStore attr;
  ObjectVersionStore object;
  TripleStore triple;
  SnapshotStore snap;
  std::vector<TemporalStore*> all = {&attr, &object, &triple, &snap};
  for (TemporalStore* s : all) {
    ASSERT_TRUE(ApplyStoreOps(s, ops).ok());
  }
  // Snapshot keeps only current state: smallest by far.
  EXPECT_LT(snap.ApproxBytes(), attr.ApproxBytes());
  // Whole-state copies dominate attribute-level histories when updates
  // are narrow.
  EXPECT_GT(object.ApproxBytes(), 2 * attr.ApproxBytes());
  // The triple store pays per-change framing but not whole-state copies.
  EXPECT_LT(triple.ApproxBytes(), object.ApproxBytes());
}

TEST(BaselinesTest, UnknownIdsAreErrors) {
  AttributeTimestampStore attr;
  ObjectVersionStore object;
  TripleStore triple;
  SnapshotStore snap;
  std::vector<TemporalStore*> all = {&attr, &object, &triple, &snap};
  for (TemporalStore* s : all) {
    EXPECT_FALSE(s->UpdateAttribute(999, "a", I(1), 1).ok());
    EXPECT_FALSE(s->ReadAttribute(999, "a", 1).ok());
    EXPECT_FALSE(s->SnapshotObject(999, 1).ok());
  }
}

TEST(BaselinesTest, StaticAttributesInAttributeStore) {
  // The T2b experiment's mechanism: attributes declared non-temporal keep
  // only the current value (the paper's third attribute kind).
  AttributeTimestampStore store({"s"});
  uint64_t id = store.CreateObject({{"a", I(1)}, {"s", I(10)}}, 1);
  ASSERT_TRUE(store.UpdateAttribute(id, "s", I(20), 10).ok());
  ASSERT_TRUE(store.UpdateAttribute(id, "a", I(2), 10).ok());
  // The static attribute reads the same regardless of the instant...
  EXPECT_EQ(store.ReadAttribute(id, "s", 5).value(), I(20));
  // ...and has no history.
  EXPECT_FALSE(store.History(id, "s").ok());
  EXPECT_EQ(store.History(id, "a").value().size(), 2u);
}

TEST(DenseTemporalValueTest, MatchesCoalescedRepresentation) {
  TemporalFunction f;
  ASSERT_TRUE(f.Define(Interval(0, 9), I(1)).ok());
  ASSERT_TRUE(f.Define(Interval(10, 29), I(2)).ok());
  DenseTemporalValue dense = DenseTemporalValue::FromFunction(f, 29);
  EXPECT_EQ(dense.instant_count(), 30u);
  for (TimePoint t = 0; t <= 29; ++t) {
    ASSERT_NE(dense.At(t), nullptr);
    EXPECT_EQ(*dense.At(t), *f.At(t)) << t;
  }
  EXPECT_EQ(dense.At(30), nullptr);
  // Coalescing inverts the expansion.
  EXPECT_EQ(dense.Coalesced(), f);
  // The dense form pays per-instant storage: the crux of T2a-rep.
  EXPECT_GT(dense.ApproxBytes(), f.ApproxBytes() * 5);
}

TEST(DenseTemporalValueTest, DefineRange) {
  DenseTemporalValue dense;
  dense.DefineRange(5, 9, I(1));
  dense.DefineRange(8, 12, I(2));
  EXPECT_EQ(dense.At(4), nullptr);
  EXPECT_EQ(*dense.At(7), I(1));
  EXPECT_EQ(*dense.At(8), I(2));
  EXPECT_EQ(*dense.At(12), I(2));
  EXPECT_EQ(dense.Coalesced().ToString(), "{<[5,7],1>,<[8,12],2>}");
}

}  // namespace
}  // namespace tchimera
