// Tests for persistence: snapshot round-trips, journal replay (the
// checkpoint+log scheme), and corruption detection.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"
#include "core/db/consistency.h"
#include "core/db/equality.h"
#include "storage/deserializer.h"
#include "storage/journal.h"
#include "storage/recovery.h"
#include "storage/serializer.h"
#include "workload/generator.h"

namespace tchimera {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("tchimera_test_") + name))
      .string();
}

void Populate(Database* db, uint64_t seed = 7) {
  PopulationConfig config;
  config.seed = seed;
  config.persons = 15;
  config.projects = 4;
  config.timesteps = 12;
  config.updates_per_step = 6;
  config.migration_rate = 0.3;
  Result<Population> pop = PopulateDatabase(db, config);
  ASSERT_TRUE(pop.ok()) << pop.status();
}

TEST(SerializerTest, SnapshotRoundTripsExactly) {
  Database db;
  Populate(&db);
  Result<std::string> text = SaveDatabaseToString(db);
  ASSERT_TRUE(text.ok()) << text.status();

  Result<std::unique_ptr<Database>> loaded =
      LoadDatabaseFromString(*text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // Fixed point: serializing the loaded database reproduces the bytes.
  Result<std::string> again = SaveDatabaseToString(**loaded);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *text);

  // Semantics preserved: clock, population, schema, per-object state.
  EXPECT_EQ((*loaded)->now(), db.now());
  EXPECT_EQ((*loaded)->object_count(), db.object_count());
  EXPECT_EQ((*loaded)->class_count(), db.class_count());
  EXPECT_EQ((*loaded)->next_oid(), db.next_oid());
  for (Oid oid : db.AllOids()) {
    const Object* original = db.GetObject(oid);
    const Object* restored = (*loaded)->GetObject(oid);
    ASSERT_NE(restored, nullptr) << oid.ToString();
    EXPECT_TRUE(EqualByValue(*original, *restored)) << oid.ToString();
    EXPECT_EQ(original->lifespan(), restored->lifespan());
    EXPECT_EQ(original->class_history(), restored->class_history());
  }
  // The restored database passes the full consistency check.
  Status s = CheckDatabaseConsistency(**loaded);
  EXPECT_TRUE(s.ok()) << s;
}

TEST(SerializerTest, FileRoundTrip) {
  Database db;
  Populate(&db, 11);
  std::string path = TempPath("snapshot.tchdb");
  ASSERT_TRUE(SaveDatabaseToFile(db, path).ok());
  Result<std::unique_ptr<Database>> loaded = LoadDatabaseFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->object_count(), db.object_count());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadDatabaseFromFile(path).ok());
}

TEST(SerializerTest, OperationsContinueAfterRestore) {
  Database db;
  Populate(&db, 13);
  Result<std::string> text = SaveDatabaseToString(db);
  ASSERT_TRUE(text.ok());
  auto loaded = LoadDatabaseFromString(*text).value();
  // The restored database accepts new work: ticks, creates, updates,
  // migrations — and stays consistent.
  loaded->Tick();
  Result<Oid> fresh = loaded->CreateObject("employee");
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_GT(fresh->id, 0u);
  ASSERT_TRUE(loaded
                  ->UpdateAttribute(*fresh, "salary",
                                    Value::Integer(123))
                  .ok());
  Status s = CheckDatabaseConsistency(*loaded);
  EXPECT_TRUE(s.ok()) << s;
}

TEST(DeserializerTest, DetectsCorruption) {
  Database db;
  Populate(&db, 17);
  std::string text = SaveDatabaseToString(db).value();
  // Bad header.
  EXPECT_FALSE(LoadDatabaseFromString("GARBAGE\n").ok());
  // Truncated snapshot (cut in half).
  std::string truncated = text.substr(0, text.size() / 2);
  Result<std::unique_ptr<Database>> r = LoadDatabaseFromString(truncated);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  // A corrupted record tag.
  std::string mangled = text;
  size_t pos = mangled.find("\nOBJECT ");
  ASSERT_NE(pos, std::string::npos);
  mangled.replace(pos, 8, "\nOBJEKT ");
  EXPECT_FALSE(LoadDatabaseFromString(mangled).ok());
}

TEST(JournalTest, ReplayReproducesState) {
  std::string path = TempPath("journal.tql");
  std::remove(path.c_str());
  const char* statements[] = {
      "define class person attributes name: temporal(string), "
      "birthyear: integer end",
      "create person (name: 'Ann', birthyear: 1970)",
      "create person (name: 'Bob', birthyear: 1980)",
      "advance to 30",
      "update i1 set name = 'Anna'",
      "tick 5",
      "delete i2",
  };
  {
    JournaledDatabase jdb(path);
    ASSERT_TRUE(jdb.status().ok());
    for (const char* stmt : statements) {
      Result<std::string> r = jdb.Execute(stmt);
      ASSERT_TRUE(r.ok()) << stmt << ": " << r.status();
    }
    // Queries are not journaled.
    ASSERT_TRUE(jdb.Execute("select x from x in person").ok());
  }
  // Recovery: replay into a fresh database.
  Database recovered;
  Interpreter interp(&recovered);
  Result<size_t> applied = Journal::Replay(path, &interp);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(*applied, 7u);  // the SELECT was not journaled
  EXPECT_EQ(recovered.now(), 35);
  EXPECT_EQ(recovered.object_count(), 2u);
  EXPECT_EQ(recovered.HStateOf(Oid{1}, 30)
                .value()
                .FieldValue("name")
                ->AsString(),
            "Anna");
  EXPECT_FALSE(recovered.GetObject(Oid{2})->alive());
  EXPECT_TRUE(CheckDatabaseConsistency(recovered).ok());
  std::remove(path.c_str());
}

TEST(JournalTest, CheckpointPlusLogRecovery) {
  std::string snap_path = TempPath("ckpt.tchdb");
  std::string journal_path = TempPath("tail.tql");
  std::remove(snap_path.c_str());
  std::remove(journal_path.c_str());
  std::remove(Journal::RotatedPath(journal_path, 0).c_str());
  // Phase 1: base state, then a safe checkpoint (rotate + snapshot +
  // delete, see storage/recovery.h).
  {
    JournaledDatabase jdb(journal_path);
    ASSERT_TRUE(jdb.status().ok()) << jdb.status();
    for (const char* stmt :
         {"define class task attributes description: string, "
          "effort: temporal(integer) end",
          "create task (description: 'build', effort: 10)"}) {
      Result<std::string> r = jdb.Execute(stmt);
      ASSERT_TRUE(r.ok()) << stmt << ": " << r.status();
    }
    Status ckpt =
        RecoveryManager::Checkpoint(jdb.db(), &jdb.journal(), snap_path);
    ASSERT_TRUE(ckpt.ok()) << ckpt;
    // The rotated pre-checkpoint journal was deleted once the snapshot
    // became durable.
    EXPECT_FALSE(
        std::filesystem::exists(Journal::RotatedPath(journal_path, 0)));
    // Phase 2: more work lands in the fresh journal tail only.
    ASSERT_TRUE(jdb.Execute("tick 10").ok());
    ASSERT_TRUE(jdb.Execute("update i1 set effort = 20").ok());
  }
  // Recovery: snapshot, then the journal tail on top.
  RecoveryManager manager(snap_path, journal_path);
  RecoveryStats stats;
  Result<std::unique_ptr<Database>> recovered = manager.Recover(&stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.snapshot_epoch, 1u);
  EXPECT_EQ(stats.statements_applied, 2u);
  EXPECT_EQ((*recovered)->now(), 10);
  EXPECT_EQ((*recovered)
                ->HStateOf(Oid{1}, 10)
                .value()
                .FieldValue("effort")
                ->AsInteger(),
            20);
  EXPECT_EQ((*recovered)
                ->HStateOf(Oid{1}, 5)
                .value()
                .FieldValue("effort")
                ->AsInteger(),
            10);
  std::remove(snap_path.c_str());
  std::remove(journal_path.c_str());
}

TEST(JournalTest, ReplayPrefixBoundaries) {
  std::string path = TempPath("prefix.tql");
  std::remove(path.c_str());
  {
    Journal journal;
    ASSERT_TRUE(journal.Open(path).ok());
    ASSERT_TRUE(journal.Append("tick 1").ok());
    ASSERT_TRUE(journal.Append("tick 2").ok());
    ASSERT_TRUE(journal.Append("tick 3").ok());
  }
  auto replay_prefix = [&](size_t max) {
    Database db;
    Interpreter interp(&db);
    Result<size_t> applied = Journal::ReplayPrefix(path, &interp, max);
    EXPECT_TRUE(applied.ok()) << applied.status();
    return std::make_pair(applied.ok() ? *applied : 0, db.now());
  };
  EXPECT_EQ(replay_prefix(0), std::make_pair(size_t{0}, TimePoint{0}));
  EXPECT_EQ(replay_prefix(2), std::make_pair(size_t{2}, TimePoint{3}));
  // Exactly the journal length, and past the end: both apply everything.
  EXPECT_EQ(replay_prefix(3), std::make_pair(size_t{3}, TimePoint{6}));
  EXPECT_EQ(replay_prefix(100), std::make_pair(size_t{3}, TimePoint{6}));
  std::remove(path.c_str());
}

TEST(JournalTest, ReplaySkipsBlankLinesInV1Journals) {
  std::string path = TempPath("blank.tql");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "tick 1\n\n\ntick 2\n   \n";
  }
  Database db;
  Interpreter interp(&db);
  Result<size_t> applied = Journal::Replay(path, &interp);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(*applied, 2u);
  EXPECT_EQ(db.now(), 3);
  std::remove(path.c_str());
}

TEST(JournalTest, OperationsOnClosedJournalFail) {
  Journal never_opened;
  EXPECT_EQ(never_opened.Append("tick").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(never_opened.Truncate().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(never_opened.Sync().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(never_opened.Rotate().status().code(),
            StatusCode::kFailedPrecondition);

  std::string path = TempPath("closed.tql");
  std::remove(path.c_str());
  Journal journal;
  ASSERT_TRUE(journal.Open(path).ok());
  ASSERT_TRUE(journal.Append("tick").ok());
  journal.Close();
  EXPECT_EQ(journal.Append("tick").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(journal.Truncate().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(JournalTest, MutatingStatementMatchesWholeTokenOnly) {
  EXPECT_TRUE(IsMutatingStatement("delete i1"));
  EXPECT_TRUE(IsMutatingStatement("  Update i1 set a = 1"));
  EXPECT_TRUE(IsMutatingStatement("tick"));
  // Index DDL must journal / replicate / group-commit like any other
  // mutation — a non-mutating classification would silently drop it
  // from the durability pipeline.
  EXPECT_TRUE(IsMutatingStatement("create index iv on item (v)"));
  EXPECT_TRUE(IsMutatingStatement("  CREATE index iv on item lifespan"));
  EXPECT_TRUE(IsMutatingStatement("drop index iv"));
  // Prefix look-alikes are queries, not mutations.
  EXPECT_FALSE(IsMutatingStatement("deletion_report from x in c"));
  EXPECT_FALSE(IsMutatingStatement("ticket from x in c"));
  EXPECT_FALSE(IsMutatingStatement("updates from x in c"));
  EXPECT_FALSE(IsMutatingStatement("created from x in c"));
  EXPECT_FALSE(IsMutatingStatement(""));
  EXPECT_FALSE(IsMutatingStatement("   "));
  EXPECT_EQ(FirstTokenLower("  TRIGGER t on create do tick"), "trigger");
}

TEST(JournalTest, ReplayFailsFastOnBadStatement) {
  std::string path = TempPath("bad.tql");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "tick 1\nnot a statement\ntick 1\n";
  }
  Database db;
  Interpreter interp(&db);
  Result<size_t> r = Journal::Replay(path, &interp);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(db.now(), 1);  // the first statement applied before the stop
  std::remove(path.c_str());
}

// --- v3 snapshots: DEFINE records for trigger/constraint definitions ---

TEST(SerializerTest, V3SnapshotCarriesDefinitions) {
  Database db;
  Populate(&db, 19);
  const std::vector<std::string> defs = {
      "trigger t on create of employee do update $self set salary = 1",
      "constraint c on employee always x.salary > 0"};
  std::string text = SaveDatabaseToString(db, 4, defs).value();
  EXPECT_EQ(text.rfind("TCHIMERA-SNAPSHOT 4", 0), 0u);

  Result<SnapshotInfo> info = ProbeSnapshot(text);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, 4);
  EXPECT_EQ(info->epoch, 4u);
  EXPECT_TRUE(info->integrity.ok()) << info->integrity;

  // The full parse hands the definitions back, in order, unapplied.
  Result<LoadedSnapshot> loaded = LoadSnapshotFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->definitions, defs);
  // Fixed point: re-serializing with the same definitions reproduces the
  // bytes, so DEFINE records round-trip exactly.
  EXPECT_EQ(SaveDatabaseToString(*loaded->db, 4, defs).value(), text);

  // The plain loader accepts v3 too; it just drops the definitions.
  Result<std::unique_ptr<Database>> plain = LoadDatabaseFromString(text);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ((*plain)->object_count(), db.object_count());
}

// --- v4 snapshots: INDEX records for temporal secondary indexes ---

TEST(SerializerTest, V4SnapshotRestoresIndexDefinitionsAndRebuilds) {
  Database db;
  Populate(&db, 13);
  ASSERT_TRUE(
      db.CreateIndex({"emp_salary", IndexKind::kValue, "employee", "salary"})
          .ok());
  ASSERT_TRUE(
      db.CreateIndex({"emp_life", IndexKind::kLifespan, "employee", ""})
          .ok());

  std::string text = SaveDatabaseToString(db).value();
  // Only the definitions are serialized — data is rebuilt on restore.
  EXPECT_NE(text.find("INDEX emp_life lifespan employee -\n"),
            std::string::npos);
  EXPECT_NE(text.find("INDEX emp_salary value employee salary\n"),
            std::string::npos);
  EXPECT_EQ(text.find("postings"), std::string::npos);

  Result<std::unique_ptr<Database>> loaded = LoadDatabaseFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_NE((*loaded)->GetIndexDef("emp_salary"), nullptr);
  ASSERT_NE((*loaded)->GetIndexDef("emp_life"), nullptr);
  // The rebuilt index state is bit-identical to the source database's.
  EXPECT_EQ((*loaded)->DebugDumpIndexes(), db.DebugDumpIndexes());
  EXPECT_GT((*loaded)->IndexEntryCount("emp_salary"), 0u);
  // Fixed point: INDEX records round-trip byte-for-byte.
  EXPECT_EQ(SaveDatabaseToString(**loaded).value(), text);

  // An INDEX record with an unknown kind is corruption, not data.
  std::string bad = text;
  size_t pos = bad.find("INDEX emp_salary value");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos + 17, 5, "vecto");
  size_t chk = bad.find("CHECKSUM ");
  ASSERT_NE(chk, std::string::npos);
  std::string body = bad.substr(0, chk);
  size_t count_end = bad.find(' ', chk + 9);
  std::string records = bad.substr(chk + 9, count_end - chk - 9);
  bad = body + "CHECKSUM " + records + " " + Crc32Hex(Crc32(body)) +
        "\nEOF\n";
  Result<std::unique_ptr<Database>> rejected =
      LoadDatabaseFromString(bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kCorruption);
}

TEST(SerializerTest, NewlineInDefinitionIsRejected) {
  Database db;
  Result<std::string> r =
      SaveDatabaseToString(db, 0, {"trigger a on create of b do\ntick 1"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializerTest, V2SnapshotStillLoads) {
  Database db;
  Populate(&db, 23);
  const std::vector<std::string> defs = {
      "constraint c on employee always x.salary > 0"};
  std::string v3 = SaveDatabaseToString(db, 6, defs).value();

  // Shape the v3 text into its v2 equivalent: version 2 header, no DEFINE
  // lines, checksum recomputed over the altered body.
  std::string v2 = v3;
  size_t header_end = v2.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  v2.replace(0, header_end, "TCHIMERA-SNAPSHOT 2");
  size_t define_pos;
  while ((define_pos = v2.find("\nDEFINE ")) != std::string::npos) {
    v2.erase(define_pos + 1, v2.find('\n', define_pos + 1) - define_pos);
  }
  size_t footer_pos = v2.find("CHECKSUM ");
  ASSERT_NE(footer_pos, std::string::npos);
  std::string body = v2.substr(0, footer_pos);
  // Keep the record count (DEFINE lines never counted toward it).
  size_t count_end = v2.find(' ', footer_pos + 9);
  std::string records = v2.substr(footer_pos + 9, count_end - footer_pos - 9);
  v2 = body + "CHECKSUM " + records + " " + Crc32Hex(Crc32(body)) + "\nEOF\n";

  Result<SnapshotInfo> info = ProbeSnapshot(v2);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, 2);
  EXPECT_EQ(info->epoch, 6u);
  EXPECT_TRUE(info->integrity.ok()) << info->integrity;

  Result<LoadedSnapshot> loaded = LoadSnapshotFromString(v2);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->definitions.empty());
  EXPECT_EQ(SaveDatabaseToString(*loaded->db, 0).value(),
            SaveDatabaseToString(db, 0).value());

  // A DEFINE record in a v2 snapshot is corruption, not data: the tag was
  // introduced with v3.
  std::string bad = v3;
  bad.replace(0, bad.find('\n'), "TCHIMERA-SNAPSHOT 2");
  size_t chk = bad.find("CHECKSUM ");
  ASSERT_NE(chk, std::string::npos);
  std::string bad_body = bad.substr(0, chk);
  size_t bad_count_end = bad.find(' ', chk + 9);
  std::string bad_records = bad.substr(chk + 9, bad_count_end - chk - 9);
  bad = bad_body + "CHECKSUM " + bad_records + " " +
        Crc32Hex(Crc32(bad_body)) + "\nEOF\n";
  EXPECT_FALSE(LoadSnapshotFromString(bad).ok());
}

}  // namespace
}  // namespace tchimera
