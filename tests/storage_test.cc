// Tests for persistence: snapshot round-trips, journal replay (the
// checkpoint+log scheme), and corruption detection.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/db/consistency.h"
#include "core/db/equality.h"
#include "storage/deserializer.h"
#include "storage/journal.h"
#include "storage/serializer.h"
#include "workload/generator.h"

namespace tchimera {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("tchimera_test_") + name))
      .string();
}

void Populate(Database* db, uint64_t seed = 7) {
  PopulationConfig config;
  config.seed = seed;
  config.persons = 15;
  config.projects = 4;
  config.timesteps = 12;
  config.updates_per_step = 6;
  config.migration_rate = 0.3;
  Result<Population> pop = PopulateDatabase(db, config);
  ASSERT_TRUE(pop.ok()) << pop.status();
}

TEST(SerializerTest, SnapshotRoundTripsExactly) {
  Database db;
  Populate(&db);
  Result<std::string> text = SaveDatabaseToString(db);
  ASSERT_TRUE(text.ok()) << text.status();

  Result<std::unique_ptr<Database>> loaded =
      LoadDatabaseFromString(*text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // Fixed point: serializing the loaded database reproduces the bytes.
  Result<std::string> again = SaveDatabaseToString(**loaded);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *text);

  // Semantics preserved: clock, population, schema, per-object state.
  EXPECT_EQ((*loaded)->now(), db.now());
  EXPECT_EQ((*loaded)->object_count(), db.object_count());
  EXPECT_EQ((*loaded)->class_count(), db.class_count());
  EXPECT_EQ((*loaded)->next_oid(), db.next_oid());
  for (Oid oid : db.AllOids()) {
    const Object* original = db.GetObject(oid);
    const Object* restored = (*loaded)->GetObject(oid);
    ASSERT_NE(restored, nullptr) << oid.ToString();
    EXPECT_TRUE(EqualByValue(*original, *restored)) << oid.ToString();
    EXPECT_EQ(original->lifespan(), restored->lifespan());
    EXPECT_EQ(original->class_history(), restored->class_history());
  }
  // The restored database passes the full consistency check.
  Status s = CheckDatabaseConsistency(**loaded);
  EXPECT_TRUE(s.ok()) << s;
}

TEST(SerializerTest, FileRoundTrip) {
  Database db;
  Populate(&db, 11);
  std::string path = TempPath("snapshot.tchdb");
  ASSERT_TRUE(SaveDatabaseToFile(db, path).ok());
  Result<std::unique_ptr<Database>> loaded = LoadDatabaseFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->object_count(), db.object_count());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadDatabaseFromFile(path).ok());
}

TEST(SerializerTest, OperationsContinueAfterRestore) {
  Database db;
  Populate(&db, 13);
  Result<std::string> text = SaveDatabaseToString(db);
  ASSERT_TRUE(text.ok());
  auto loaded = LoadDatabaseFromString(*text).value();
  // The restored database accepts new work: ticks, creates, updates,
  // migrations — and stays consistent.
  loaded->Tick();
  Result<Oid> fresh = loaded->CreateObject("employee");
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_GT(fresh->id, 0u);
  ASSERT_TRUE(loaded
                  ->UpdateAttribute(*fresh, "salary",
                                    Value::Integer(123))
                  .ok());
  Status s = CheckDatabaseConsistency(*loaded);
  EXPECT_TRUE(s.ok()) << s;
}

TEST(DeserializerTest, DetectsCorruption) {
  Database db;
  Populate(&db, 17);
  std::string text = SaveDatabaseToString(db).value();
  // Bad header.
  EXPECT_FALSE(LoadDatabaseFromString("GARBAGE\n").ok());
  // Truncated snapshot (cut in half).
  std::string truncated = text.substr(0, text.size() / 2);
  Result<std::unique_ptr<Database>> r = LoadDatabaseFromString(truncated);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  // A corrupted record tag.
  std::string mangled = text;
  size_t pos = mangled.find("\nOBJECT ");
  ASSERT_NE(pos, std::string::npos);
  mangled.replace(pos, 8, "\nOBJEKT ");
  EXPECT_FALSE(LoadDatabaseFromString(mangled).ok());
}

TEST(JournalTest, ReplayReproducesState) {
  std::string path = TempPath("journal.tql");
  std::remove(path.c_str());
  const char* statements[] = {
      "define class person attributes name: temporal(string), "
      "birthyear: integer end",
      "create person (name: 'Ann', birthyear: 1970)",
      "create person (name: 'Bob', birthyear: 1980)",
      "advance to 30",
      "update i1 set name = 'Anna'",
      "tick 5",
      "delete i2",
  };
  {
    JournaledDatabase jdb(path);
    ASSERT_TRUE(jdb.status().ok());
    for (const char* stmt : statements) {
      Result<std::string> r = jdb.Execute(stmt);
      ASSERT_TRUE(r.ok()) << stmt << ": " << r.status();
    }
    // Queries are not journaled.
    ASSERT_TRUE(jdb.Execute("select x from x in person").ok());
  }
  // Recovery: replay into a fresh database.
  Database recovered;
  Interpreter interp(&recovered);
  Result<size_t> applied = Journal::Replay(path, &interp);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(*applied, 7u);  // the SELECT was not journaled
  EXPECT_EQ(recovered.now(), 35);
  EXPECT_EQ(recovered.object_count(), 2u);
  EXPECT_EQ(recovered.HStateOf(Oid{1}, 30)
                .value()
                .FieldValue("name")
                ->AsString(),
            "Anna");
  EXPECT_FALSE(recovered.GetObject(Oid{2})->alive());
  EXPECT_TRUE(CheckDatabaseConsistency(recovered).ok());
  std::remove(path.c_str());
}

TEST(JournalTest, CheckpointPlusLogRecovery) {
  std::string snap_path = TempPath("ckpt.tchdb");
  std::string journal_path = TempPath("tail.tql");
  std::remove(journal_path.c_str());
  // Phase 1: base state, checkpoint, truncate the journal.
  Database db;
  Interpreter interp(&db);
  Journal journal;
  ASSERT_TRUE(journal.Open(journal_path).ok());
  auto exec = [&](const std::string& stmt) {
    ASSERT_TRUE(journal.Append(stmt).ok());
    Result<std::string> r = interp.Execute(stmt);
    ASSERT_TRUE(r.ok()) << stmt << ": " << r.status();
  };
  exec("define class task attributes description: string, "
       "effort: temporal(integer) end");
  exec("create task (description: 'build', effort: 10)");
  ASSERT_TRUE(SaveDatabaseToFile(db, snap_path).ok());
  ASSERT_TRUE(journal.Truncate().ok());
  // Phase 2: more work lands in the journal tail only.
  exec("tick 10");
  exec("update i1 set effort = 20");
  journal.Close();
  // Recovery: load the checkpoint, replay the tail.
  auto recovered = LoadDatabaseFromFile(snap_path).value();
  Interpreter rinterp(recovered.get());
  Result<size_t> applied = Journal::Replay(journal_path, &rinterp);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(*applied, 2u);
  EXPECT_EQ(recovered->now(), 10);
  EXPECT_EQ(recovered->HStateOf(Oid{1}, 10)
                .value()
                .FieldValue("effort")
                ->AsInteger(),
            20);
  EXPECT_EQ(recovered->HStateOf(Oid{1}, 5)
                .value()
                .FieldValue("effort")
                ->AsInteger(),
            10);
  std::remove(snap_path.c_str());
  std::remove(journal_path.c_str());
}

TEST(JournalTest, ReplayFailsFastOnBadStatement) {
  std::string path = TempPath("bad.tql");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "tick 1\nnot a statement\ntick 1\n";
  }
  Database db;
  Interpreter interp(&db);
  Result<size_t> r = Journal::Replay(path, &interp);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(db.now(), 1);  // the first statement applied before the stop
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tchimera
