// Unit + property tests for TemporalFunction: construction, projection,
// splicing updates, coalescing. The property suite cross-checks a random
// sequence of Define/Erase operations against a dense per-instant map.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "core/values/temporal_function.h"

namespace tchimera {
namespace {

Value I(int64_t v) { return Value::Integer(v); }

TEST(TemporalFunctionTest, MakeSortsAndRejectsOverlap) {
  auto f = TemporalFunction::Make(
      {{Interval(11, 30), I(5)}, {Interval(5, 10), I(12)}});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->ToString(), "{<[5,10],12>,<[11,30],5>}");
  auto bad = TemporalFunction::Make(
      {{Interval(1, 10), I(1)}, {Interval(5, 20), I(2)}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTemporalError);
}

TEST(TemporalFunctionTest, MakeCoalescesEqualAdjacent) {
  auto f = TemporalFunction::Make(
      {{Interval(1, 5), I(7)}, {Interval(6, 9), I(7)}});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->segment_count(), 1u);
  EXPECT_EQ(f->ToString(), "{<[1,9],7>}");
}

TEST(TemporalFunctionTest, AtProjectsAndRespectsDomain) {
  TemporalFunction f;
  ASSERT_TRUE(f.Define(Interval(5, 10), I(12)).ok());
  ASSERT_TRUE(f.Define(Interval(11, 30), I(5)).ok());
  EXPECT_EQ(f.At(4), nullptr);
  EXPECT_EQ(*f.At(5), I(12));
  EXPECT_EQ(*f.At(10), I(12));
  EXPECT_EQ(*f.At(11), I(5));
  EXPECT_EQ(*f.At(30), I(5));
  EXPECT_EQ(f.At(31), nullptr);
}

TEST(TemporalFunctionTest, OngoingSegmentExtends) {
  TemporalFunction f;
  ASSERT_TRUE(f.AssertFrom(20, Value::String("IDEA")).ok());
  EXPECT_EQ(f.At(19), nullptr);
  EXPECT_NE(f.At(20), nullptr);
  EXPECT_NE(f.At(1'000'000), nullptr);  // ongoing = unbounded
  EXPECT_EQ(f.Domain(50).ToString(), "{[20,50]}");
  EXPECT_EQ(f.RawDomain().ToString(), "{[20,now]}");
}

TEST(TemporalFunctionTest, DefineSplicesAroundExisting) {
  TemporalFunction f;
  ASSERT_TRUE(f.AssertFrom(10, I(1)).ok());
  // Carve a window out of the middle.
  ASSERT_TRUE(f.Define(Interval(20, 29), I(2)).ok());
  EXPECT_EQ(*f.At(15), I(1));
  EXPECT_EQ(*f.At(25), I(2));
  EXPECT_EQ(*f.At(35), I(1));
  EXPECT_EQ(f.segment_count(), 3u);
}

TEST(TemporalFunctionTest, AssertFromOverwritesFuture) {
  TemporalFunction f;
  ASSERT_TRUE(f.AssertFrom(10, I(1)).ok());
  ASSERT_TRUE(f.AssertFrom(46, I(2)).ok());
  EXPECT_EQ(f.ToString(), "{<[10,45],1>,<[46,now],2>}");
}

TEST(TemporalFunctionTest, EraseRemovesDomain) {
  TemporalFunction f;
  ASSERT_TRUE(f.Define(Interval(1, 30), I(9)).ok());
  ASSERT_TRUE(f.Erase(Interval(10, 19)).ok());
  EXPECT_NE(f.At(9), nullptr);
  EXPECT_EQ(f.At(10), nullptr);
  EXPECT_EQ(f.At(19), nullptr);
  EXPECT_NE(f.At(20), nullptr);
}

TEST(TemporalFunctionTest, CloseAt) {
  TemporalFunction f;
  ASSERT_TRUE(f.AssertFrom(10, I(1)).ok());
  f.CloseAt(25);
  EXPECT_EQ(f.ToString(), "{<[10,25],1>}");
  // Closing before the start removes the segment.
  TemporalFunction g;
  ASSERT_TRUE(g.AssertFrom(10, I(1)).ok());
  g.CloseAt(5);
  EXPECT_TRUE(g.empty());
  // Closing a non-ongoing function is a no-op.
  f.CloseAt(7);
  EXPECT_EQ(f.ToString(), "{<[10,25],1>}");
}

TEST(TemporalFunctionTest, ConstantIsImmutableAttributePattern) {
  // "Immutable attributes can be regarded as a particular case of temporal
  // ones, since their value is a constant function" (Section 1.1).
  TemporalFunction f =
      TemporalFunction::Constant(Interval::FromUntilNow(0),
                                 Value::String("fixed"));
  EXPECT_EQ(f.segment_count(), 1u);
  EXPECT_EQ(f.At(0)->AsString(), "fixed");
  EXPECT_EQ(f.At(99999)->AsString(), "fixed");
}

TEST(TemporalFunctionTest, EqualityAndCompare) {
  TemporalFunction a, b;
  ASSERT_TRUE(a.Define(Interval(1, 5), I(1)).ok());
  ASSERT_TRUE(b.Define(Interval(1, 5), I(1)).ok());
  EXPECT_EQ(a, b);
  ASSERT_TRUE(b.Define(Interval(7, 9), I(2)).ok());
  EXPECT_NE(a, b);
  EXPECT_LT(TemporalFunction::Compare(a, b), 0);
  EXPECT_GT(TemporalFunction::Compare(b, a), 0);
}

// --- property suite against a dense model ------------------------------------

constexpr TimePoint kHorizon = 80;

class TemporalFunctionPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TemporalFunctionPropertyTest, RandomOpsMatchDenseModel) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<TimePoint> point(0, kHorizon);
  std::uniform_int_distribution<int> val(0, 3);
  std::uniform_int_distribution<int> op(0, 9);

  TemporalFunction f;
  std::map<TimePoint, int64_t> model;
  for (int round = 0; round < 200; ++round) {
    TimePoint a = point(rng);
    TimePoint b = point(rng);
    if (a > b) std::swap(a, b);
    if (op(rng) < 8) {
      int64_t v = val(rng);
      ASSERT_TRUE(f.Define(Interval(a, b), I(v)).ok());
      for (TimePoint t = a; t <= b; ++t) model[t] = v;
    } else {
      ASSERT_TRUE(f.Erase(Interval(a, b)).ok());
      for (TimePoint t = a; t <= b; ++t) model.erase(t);
    }
    // Full agreement with the dense model.
    for (TimePoint t = 0; t <= kHorizon; ++t) {
      const Value* got = f.At(t);
      auto it = model.find(t);
      if (it == model.end()) {
        ASSERT_EQ(got, nullptr) << "t=" << t << " round=" << round;
      } else {
        ASSERT_NE(got, nullptr) << "t=" << t << " round=" << round;
        ASSERT_EQ(got->AsInteger(), it->second)
            << "t=" << t << " round=" << round;
      }
    }
    // Representation invariants: sorted, disjoint, coalesced.
    const auto& segs = f.segments();
    for (size_t i = 1; i < segs.size(); ++i) {
      ASSERT_GT(segs[i].interval.start(), segs[i - 1].interval.end());
      // No two adjacent equal-valued segments survive coalescing.
      if (segs[i - 1].interval.end() + 1 == segs[i].interval.start()) {
        ASSERT_NE(segs[i - 1].value, segs[i].value);
      }
    }
    ASSERT_EQ(static_cast<size_t>(f.Domain(kHorizon).Cardinality()),
              model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemporalFunctionPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace tchimera
