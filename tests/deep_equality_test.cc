// Tests for deep value equality (Section 5.3's deep variant): reference
// chasing, cycle handling (bisimulation), and the TQL builtin vdeep().
#include <gtest/gtest.h>

#include "core/db/equality.h"
#include "core/types/type_registry.h"
#include "query/interpreter.h"

namespace tchimera {
namespace {

class DeepEqualityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClassSpec node;
    node.name = "node";
    node.attributes = {{"label", types::String()},
                       {"next", types::Object("node")}};
    ASSERT_TRUE(db_.DefineClass(node).ok());
  }

  Oid MakeNode(const char* label) {
    return db_.CreateObject("node", {{"label", Value::String(label)}})
        .value();
  }
  void Link(Oid from, Oid to) {
    ASSERT_TRUE(db_.UpdateAttribute(from, "next", Value::OfOid(to)).ok());
  }
  bool Deep(Oid a, Oid b) {
    return DeepValueEqual(db_, *db_.GetObject(a), *db_.GetObject(b));
  }

  Database db_;
};

TEST_F(DeepEqualityTest, ShallowVsDeep) {
  // Two chains a1 -> a2("x") and b1 -> b2("x"): shallow value equality
  // fails (different oids in `next`), deep equality succeeds.
  Oid a2 = MakeNode("x");
  Oid b2 = MakeNode("x");
  Oid a1 = MakeNode("head");
  Oid b1 = MakeNode("head");
  Link(a1, a2);
  Link(b1, b2);
  EXPECT_FALSE(EqualByValue(*db_.GetObject(a1), *db_.GetObject(b1)));
  EXPECT_TRUE(Deep(a1, b1));
  // A difference two hops away is found.
  ASSERT_TRUE(
      db_.UpdateAttribute(b2, "label", Value::String("y")).ok());
  EXPECT_FALSE(Deep(a1, b1));
}

TEST_F(DeepEqualityTest, ReflexiveAndIdentityImplied) {
  Oid a = MakeNode("x");
  EXPECT_TRUE(Deep(a, a));
}

TEST_F(DeepEqualityTest, CyclesTerminateAndCompare) {
  // Two 2-cycles with equal labels are deep-equal (bisimulation)...
  Oid a1 = MakeNode("p");
  Oid a2 = MakeNode("q");
  Link(a1, a2);
  Link(a2, a1);
  Oid b1 = MakeNode("p");
  Oid b2 = MakeNode("q");
  Link(b1, b2);
  Link(b2, b1);
  EXPECT_TRUE(Deep(a1, b1));
  // ...and a label difference inside the cycle is detected.
  ASSERT_TRUE(
      db_.UpdateAttribute(b2, "label", Value::String("z")).ok());
  EXPECT_FALSE(Deep(a1, b1));
  // A self-loop equals another self-loop with the same label.
  Oid s1 = MakeNode("s");
  Oid s2 = MakeNode("s");
  Link(s1, s1);
  Link(s2, s2);
  EXPECT_TRUE(Deep(s1, s2));
}

TEST_F(DeepEqualityTest, TemporalHistoriesAreComparedDeeply) {
  // Nodes referenced from temporal histories are chased too.
  ClassSpec holder;
  holder.name = "holder";
  holder.attributes = {
      {"ref", types::Temporal(types::Object("node")).value()}};
  ASSERT_TRUE(db_.DefineClass(holder).ok());
  Oid n1 = MakeNode("same");
  Oid n2 = MakeNode("same");
  Oid h1 =
      db_.CreateObject("holder", {{"ref", Value::OfOid(n1)}}).value();
  Oid h2 =
      db_.CreateObject("holder", {{"ref", Value::OfOid(n2)}}).value();
  EXPECT_TRUE(Deep(h1, h2));
  ASSERT_TRUE(
      db_.UpdateAttribute(n2, "label", Value::String("diff")).ok());
  EXPECT_FALSE(Deep(h1, h2));
}

TEST_F(DeepEqualityTest, VdeepBuiltin) {
  Interpreter interp(&db_);
  Oid a2 = MakeNode("x");
  Oid b2 = MakeNode("x");
  Oid a1 = MakeNode("head");
  Oid b1 = MakeNode("head");
  Link(a1, a2);
  Link(b1, b2);
  std::string q = "select x from x in node where vdeep(x, " +
                  b1.ToString() + ") and not videntical(x, " +
                  b1.ToString() + ")";
  Result<std::string> out = interp.Execute(q);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, a1.ToString());
}

}  // namespace
}  // namespace tchimera
