// Failure-injection tests for the consistency checkers (Definitions
// 5.3-5.6, Invariants 5.1/5.2/6.1/6.2): a healthy database passes every
// check, and each hand-crafted corruption is caught by the checker that
// guards the violated clause.
#include <gtest/gtest.h>

#include "core/db/consistency.h"
#include "core/db/database.h"
#include "core/types/type_registry.h"
#include "core/values/temporal_function.h"
#include "workload/generator.h"
#include "workload/project_schema.h"

namespace tchimera {
namespace {

Value I(int64_t v) { return Value::Integer(v); }

class ConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallProjectSchema(&db_).ok());
    e_ = db_.CreateObject("employee", {{"salary", I(100)},
                                       {"office", Value::String("A")}})
             .value();
    ASSERT_TRUE(db_.AdvanceTo(50).ok());
    ASSERT_TRUE(db_.Migrate(e_, "manager",
                            {{"dependents", I(1)},
                             {"officialcar", Value::String("car")}})
                    .ok());
    ASSERT_TRUE(db_.AdvanceTo(100).ok());
    ASSERT_TRUE(CheckDatabaseConsistency(db_).ok());
  }

  Database db_;
  Oid e_;
};

TEST_F(ConsistencyTest, HealthyDatabasePassesEverything) {
  EXPECT_TRUE(CheckObjectConsistency(db_, e_).ok());
  EXPECT_TRUE(CheckConsistentObjectSet(db_, 25).ok());
  EXPECT_TRUE(CheckConsistentObjectSet(db_, kNow).ok());
  EXPECT_TRUE(CheckReferentialIntegrityAllTime(db_).ok());
  EXPECT_TRUE(CheckInvariant51(db_).ok());
  EXPECT_TRUE(CheckInvariant52(db_).ok());
  EXPECT_TRUE(CheckInvariant61(db_).ok());
  EXPECT_TRUE(CheckInvariant62(db_).ok());
}

TEST_F(ConsistencyTest, WrongTypedTemporalValueIsHistoricallyInconsistent) {
  // Inject a string into the integer-valued salary history.
  Object* obj = db_.GetMutableObject(e_);
  TemporalFunction f = obj->Attribute("salary")->AsTemporal();
  ASSERT_TRUE(f.Define(Interval(10, 20), Value::String("oops")).ok());
  obj->SetAttribute("salary", Value::Temporal(f));
  Status s = CheckObjectConsistency(db_, e_);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kConsistencyViolation);
}

TEST_F(ConsistencyTest, GapInTemporalAttributeIsCaught) {
  // Definition 5.5: a value must exist for every temporal attribute at
  // every instant of membership. Punch a hole in the salary history.
  Object* obj = db_.GetMutableObject(e_);
  TemporalFunction f = obj->Attribute("salary")->AsTemporal();
  ASSERT_TRUE(f.Erase(Interval(10, 20)).ok());
  obj->SetAttribute("salary", Value::Temporal(f));
  EXPECT_FALSE(CheckObjectConsistency(db_, e_).ok());
}

TEST_F(ConsistencyTest, RetainedAttributeLeakingIntoMembershipIsCaught) {
  // A "dependents" value during the employee period (before promotion at
  // 50) contradicts the class history.
  Object* obj = db_.GetMutableObject(e_);
  TemporalFunction f = obj->Attribute("dependents")->AsTemporal();
  ASSERT_TRUE(f.Define(Interval(10, 20), I(9)).ok());
  obj->SetAttribute("dependents", Value::Temporal(f));
  Status s = CheckObjectConsistency(db_, e_);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("dependents"), std::string::npos);
}

TEST_F(ConsistencyTest, WrongStaticValueIsStaticallyInconsistent) {
  Object* obj = db_.GetMutableObject(e_);
  obj->SetAttribute("office", I(42));  // string attribute
  EXPECT_FALSE(CheckObjectConsistency(db_, e_).ok());
}

TEST_F(ConsistencyTest, ExtraStaticAttributeIsCaught) {
  Object* obj = db_.GetMutableObject(e_);
  obj->SetAttribute("bogus", Value::String("zzz"));
  EXPECT_FALSE(CheckObjectConsistency(db_, e_).ok());
}

TEST_F(ConsistencyTest, ClassHistoryOutsideClassLifespanIsCaught) {
  // Pretend the object was a manager before the class existed... achieved
  // by closing the class lifespan under it instead.
  Object* obj = db_.GetMutableObject(e_);
  TemporalFunction history = obj->class_history();
  ASSERT_TRUE(
      history.Define(Interval(0, 4), Value::String("manager")).ok());
  // Make the attribute story coherent so only the lifespan clause fires.
  obj->RestoreState(obj->lifespan(), std::move(history));
  Status s = CheckObjectConsistency(db_, e_);
  EXPECT_FALSE(s.ok());
}

TEST_F(ConsistencyTest, DanglingCurrentReferenceIsCaught) {
  Object* obj = db_.GetMutableObject(e_);
  // officialcar is a string; plant a dangling oid into a set-valued
  // attribute of a project instead.
  Oid proj = db_.CreateObject("project").value();
  Object* p = db_.GetMutableObject(proj);
  p->SetAttribute("workplan", Value::Set({Value::OfOid(Oid{4040})}));
  EXPECT_FALSE(CheckConsistentObjectSet(db_, kNow).ok());
  (void)obj;
}

TEST_F(ConsistencyTest, PastReferenceBeyondTargetLifespanIsCaught) {
  // A participants segment referencing an object before it existed.
  ASSERT_TRUE(db_.AdvanceTo(101).ok());
  Oid late = db_.CreateObject("person").value();  // born at 101
  Oid proj = db_.CreateObject("project").value();
  Object* p = db_.GetMutableObject(proj);
  TemporalFunction f;
  ASSERT_TRUE(
      f.Define(Interval(10, 20), Value::Set({Value::OfOid(late)})).ok());
  p->SetAttribute("participants", Value::Temporal(f));
  EXPECT_FALSE(CheckReferentialIntegrityAllTime(db_).ok());
  // The instant-wise check at a healthy instant still passes.
  EXPECT_TRUE(CheckConsistentObjectSet(db_, kNow).ok());
}

TEST_F(ConsistencyTest, ExtentBeyondObjectLifespanViolates51) {
  // Kill the object without telling the extents.
  Object* obj = db_.GetMutableObject(e_);
  ASSERT_TRUE(obj->CloseLifespan(60).ok());
  Status s = CheckInvariant51(db_);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("5.1"), std::string::npos);
}

TEST_F(ConsistencyTest, ClassHistoryExtentMismatchViolates51And52) {
  // Rewrite the object's class history without updating proper extents.
  Object* obj = db_.GetMutableObject(e_);
  TemporalFunction history;
  ASSERT_TRUE(
      history.AssertFrom(0, Value::String("employee")).ok());
  obj->RestoreState(obj->lifespan(), std::move(history));
  EXPECT_FALSE(CheckInvariant51(db_).ok());
  EXPECT_FALSE(CheckInvariant52(db_).ok());
}

TEST_F(ConsistencyTest, PopulatedDatabaseStaysConsistent) {
  // The full random workload (updates + migrations over many steps)
  // preserves every invariant — the mutators maintain them by
  // construction.
  Database db;
  PopulationConfig config;
  config.persons = 20;
  config.projects = 5;
  config.timesteps = 15;
  config.updates_per_step = 8;
  config.migration_rate = 0.4;
  Result<Population> pop = PopulateDatabase(&db, config);
  ASSERT_TRUE(pop.ok()) << pop.status();
  EXPECT_GT(pop->migrations_applied, 0u);
  Status s = CheckDatabaseConsistency(db);
  EXPECT_TRUE(s.ok()) << s;
}

}  // namespace
}  // namespace tchimera
