// Crash-consistency tests for the recovery subsystem: crash-point
// enumeration through the fault-injection filesystem (every possible
// crash must recover to a committed prefix of the workload), snapshot
// atomicity, torn-tail salvage, corruption fuzzing (bit flips and
// truncations must never be loaded silently), v1 backcompat, and the
// post-recovery consistency audit in all three modes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_fs.h"
#include "core/db/consistency.h"
#include "core/db/database.h"
#include "core/object/object.h"
#include "core/values/temporal_function.h"
#include "core/values/value.h"
#include "query/interpreter.h"
#include "storage/deserializer.h"
#include "storage/journal.h"
#include "storage/recovery.h"
#include "storage/serializer.h"

namespace tchimera {
namespace {

namespace stdfs = std::filesystem;

// A scratch directory wiped at construction, so every run starts from an
// empty disk.
std::string FreshDir(const std::string& name) {
  stdfs::path dir = stdfs::temp_directory_path() / ("tchimera_rec_" + name);
  std::error_code ec;
  stdfs::remove_all(dir, ec);
  stdfs::create_directories(dir, ec);
  return dir.string();
}

std::string ReadFileOrDie(const std::string& path) {
  auto r = FileSystem::Default()->ReadFileToString(path);
  EXPECT_TRUE(r.ok()) << path << ": " << r.status();
  return r.ok() ? *r : std::string();
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

// TCHIMERA_FUZZ_ITERS scales the fuzz tests (nightly CI raises it).
size_t FuzzIterations(size_t fallback) {
  const char* env = std::getenv("TCHIMERA_FUZZ_ITERS");
  if (env == nullptr) return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  return (end != env && *end == '\0' && v > 0) ? static_cast<size_t>(v)
                                               : fallback;
}

// Deterministic 64-bit LCG so fuzz failures reproduce.
struct Rng {
  uint64_t state;
  uint64_t Next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 16;
  }
};

// The canonical workload: schema definition, object creation, references
// between objects, clock advancement, updates and a delete — every
// journaled verb class. Statement indices are the "transaction ids" the
// crash tests reason about.
const std::vector<std::string>& Workload() {
  static const std::vector<std::string>& statements =
      *new std::vector<std::string>{
          "define class person attributes name: temporal(string), "
          "birthyear: integer end",
          "create person (name: 'Ann', birthyear: 1970)",  // i1
          "create person (name: 'Bob', birthyear: 1980)",  // i2
          "define class fan attributes idol: person end",
          "create fan (idol: i1)",  // i3
          "tick 3",
          "update i1 set name = 'Anna'",
          "update i2 set name = 'Bobby'",
          "tick 2",
          "update i3 set idol = i2",
          "delete i1",
      };
  return statements;
}

// The checkpoint fires before this statement index.
constexpr size_t kCheckpointBefore = 6;

// refs[n] = canonical serialization (epoch 0) of the database after the
// first n workload statements.
std::vector<std::string> BuildReferenceStates() {
  std::vector<std::string> refs;
  Database db;
  Interpreter interp(&db);
  refs.push_back(SaveDatabaseToString(db, 0).value());
  for (const std::string& statement : Workload()) {
    auto r = interp.Execute(statement);
    EXPECT_TRUE(r.ok()) << statement << ": " << r.status();
    refs.push_back(SaveDatabaseToString(db, 0).value());
  }
  return refs;
}

// Index of `state` in `refs`, or npos.
size_t MatchPrefix(const std::vector<std::string>& refs,
                   const std::string& state) {
  for (size_t n = 0; n < refs.size(); ++n) {
    if (refs[n] == state) return n;
  }
  return std::string::npos;
}

struct WorkloadRun {
  // Statements acknowledged (Execute returned OK, so the record is on
  // disk per the sync policy).
  size_t committed = 0;
};

// Runs the workload through a JournaledDatabase on `ffs`, checkpointing
// once mid-way. Stops at the first failure (the injected crash).
WorkloadRun RunWorkload(FaultInjectionFileSystem* ffs,
                        const std::string& snapshot_path,
                        const std::string& journal_path,
                        SyncPolicy sync = SyncPolicy::kEveryAppend) {
  WorkloadRun run;
  JournalOptions options;
  options.fs = ffs;
  options.sync = sync;
  JournaledDatabase jdb(journal_path, options);
  if (!jdb.status().ok()) return run;
  const std::vector<std::string>& statements = Workload();
  for (size_t i = 0; i < statements.size(); ++i) {
    if (i == kCheckpointBefore) {
      // A checkpoint killed by the injected crash is not fatal here; the
      // next append fails and ends the run.
      (void)RecoveryManager::Checkpoint(jdb.db(), &jdb.journal(),
                                        snapshot_path, ffs);
    }
    if (!jdb.Execute(statements[i]).ok()) break;
    ++run.committed;
  }
  return run;
}

// The tentpole proof obligation: crash at every single mutating I/O
// operation of the workload (with three torn-write shapes each) and the
// recovered database must (a) pass the full consistency audit and (b) be
// byte-identical to a committed prefix — at least everything that was
// acknowledged under kEveryAppend, at most one in-flight statement more.
TEST(CrashRecoveryTest, EveryCrashPointRestoresACommittedPrefix) {
  const std::vector<std::string> refs = BuildReferenceStates();
  ASSERT_EQ(refs.size(), Workload().size() + 1);

  uint64_t total_ops = 0;
  {
    std::string dir = FreshDir("dry");
    FaultInjectionFileSystem ffs(FileSystem::Default());
    WorkloadRun run =
        RunWorkload(&ffs, dir + "/snap.tchdb", dir + "/journal.tql");
    ASSERT_EQ(run.committed, Workload().size());
    total_ops = ffs.ops_seen();
  }
  ASSERT_GT(total_ops, 20u) << "fault plumbing sees too few operations";

  for (uint64_t tail : {uint64_t{0}, uint64_t{7}, uint64_t{1} << 20}) {
    for (uint64_t at = 0; at < total_ops; ++at) {
      SCOPED_TRACE("crash at op " + std::to_string(at) + ", surviving tail " +
                   std::to_string(tail));
      std::string dir = FreshDir("crash");
      std::string snap = dir + "/snap.tchdb";
      std::string journal = dir + "/journal.tql";
      FaultInjectionFileSystem ffs(FileSystem::Default());
      FaultPlan plan;
      plan.mode = FaultPlan::Mode::kCrash;
      plan.at_op = at;
      plan.surviving_tail_bytes = tail;
      ffs.SetPlan(plan);
      WorkloadRun run = RunWorkload(&ffs, snap, journal);
      ASSERT_TRUE(ffs.crashed());

      // "Reboot": the fault is gone, the surviving bytes are what they are.
      ffs.ClearPlan();
      RecoveryOptions options;
      options.audit = AuditMode::kFail;
      options.fs = &ffs;
      RecoveryManager manager(snap, journal, options);
      RecoveryStats stats;
      auto recovered = manager.Recover(&stats);
      ASSERT_TRUE(recovered.ok()) << recovered.status();

      auto state = SaveDatabaseToString(**recovered, 0);
      ASSERT_TRUE(state.ok()) << state.status();
      size_t n = MatchPrefix(refs, *state);
      ASSERT_NE(n, std::string::npos)
          << "recovered state matches no committed prefix";
      // kEveryAppend: acknowledged == durable, so nothing acknowledged may
      // be lost; at most the single in-flight statement may additionally
      // survive (a torn write that happened to complete).
      EXPECT_GE(n, run.committed);
      EXPECT_LE(n, run.committed + 1);
    }
  }
}

// Crash-point enumeration for temporal secondary indexes: a workload
// whose journal carries index DDL (create, drop, both kinds) around a
// mid-run checkpoint whose snapshot persists INDEX records. At EVERY
// crash point the recovered database must (a) land on a committed
// prefix, as above, and (b) hold index state bit-identical to a
// from-scratch rebuild from its own objects — a crash mid-checkpoint or
// mid-statement may lose statements, but it must never leave an index
// inconsistent with the extents it covers.
TEST(CrashRecoveryTest, EveryCrashPointLeavesIndexesConsistentWithObjects) {
  const std::vector<std::string> workload = {
      "define class person attributes name: temporal(string), "
      "salary: temporal(integer) end",
      "create person (name: 'Ann', salary: 100)",  // i1
      "create person (name: 'Bob', salary: 200)",  // i2
      "create index psal on person (salary)",
      "tick 3",
      "update i1 set salary = 150",
      "create index plife on person lifespan",
      "update i2 set salary = 50 during [1,2]",
      "tick 2",
      "delete i2",
      "drop index plife",
  };
  constexpr size_t kCheckpointAt = 5;  // after `create index psal`

  // Reference states (canonical serialization includes INDEX records).
  std::vector<std::string> refs;
  {
    Database db;
    Interpreter interp(&db);
    refs.push_back(SaveDatabaseToString(db, 0).value());
    for (const std::string& statement : workload) {
      auto r = interp.Execute(statement);
      ASSERT_TRUE(r.ok()) << statement << ": " << r.status();
      refs.push_back(SaveDatabaseToString(db, 0).value());
    }
  }

  auto run_workload = [&](FaultInjectionFileSystem* ffs,
                          const std::string& snap,
                          const std::string& journal) {
    size_t committed = 0;
    JournalOptions options;
    options.fs = ffs;
    JournaledDatabase jdb(journal, options);
    if (!jdb.status().ok()) return committed;
    for (size_t i = 0; i < workload.size(); ++i) {
      if (i == kCheckpointAt) {
        (void)RecoveryManager::Checkpoint(jdb.db(), &jdb.journal(), snap,
                                          ffs);
      }
      if (!jdb.Execute(workload[i]).ok()) break;
      ++committed;
    }
    return committed;
  };

  uint64_t total_ops = 0;
  {
    std::string dir = FreshDir("idx_dry");
    FaultInjectionFileSystem ffs(FileSystem::Default());
    size_t committed =
        run_workload(&ffs, dir + "/snap.tchdb", dir + "/journal.tql");
    ASSERT_EQ(committed, workload.size());
    total_ops = ffs.ops_seen();
  }

  for (uint64_t at = 0; at < total_ops; ++at) {
    SCOPED_TRACE("crash at op " + std::to_string(at));
    std::string dir = FreshDir("idx_crash");
    std::string snap = dir + "/snap.tchdb";
    std::string journal = dir + "/journal.tql";
    FaultInjectionFileSystem ffs(FileSystem::Default());
    FaultPlan plan;
    plan.mode = FaultPlan::Mode::kCrash;
    plan.at_op = at;
    plan.surviving_tail_bytes = 7;
    ffs.SetPlan(plan);
    size_t committed = run_workload(&ffs, snap, journal);
    ffs.ClearPlan();

    RecoveryOptions options;
    options.audit = AuditMode::kFail;
    options.fs = &ffs;
    RecoveryManager manager(snap, journal, options);
    auto recovered = manager.Recover(nullptr);
    ASSERT_TRUE(recovered.ok()) << recovered.status();

    auto state = SaveDatabaseToString(**recovered, 0);
    ASSERT_TRUE(state.ok()) << state.status();
    size_t n = std::string::npos;
    for (size_t k = 0; k < refs.size(); ++k) {
      if (refs[k] == *state) {
        n = k;
        break;
      }
    }
    ASSERT_NE(n, std::string::npos)
        << "recovered state matches no committed prefix";
    EXPECT_GE(n, committed);
    EXPECT_LE(n, committed + 1);

    // Index data is never persisted, only rebuilt — so the recovered
    // index must equal what a fresh rebuild from the recovered objects
    // produces (round-trip through the serializer rebuilds from scratch).
    auto reloaded = LoadDatabaseFromString(*state);
    ASSERT_TRUE(reloaded.ok()) << reloaded.status();
    EXPECT_EQ((*recovered)->DebugDumpIndexes(),
              (*reloaded)->DebugDumpIndexes());
  }
}

// Under SyncPolicy::kNone there is no durability floor, but recovery must
// still land on *some* clean prefix — never a torn half-statement, never
// an audit failure.
TEST(CrashRecoveryTest, SyncPolicyNoneStillRecoversToSomePrefix) {
  const std::vector<std::string> refs = BuildReferenceStates();

  uint64_t total_ops = 0;
  {
    std::string dir = FreshDir("none_dry");
    FaultInjectionFileSystem ffs(FileSystem::Default());
    WorkloadRun run = RunWorkload(&ffs, dir + "/snap.tchdb",
                                  dir + "/journal.tql", SyncPolicy::kNone);
    ASSERT_EQ(run.committed, Workload().size());
    total_ops = ffs.ops_seen();
  }

  for (uint64_t at = 0; at < total_ops; ++at) {
    SCOPED_TRACE("crash at op " + std::to_string(at));
    std::string dir = FreshDir("none_crash");
    std::string snap = dir + "/snap.tchdb";
    std::string journal = dir + "/journal.tql";
    FaultInjectionFileSystem ffs(FileSystem::Default());
    FaultPlan plan;
    plan.mode = FaultPlan::Mode::kCrash;
    plan.at_op = at;
    plan.surviving_tail_bytes = 9;  // a torn fragment of the lost tail
    ffs.SetPlan(plan);
    WorkloadRun run = RunWorkload(&ffs, snap, journal, SyncPolicy::kNone);
    ffs.ClearPlan();

    RecoveryOptions options;
    options.audit = AuditMode::kFail;
    options.fs = &ffs;
    RecoveryManager manager(snap, journal, options);
    auto recovered = manager.Recover(nullptr);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    auto state = SaveDatabaseToString(**recovered, 0);
    ASSERT_TRUE(state.ok());
    size_t n = MatchPrefix(refs, *state);
    ASSERT_NE(n, std::string::npos);
    EXPECT_LE(n, run.committed + 1);
  }
}

// kBatched in between: a crash loses at most the records appended since
// the last batch sync, and the survivors form a clean record boundary.
TEST(SyncPolicyTest, BatchedSyncLosesAtMostTheUnsyncedSuffix) {
  std::string dir = FreshDir("batched");
  std::string path = dir + "/journal.tql";
  FaultInjectionFileSystem ffs(FileSystem::Default());
  JournalOptions options;
  options.fs = &ffs;
  options.sync = SyncPolicy::kBatched;
  options.batch_size = 4;

  uint64_t ops_through_appends = 0;
  {
    Journal journal;
    ASSERT_TRUE(journal.Open(path, options).ok());
    for (int i = 1; i <= 6; ++i) {
      ASSERT_TRUE(journal.Append("tick " + std::to_string(i)).ok());
    }
    ops_through_appends = ffs.ops_seen();  // before Close() syncs the rest
    journal.Close();
  }

  // Re-run, crashing on the 6th append: records 1-4 were synced by the
  // batch, record 5 is unsynced, record 6 is in flight — 4 must survive.
  std::string dir2 = FreshDir("batched_crash");
  std::string path2 = dir2 + "/journal.tql";
  FaultPlan plan;
  plan.mode = FaultPlan::Mode::kCrash;
  plan.at_op = ops_through_appends - 1;
  ffs.SetPlan(plan);
  {
    Journal journal;
    ASSERT_TRUE(journal.Open(path2, options).ok());
    for (int i = 1; i <= 6; ++i) {
      Status s = journal.Append("tick " + std::to_string(i));
      if (!s.ok()) break;
    }
    journal.Close();
  }
  ASSERT_TRUE(ffs.crashed());
  ffs.ClearPlan();

  auto scan = ScanJournal(path2);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->tail_error.ok()) << scan->tail_error;
  ASSERT_EQ(scan->statements.size(), 4u);
  EXPECT_EQ(scan->statements[3], "tick 4");
}

// The snapshot write is atomic: a crash at any of its operations leaves
// the previous snapshot byte-identical and structurally sound.
TEST(SnapshotAtomicityTest, CrashDuringSnapshotWriteLeavesOldOneIntact) {
  Database small;
  Interpreter small_interp(&small);
  ASSERT_TRUE(small_interp.Execute("tick 1").ok());
  Database big;
  Interpreter big_interp(&big);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(big_interp.Execute(Workload()[i]).ok());
  }

  std::string dir = FreshDir("atomic");
  std::string path = dir + "/snap.tchdb";
  FaultInjectionFileSystem ffs(FileSystem::Default());
  ASSERT_TRUE(SaveDatabaseToFile(small, path, 1, &ffs).ok());
  const std::string original = ReadFileOrDie(path);

  // Count the operations of one overwrite.
  ASSERT_TRUE(SaveDatabaseToFile(big, dir + "/probe.tchdb", 2, &ffs).ok());
  ffs.SetPlan(FaultPlan{});  // reset the counter
  ASSERT_TRUE(SaveDatabaseToFile(big, dir + "/probe.tchdb", 2, &ffs).ok());
  uint64_t ops = ffs.ops_seen();
  ASSERT_GE(ops, 3u);

  for (uint64_t at = 0; at < ops; ++at) {
    SCOPED_TRACE("crash at op " + std::to_string(at));
    FaultPlan plan;
    plan.mode = FaultPlan::Mode::kCrash;
    plan.at_op = at;
    plan.surviving_tail_bytes = 11;
    ffs.SetPlan(plan);
    Status s = SaveDatabaseToFile(big, path, 2, &ffs);
    EXPECT_FALSE(s.ok());
    ffs.ClearPlan();
    // The visible snapshot is still exactly the old one.
    EXPECT_EQ(ReadFileOrDie(path), original);
    auto info = ProbeSnapshotFile(path, &ffs);
    ASSERT_TRUE(info.ok());
    EXPECT_TRUE(info->integrity.ok()) << info->integrity;
  }

  // And once no fault is planned, the overwrite goes through.
  ASSERT_TRUE(SaveDatabaseToFile(big, path, 2, &ffs).ok());
  auto loaded = LoadDatabaseFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(SaveDatabaseToString(**loaded, 0).value(),
            SaveDatabaseToString(big, 0).value());
}

// A torn v2 tail is quarantined to `<journal>.corrupt`, the valid prefix
// keeps replaying, and the journal accepts appends again after salvage.
TEST(JournalSalvageTest, TornTailIsQuarantinedAndAppendsContinue) {
  std::string dir = FreshDir("salvage");
  std::string path = dir + "/journal.tql";
  {
    Journal journal;
    ASSERT_TRUE(journal.Open(path).ok());
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE(journal.Append("tick " + std::to_string(i)).ok());
    }
    journal.Close();
  }
  std::string content = ReadFileOrDie(path);
  ASSERT_GT(content.size(), 5u);
  WriteFileOrDie(path, content.substr(0, content.size() - 5));

  auto scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->format, 2);
  EXPECT_EQ(scan->statements.size(), 2u);
  EXPECT_FALSE(scan->tail_error.ok());
  EXPECT_GT(scan->dropped_bytes, 0u);

  auto salvaged = SalvageJournal(path);
  ASSERT_TRUE(salvaged.ok());
  std::string corrupt = ReadFileOrDie(path + ".corrupt");
  EXPECT_EQ(corrupt.size(), salvaged->dropped_bytes);
  auto rescan = ScanJournal(path);
  ASSERT_TRUE(rescan.ok());
  EXPECT_TRUE(rescan->tail_error.ok());
  EXPECT_EQ(rescan->statements.size(), 2u);

  // Open salvages implicitly (idempotent here) and appending resumes the
  // sequence numbering where the valid prefix left off.
  Journal journal;
  ASSERT_TRUE(journal.Open(path).ok());
  ASSERT_TRUE(journal.Append("tick 9").ok());
  journal.Close();
  auto final_scan = ScanJournal(path);
  ASSERT_TRUE(final_scan.ok());
  EXPECT_TRUE(final_scan->tail_error.ok());
  ASSERT_EQ(final_scan->statements.size(), 3u);
  EXPECT_EQ(final_scan->statements[2], "tick 9");
  EXPECT_EQ(final_scan->last_seq, 3u);
}

// Every single-bit flip and every truncation of a v2 snapshot must be
// rejected with Corruption before any state is built.
TEST(FuzzTest, SnapshotBitFlipsAndTruncationsAreRejected) {
  Database db;
  Interpreter interp(&db);
  for (const std::string& statement : Workload()) {
    ASSERT_TRUE(interp.Execute(statement).ok()) << statement;
  }
  const std::string text = SaveDatabaseToString(db, 3).value();
  ASSERT_TRUE(LoadDatabaseFromString(text).ok());

  Rng rng{0x7c3a1f2db5e90d41ULL};
  size_t iterations = FuzzIterations(250);
  for (size_t i = 0; i < iterations; ++i) {
    std::string mutated = text;
    std::string what;
    if (rng.Next() % 2 == 0) {
      size_t pos = rng.Next() % mutated.size();
      int bit = static_cast<int>(rng.Next() % 8);
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
      what = "bit " + std::to_string(bit) + " at byte " + std::to_string(pos);
    } else {
      size_t len = rng.Next() % mutated.size();
      mutated.resize(len);
      what = "truncated to " + std::to_string(len) + " bytes";
    }
    auto loaded = LoadDatabaseFromString(mutated);
    ASSERT_FALSE(loaded.ok()) << "corrupt snapshot (" << what
                              << ") loaded silently";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << what;
  }
}

// Corrupted journals never crash recovery and never yield a state that is
// not a clean workload prefix: recovery either fails or lands on refs[n].
TEST(FuzzTest, CorruptedJournalsRecoverToAPrefixOrFail) {
  const std::vector<std::string> refs = BuildReferenceStates();
  std::string dir = FreshDir("jfuzz");
  std::string path = dir + "/journal.tql";
  {
    Journal journal;
    ASSERT_TRUE(journal.Open(path).ok());
    for (const std::string& statement : Workload()) {
      ASSERT_TRUE(journal.Append(statement).ok());
    }
    journal.Close();
  }
  const std::string pristine = ReadFileOrDie(path);

  Rng rng{0x2fd40b17c98e6a53ULL};
  size_t iterations = FuzzIterations(250);
  for (size_t i = 0; i < iterations; ++i) {
    std::string mutated = pristine;
    std::string what;
    if (rng.Next() % 2 == 0) {
      size_t pos = rng.Next() % mutated.size();
      int bit = static_cast<int>(rng.Next() % 8);
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
      what = "bit " + std::to_string(bit) + " at byte " + std::to_string(pos);
    } else {
      size_t len = rng.Next() % mutated.size();
      mutated.resize(len);
      what = "truncated to " + std::to_string(len) + " bytes";
    }
    WriteFileOrDie(path, mutated);
    std::error_code ec;
    stdfs::remove(path + ".corrupt", ec);  // salvage residue of prior iters

    RecoveryManager manager(dir + "/snap.tchdb", path);
    auto recovered = manager.Recover(nullptr);
    if (!recovered.ok()) continue;  // refusing corrupt input is always fine
    auto state = SaveDatabaseToString(**recovered, 0);
    ASSERT_TRUE(state.ok());
    EXPECT_NE(MatchPrefix(refs, *state), std::string::npos)
        << "corrupt journal (" << what
        << ") recovered to a state that is not a workload prefix";
  }
}

// v1 journals (bare statements, no framing) still replay — both through
// the strict Journal::Replay path and through RecoveryManager — and the
// first checkpoint upgrades the pair to v2 without losing anything.
TEST(BackCompatTest, V1JournalReplaysAndUpgradesAtTheNextCheckpoint) {
  std::string dir = FreshDir("v1journal");
  std::string journal_path = dir + "/journal.tql";
  std::string snap_path = dir + "/snap.tchdb";
  std::string v1_text;
  for (size_t i = 0; i < kCheckpointBefore; ++i) {
    v1_text += Workload()[i] + "\n";
    if (i == 2) v1_text += "\n";  // blank lines are tolerated in v1
  }
  WriteFileOrDie(journal_path, v1_text);

  Database reference;
  Interpreter reference_interp(&reference);
  auto applied = Journal::Replay(journal_path, &reference_interp);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(*applied, kCheckpointBefore);

  RecoveryManager manager(snap_path, journal_path);
  RecoveryStats stats;
  auto recovered = manager.Recover(&stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_EQ(stats.statements_applied, kCheckpointBefore);
  EXPECT_EQ(stats.next_epoch, 0u);
  EXPECT_EQ(SaveDatabaseToString(**recovered, 0).value(),
            SaveDatabaseToString(reference, 0).value());

  // Keep running against the recovered database in v1, then checkpoint:
  // the journal rotates to v2 and the v1 file is absorbed and deleted.
  Database* db = recovered->get();
  Interpreter interp(db);
  Journal journal;
  ASSERT_TRUE(journal.Open(journal_path).ok());
  EXPECT_EQ(journal.format(), 1);
  ASSERT_TRUE(interp.Execute("tick 1").ok());
  ASSERT_TRUE(journal.Append("tick 1").ok());
  ASSERT_TRUE(
      RecoveryManager::Checkpoint(*db, &journal, snap_path).ok());
  EXPECT_EQ(journal.format(), 2);
  EXPECT_EQ(journal.epoch(), 1u);
  EXPECT_FALSE(
      FileSystem::Default()->FileExists(Journal::RotatedPath(journal_path, 0)));
  journal.Close();

  RecoveryManager manager2(snap_path, journal_path);
  RecoveryStats stats2;
  auto recovered2 = manager2.Recover(&stats2);
  ASSERT_TRUE(recovered2.ok()) << recovered2.status();
  EXPECT_TRUE(stats2.snapshot_loaded);
  EXPECT_EQ(stats2.snapshot_epoch, 1u);
  EXPECT_EQ(SaveDatabaseToString(**recovered2, 0).value(),
            SaveDatabaseToString(*db, 0).value());
}

// v1 snapshots (no EPOCH line, no CHECKSUM footer) still load.
TEST(BackCompatTest, V1SnapshotStillLoads) {
  Database db;
  Interpreter interp(&db);
  for (size_t i = 0; i < kCheckpointBefore; ++i) {
    ASSERT_TRUE(interp.Execute(Workload()[i]).ok());
  }
  std::string v2 = SaveDatabaseToString(db, 5).value();

  // Shape the v2 text into its v1 equivalent: version 1 header, no EPOCH
  // line, no CHECKSUM line.
  std::string v1 = v2;
  size_t header_end = v1.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  v1.replace(0, header_end, "TCHIMERA-SNAPSHOT 1");
  size_t epoch_pos = v1.find("EPOCH ");
  ASSERT_NE(epoch_pos, std::string::npos);
  v1.erase(epoch_pos, v1.find('\n', epoch_pos) - epoch_pos + 1);
  size_t footer_pos = v1.find("CHECKSUM ");
  ASSERT_NE(footer_pos, std::string::npos);
  v1.erase(footer_pos, v1.find('\n', footer_pos) - footer_pos + 1);

  auto info = ProbeSnapshot(v1);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, 1);
  EXPECT_EQ(info->epoch, 0u);
  EXPECT_TRUE(info->integrity.ok()) << info->integrity;

  auto loaded = LoadDatabaseFromString(v1);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(SaveDatabaseToString(**loaded, 0).value(),
            SaveDatabaseToString(db, 0).value());
}

// A corrupt snapshot fails recovery with Corruption before any journal
// replay or state construction happens.
TEST(RecoveryTest, CorruptSnapshotFailsRecoveryUpFront) {
  std::string dir = FreshDir("badsnap");
  std::string snap = dir + "/snap.tchdb";
  std::string journal_path = dir + "/journal.tql";
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(Workload()[0]).ok());
  ASSERT_TRUE(SaveDatabaseToFile(db, snap, 1).ok());

  std::string text = ReadFileOrDie(snap);
  text[text.size() / 2] = static_cast<char>(text[text.size() / 2] ^ 0x10);
  WriteFileOrDie(snap, text);

  RecoveryManager manager(snap, journal_path);
  RecoveryStats stats;
  auto recovered = manager.Recover(&stats);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(stats.statements_applied, 0u);
}

// The audit fixture: a database whose snapshot contains one object with a
// class history naming a class that never existed ("ghost"), and a second
// object referencing the first — so quarantining the first leaves the
// second dangling, which the next audit round must catch (the cascade).
std::string WriteCorruptedSnapshot(const std::string& dir) {
  Database db;
  Interpreter interp(&db);
  EXPECT_TRUE(interp
                  .Execute("define class person attributes "
                           "name: temporal(string), birthyear: integer end")
                  .ok());
  EXPECT_TRUE(
      interp.Execute("create person (name: 'Star', birthyear: 1970)").ok());
  EXPECT_TRUE(
      interp.Execute("define class fan attributes idol: person end").ok());
  EXPECT_TRUE(interp.Execute("create fan (idol: i1)").ok());
  EXPECT_TRUE(interp.Execute("tick 2").ok());
  EXPECT_TRUE(CheckDatabaseConsistency(db).ok());

  Object* star = db.GetMutableObject(Oid{1});
  EXPECT_NE(star, nullptr);
  TemporalFunction history;
  EXPECT_TRUE(history.AssertFrom(0, Value::String("ghost")).ok());
  star->RestoreState(star->lifespan(), std::move(history));
  EXPECT_FALSE(CheckDatabaseConsistency(db).ok());

  std::string snap = dir + "/snap.tchdb";
  EXPECT_TRUE(SaveDatabaseToFile(db, snap, 1).ok());
  return snap;
}

TEST(AuditTest, FailModeRejectsAnInconsistentRecoveredDatabase) {
  std::string dir = FreshDir("audit_fail");
  std::string snap = WriteCorruptedSnapshot(dir);
  RecoveryOptions options;
  options.audit = AuditMode::kFail;
  RecoveryManager manager(snap, dir + "/journal.tql", options);
  auto recovered = manager.Recover(nullptr);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kConsistencyViolation);
}

TEST(AuditTest, QuarantineModeEvictsTheCascadeAndHeals) {
  std::string dir = FreshDir("audit_quarantine");
  std::string snap = WriteCorruptedSnapshot(dir);
  RecoveryOptions options;
  options.audit = AuditMode::kQuarantine;
  RecoveryManager manager(snap, dir + "/journal.tql", options);
  RecoveryStats stats;
  auto recovered = manager.Recover(&stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  // i1 fails its own check (ghost class); evicting it scrubs the person
  // extent, which leaves i2's `idol: i1` dangling — evicted next round.
  EXPECT_EQ(stats.quarantined_objects, 2u);
  EXPECT_EQ((*recovered)->GetMutableObject(Oid{1}), nullptr);
  EXPECT_EQ((*recovered)->GetMutableObject(Oid{2}), nullptr);
  EXPECT_TRUE(CheckDatabaseConsistency(**recovered).ok());
}

TEST(AuditTest, OffModeTrustsTheReplay) {
  std::string dir = FreshDir("audit_off");
  std::string snap = WriteCorruptedSnapshot(dir);
  RecoveryOptions options;
  options.audit = AuditMode::kOff;
  RecoveryManager manager(snap, dir + "/journal.tql", options);
  auto recovered = manager.Recover(nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(CheckDatabaseConsistency(**recovered).ok());
}

}  // namespace
}  // namespace tchimera
