// Unit tests for Definition 3.5 (legal values / type extensions) and
// Definition 3.6 (type inference), including the object-type rules that
// depend on class extents.
#include <gtest/gtest.h>

#include "core/db/database.h"
#include "core/types/type_registry.h"
#include "core/values/temporal_function.h"
#include "core/values/typing.h"

namespace tchimera {
namespace {

class TypingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClassSpec person;
    person.name = "person";
    ASSERT_TRUE(db_.DefineClass(person).ok());
    ClassSpec employee;
    employee.name = "employee";
    employee.superclasses = {"person"};
    ASSERT_TRUE(db_.DefineClass(employee).ok());
    // One person and one employee, both alive from t=0.
    p_ = db_.CreateObject("person").value();
    e_ = db_.CreateObject("employee").value();
    ASSERT_TRUE(db_.AdvanceTo(100).ok());
  }

  TypingContext Ctx() { return db_.typing_context(); }

  Database db_;
  Oid p_, e_;
};

TEST_F(TypingTest, NullIsLegalForEveryType) {
  for (const Type* t :
       {types::Integer(), types::String(), types::Object("person"),
        types::SetOf(types::Integer()),
        types::Temporal(types::Integer()).value()}) {
    EXPECT_TRUE(IsLegalValue(Value::Null(), t, 50, Ctx())) << t->ToString();
  }
}

TEST_F(TypingTest, BasicTypesMatchTheirDomains) {
  EXPECT_TRUE(IsLegalValue(Value::Integer(3), types::Integer(), 0, Ctx()));
  EXPECT_FALSE(IsLegalValue(Value::Integer(3), types::Real(), 0, Ctx()));
  EXPECT_TRUE(IsLegalValue(Value::Real(3.5), types::Real(), 0, Ctx()));
  EXPECT_TRUE(IsLegalValue(Value::Time(7), types::Time(), 0, Ctx()));
  EXPECT_FALSE(IsLegalValue(Value::Integer(7), types::Time(), 0, Ctx()));
  EXPECT_TRUE(
      IsLegalValue(Value::String("x"), types::String(), 0, Ctx()));
}

TEST_F(TypingTest, ObjectTypesUseExtents) {
  // [[c]]_t = pi(c, t): membership includes subclass instances.
  EXPECT_TRUE(IsLegalValue(Value::OfOid(e_), types::Object("employee"), 50,
                           Ctx()));
  EXPECT_TRUE(IsLegalValue(Value::OfOid(e_), types::Object("person"), 50,
                           Ctx()));
  EXPECT_TRUE(IsLegalValue(Value::OfOid(p_), types::Object("person"), 50,
                           Ctx()));
  EXPECT_FALSE(IsLegalValue(Value::OfOid(p_), types::Object("employee"),
                            50, Ctx()));
  // Unknown oid: in no extent.
  EXPECT_FALSE(IsLegalValue(Value::OfOid(Oid{999}),
                            types::Object("person"), 50, Ctx()));
}

TEST_F(TypingTest, ExtentMembershipIsTimeDependent) {
  // Object e_ was created at t=0; at a later time the database clock has
  // moved but membership holds throughout [0, now]. Delete it and the
  // extension shrinks from now+1.
  ASSERT_TRUE(db_.DeleteObject(e_).ok());
  EXPECT_TRUE(IsLegalValue(Value::OfOid(e_), types::Object("employee"),
                           100, Ctx()));  // still alive *at* now
  db_.Tick();
  EXPECT_FALSE(IsLegalValue(Value::OfOid(e_), types::Object("employee"),
                            101, Ctx()));
  EXPECT_TRUE(IsLegalValue(Value::OfOid(e_), types::Object("employee"), 50,
                           Ctx()));  // history preserved
}

TEST_F(TypingTest, CollectionsCheckElements) {
  const Type* set_person = types::SetOf(types::Object("person"));
  EXPECT_TRUE(IsLegalValue(
      Value::Set({Value::OfOid(p_), Value::OfOid(e_)}), set_person, 50,
      Ctx()));
  EXPECT_FALSE(IsLegalValue(
      Value::Set({Value::OfOid(p_), Value::Integer(3)}), set_person, 50,
      Ctx()));
  // Sets are not lists.
  EXPECT_FALSE(IsLegalValue(Value::List({Value::OfOid(p_)}), set_person,
                            50, Ctx()));
  // Empty collections inhabit every collection type.
  EXPECT_TRUE(IsLegalValue(Value::EmptySet(), set_person, 50, Ctx()));
}

TEST_F(TypingTest, RecordsRequireExactComponents) {
  const Type* t = types::RecordOf({{"name", types::String()},
                                   {"age", types::Integer()}})
                      .value();
  EXPECT_TRUE(IsLegalValue(Value::Record({{"name", Value::String("Bob")},
                                          {"age", Value::Integer(4)}})
                               .value(),
                           t, 0, Ctx()));
  // Null components are fine (null : T).
  EXPECT_TRUE(IsLegalValue(Value::Record({{"name", Value::Null()},
                                          {"age", Value::Integer(4)}})
                               .value(),
                           t, 0, Ctx()));
  // Missing or extra components violate Definition 3.5.
  EXPECT_FALSE(IsLegalValue(
      Value::Record({{"name", Value::String("Bob")}}).value(), t, 0,
      Ctx()));
  EXPECT_FALSE(IsLegalValue(Value::Record({{"name", Value::String("B")},
                                           {"age", Value::Integer(4)},
                                           {"x", Value::Bool(true)}})
                                .value(),
                            t, 0, Ctx()));
}

TEST_F(TypingTest, TemporalValuesCheckSegmentsOverIntervals) {
  const Type* t = types::Temporal(types::Object("person")).value();
  TemporalFunction f;
  ASSERT_TRUE(f.Define(Interval(10, 60), Value::OfOid(p_)).ok());
  EXPECT_TRUE(IsLegalValue(Value::Temporal(f), t, 100, Ctx()));
  // A segment asserting membership over an interval where the object did
  // not exist is illegal (Example 5.3's conditions).
  TemporalFunction g;
  ASSERT_TRUE(
      g.Define(Interval(10, 60), Value::OfOid(Oid{999})).ok());
  EXPECT_FALSE(IsLegalValue(Value::Temporal(g), t, 100, Ctx()));
  // Type errors inside segments are detected too.
  const Type* ti = types::Temporal(types::Integer()).value();
  TemporalFunction h;
  ASSERT_TRUE(h.Define(Interval(1, 5), Value::String("oops")).ok());
  EXPECT_FALSE(IsLegalValue(Value::Temporal(h), ti, 100, Ctx()));
}

TEST_F(TypingTest, InferenceOfScalars) {
  EXPECT_EQ(InferType(Value::Integer(1), 0, Ctx()).value(),
            types::Integer());
  EXPECT_EQ(InferType(Value::Real(1.0), 0, Ctx()).value(), types::Real());
  EXPECT_EQ(InferType(Value::Bool(true), 0, Ctx()).value(), types::Bool());
  EXPECT_EQ(InferType(Value::Char('a'), 0, Ctx()).value(), types::Char());
  EXPECT_EQ(InferType(Value::String("s"), 0, Ctx()).value(),
            types::String());
  EXPECT_EQ(InferType(Value::Time(3), 0, Ctx()).value(), types::Time());
  EXPECT_EQ(InferType(Value::Null(), 0, Ctx()).value(), types::Any());
}

TEST_F(TypingTest, InferenceOfOidsUsesMostSpecificClass) {
  EXPECT_EQ(InferType(Value::OfOid(e_), 50, Ctx()).value(),
            types::Object("employee"));
  EXPECT_EQ(InferType(Value::OfOid(p_), 50, Ctx()).value(),
            types::Object("person"));
  EXPECT_FALSE(InferType(Value::OfOid(Oid{999}), 50, Ctx()).ok());
}

TEST_F(TypingTest, InferenceOfSetsUsesLub) {
  Value mixed = Value::Set({Value::OfOid(p_), Value::OfOid(e_)});
  EXPECT_EQ(InferType(mixed, 50, Ctx()).value(),
            types::SetOf(types::Object("person")));
  EXPECT_EQ(InferType(Value::EmptySet(), 50, Ctx()).value(),
            types::SetOf(types::Any()));
  // No lub: integer and string in one set.
  Value bad = Value::Set({Value::Integer(1), Value::String("x")});
  EXPECT_FALSE(InferType(bad, 50, Ctx()).ok());
}

TEST_F(TypingTest, InferenceOfTemporalValues) {
  TemporalFunction f;
  ASSERT_TRUE(f.Define(Interval(1, 10), Value::OfOid(p_)).ok());
  ASSERT_TRUE(f.Define(Interval(11, 20), Value::OfOid(e_)).ok());
  EXPECT_EQ(InferType(Value::Temporal(f), 50, Ctx()).value(),
            types::Temporal(types::Object("person")).value());
}

}  // namespace
}  // namespace tchimera
