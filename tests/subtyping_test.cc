// Tests for the subtype relation <=_T (Definition 6.1) and the least
// upper bound used by the set typing rule of Definition 3.6.
#include <gtest/gtest.h>

#include "core/schema/isa_graph.h"
#include "core/types/subtyping.h"
#include "core/types/type_registry.h"

namespace tchimera {
namespace {

// A small hierarchy:  person <- employee <- manager ; person <- student ;
// separate hierarchy: vehicle <- car.
class SubtypingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(isa_.AddClass("person", {}).ok());
    ASSERT_TRUE(isa_.AddClass("employee", {"person"}).ok());
    ASSERT_TRUE(isa_.AddClass("manager", {"employee"}).ok());
    ASSERT_TRUE(isa_.AddClass("student", {"person"}).ok());
    ASSERT_TRUE(isa_.AddClass("vehicle", {}).ok());
    ASSERT_TRUE(isa_.AddClass("car", {"vehicle"}).ok());
  }

  const Type* T(const char* name) { return types::Object(name); }

  IsaGraph isa_;
};

TEST_F(SubtypingTest, Reflexivity) {
  for (const Type* t :
       {types::Integer(), types::String(), T("person"),
        types::SetOf(T("manager")),
        types::Temporal(types::Integer()).value()}) {
    EXPECT_TRUE(IsSubtype(t, t, isa_)) << t->ToString();
  }
}

TEST_F(SubtypingTest, ObjectTypesFollowIsa) {
  EXPECT_TRUE(IsSubtype(T("manager"), T("employee"), isa_));
  EXPECT_TRUE(IsSubtype(T("manager"), T("person"), isa_));  // transitive
  EXPECT_TRUE(IsSubtype(T("student"), T("person"), isa_));
  EXPECT_FALSE(IsSubtype(T("person"), T("manager"), isa_));
  EXPECT_FALSE(IsSubtype(T("student"), T("employee"), isa_));
  EXPECT_FALSE(IsSubtype(T("car"), T("person"), isa_));
}

TEST_F(SubtypingTest, DistinctBasicTypesUnrelated) {
  EXPECT_FALSE(IsSubtype(types::Integer(), types::Real(), isa_));
  EXPECT_FALSE(IsSubtype(types::Time(), types::Integer(), isa_));
  EXPECT_FALSE(IsSubtype(types::Char(), types::String(), isa_));
}

TEST_F(SubtypingTest, AnyIsBottom) {
  for (const Type* t :
       {types::Integer(), T("person"), types::SetOf(types::String()),
        types::Temporal(T("car")).value()}) {
    EXPECT_TRUE(IsSubtype(types::Any(), t, isa_)) << t->ToString();
    EXPECT_FALSE(IsSubtype(t, types::Any(), isa_)) << t->ToString();
  }
}

TEST_F(SubtypingTest, CollectionsAreCovariant) {
  EXPECT_TRUE(
      IsSubtype(types::SetOf(T("manager")), types::SetOf(T("person")),
                isa_));
  EXPECT_TRUE(
      IsSubtype(types::ListOf(T("manager")), types::ListOf(T("person")),
                isa_));
  EXPECT_FALSE(
      IsSubtype(types::SetOf(T("person")), types::SetOf(T("manager")),
                isa_));
  // set-of and list-of are unrelated constructors.
  EXPECT_FALSE(
      IsSubtype(types::SetOf(T("manager")), types::ListOf(T("person")),
                isa_));
}

TEST_F(SubtypingTest, TemporalIsCovariant) {
  const Type* tm = types::Temporal(T("manager")).value();
  const Type* tp = types::Temporal(T("person")).value();
  EXPECT_TRUE(IsSubtype(tm, tp, isa_));
  EXPECT_FALSE(IsSubtype(tp, tm, isa_));
  // Definition 6.1 relates temporal with temporal only; the coercion from
  // temporal(T) to T is a separate mechanism (Section 6.1).
  EXPECT_FALSE(IsSubtype(tm, T("manager"), isa_));
  EXPECT_FALSE(IsSubtype(T("manager"), tm, isa_));
}

TEST_F(SubtypingTest, RecordsSameFieldsCovariant) {
  const Type* sub = types::RecordOf({{"who", T("manager")},
                                     {"when", types::Time()}})
                        .value();
  const Type* super = types::RecordOf({{"who", T("person")},
                                       {"when", types::Time()}})
                          .value();
  EXPECT_TRUE(IsSubtype(sub, super, isa_));
  EXPECT_FALSE(IsSubtype(super, sub, isa_));
  // Different field sets are unrelated (no width subtyping in the paper).
  const Type* wider = types::RecordOf({{"who", T("manager")},
                                       {"when", types::Time()},
                                       {"extra", types::Bool()}})
                          .value();
  EXPECT_FALSE(IsSubtype(wider, super, isa_));
  EXPECT_FALSE(IsSubtype(super, wider, isa_));
}

TEST_F(SubtypingTest, TransitivityOnSamples) {
  const Type* a = types::SetOf(T("manager"));
  const Type* b = types::SetOf(T("employee"));
  const Type* c = types::SetOf(T("person"));
  EXPECT_TRUE(IsSubtype(a, b, isa_));
  EXPECT_TRUE(IsSubtype(b, c, isa_));
  EXPECT_TRUE(IsSubtype(a, c, isa_));
}

TEST_F(SubtypingTest, LubBasics) {
  EXPECT_EQ(LeastUpperBound(types::Integer(), types::Integer(), isa_)
                .value(),
            types::Integer());
  EXPECT_EQ(LeastUpperBound(types::Any(), T("car"), isa_).value(),
            T("car"));
  EXPECT_EQ(LeastUpperBound(T("manager"), T("student"), isa_).value(),
            T("person"));
  EXPECT_EQ(LeastUpperBound(T("manager"), T("employee"), isa_).value(),
            T("employee"));
}

TEST_F(SubtypingTest, LubFailures) {
  EXPECT_FALSE(LeastUpperBound(types::Integer(), types::String(), isa_)
                   .ok());
  // Unrelated hierarchies: no common superclass.
  EXPECT_FALSE(LeastUpperBound(T("person"), T("car"), isa_).ok());
}

TEST_F(SubtypingTest, LubRecursesThroughConstructors) {
  EXPECT_EQ(LeastUpperBound(types::SetOf(T("manager")),
                            types::SetOf(T("student")), isa_)
                .value(),
            types::SetOf(T("person")));
  EXPECT_EQ(LeastUpperBound(types::Temporal(T("manager")).value(),
                            types::Temporal(T("student")).value(), isa_)
                .value(),
            types::Temporal(T("person")).value());
  const Type* ra = types::RecordOf({{"x", T("manager")}}).value();
  const Type* rb = types::RecordOf({{"x", T("student")}}).value();
  EXPECT_EQ(LeastUpperBound(ra, rb, isa_).value(),
            types::RecordOf({{"x", T("person")}}).value());
}

TEST_F(SubtypingTest, LubIsUpperBound) {
  // lub(a,b) is above both arguments whenever it exists.
  std::vector<const Type*> samples = {
      T("person"), T("employee"), T("manager"), T("student"),
      types::SetOf(T("manager")), types::SetOf(T("student")),
      types::Integer(), types::Any()};
  for (const Type* a : samples) {
    for (const Type* b : samples) {
      Result<const Type*> lub = LeastUpperBound(a, b, isa_);
      if (!lub.ok()) continue;
      EXPECT_TRUE(IsSubtype(a, *lub, isa_))
          << a->ToString() << " vs " << (*lub)->ToString();
      EXPECT_TRUE(IsSubtype(b, *lub, isa_))
          << b->ToString() << " vs " << (*lub)->ToString();
      // Symmetric.
      EXPECT_EQ(LeastUpperBound(b, a, isa_).value(), *lub);
    }
  }
}

TEST(IsaGraphTest, DiamondLcs) {
  // Diamond: base <- left, right <- join.
  IsaGraph isa;
  ASSERT_TRUE(isa.AddClass("base", {}).ok());
  ASSERT_TRUE(isa.AddClass("left", {"base"}).ok());
  ASSERT_TRUE(isa.AddClass("right", {"base"}).ok());
  ASSERT_TRUE(isa.AddClass("join", {"left", "right"}).ok());
  EXPECT_EQ(isa.LeastCommonSuperclass("left", "right").value(), "base");
  EXPECT_EQ(isa.LeastCommonSuperclass("join", "left").value(), "left");
  EXPECT_TRUE(isa.IsSubclassOf("join", "base"));
  // Incomparable minimal superclasses: siblings under two roots.
  IsaGraph isa2;
  ASSERT_TRUE(isa2.AddClass("r1", {}).ok());
  ASSERT_TRUE(isa2.AddClass("r2", {}).ok());
  ASSERT_TRUE(isa2.AddClass("x", {"r1", "r2"}).ok());
  ASSERT_TRUE(isa2.AddClass("y", {"r1", "r2"}).ok());
  EXPECT_FALSE(isa2.LeastCommonSuperclass("x", "y").has_value());
}

TEST(IsaGraphTest, HierarchiesAndRoots) {
  IsaGraph isa;
  ASSERT_TRUE(isa.AddClass("person", {}).ok());
  ASSERT_TRUE(isa.AddClass("employee", {"person"}).ok());
  ASSERT_TRUE(isa.AddClass("vehicle", {}).ok());
  EXPECT_EQ(isa.HierarchyId("employee").value(),
            isa.HierarchyId("person").value());
  EXPECT_NE(isa.HierarchyId("vehicle").value(),
            isa.HierarchyId("person").value());
  EXPECT_EQ(isa.Roots().size(), 2u);
  // Unknown classes are errors.
  EXPECT_FALSE(isa.HierarchyId("ghost").ok());
  // Duplicate registration / dangling superclass are rejected.
  EXPECT_FALSE(isa.AddClass("person", {}).ok());
  EXPECT_FALSE(isa.AddClass("robot", {"ghost"}).ok());
}

TEST(IsaGraphTest, MergingHierarchies) {
  IsaGraph isa;
  ASSERT_TRUE(isa.AddClass("a", {}).ok());
  ASSERT_TRUE(isa.AddClass("b", {}).ok());
  EXPECT_NE(isa.HierarchyId("a").value(), isa.HierarchyId("b").value());
  // A class under both connects the components.
  ASSERT_TRUE(isa.AddClass("ab", {"a", "b"}).ok());
  EXPECT_EQ(isa.HierarchyId("a").value(), isa.HierarchyId("b").value());
  EXPECT_EQ(isa.HierarchyId("ab").value(), isa.HierarchyId("a").value());
}

}  // namespace
}  // namespace tchimera
