// End-to-end reconstruction of the paper's running example:
//   Example 3.1/3.2 (types and values), Example 4.1 (class project),
//   Example 4.2 (h_type / s_type), Example 5.1 (object i1),
//   Example 5.2 (h_state / s_state), Example 5.3 (consistency conditions),
//   and the snapshot of Section 5.3.
#include <gtest/gtest.h>

#include "core/db/consistency.h"
#include "core/db/database.h"
#include "core/types/type_parser.h"
#include "core/types/type_registry.h"
#include "core/values/value_parser.h"

namespace tchimera {
namespace {

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // t = 10: the schema of Example 4.1 comes to life.
    ASSERT_TRUE(db_.AdvanceTo(10).ok());
    ClassSpec person;
    person.name = "person";
    ASSERT_TRUE(db_.DefineClass(person).ok());
    ClassSpec task;
    task.name = "task";
    ASSERT_TRUE(db_.DefineClass(task).ok());

    const Type* t_string = types::String();
    ClassSpec project;
    project.name = "project";
    project.attributes = {
        {"name", types::Temporal(t_string).value()},
        {"objective", t_string},
        {"workplan", types::SetOf(types::Object("task"))},
        {"subproject", types::Temporal(types::Object("project")).value()},
        {"participants",
         types::Temporal(types::SetOf(types::Object("person"))).value()},
    };
    project.methods = {{"add-participant",
                        {types::Object("person")},
                        types::Object("project")}};
    project.c_attributes = {{"average-participants", types::Integer()}};
    ASSERT_TRUE(db_.DefineClass(project).ok());

    // t = 20: the objects of Example 5.1.
    ASSERT_TRUE(db_.AdvanceTo(20).ok());
    p2_ = db_.CreateObject("person").value();
    p3_ = db_.CreateObject("person").value();
    t7_ = db_.CreateObject("task").value();
    sub4_ = db_.CreateObject("project",
                             {{"name", Value::String("SUB-A")}})
                .value();
    i1_ = db_.CreateObject(
                 "project",
                 {{"name", Value::String("IDEA")},
                  {"objective", Value::String("Implementation")},
                  {"workplan", Value::Set({Value::OfOid(t7_)})},
                  {"subproject", Value::OfOid(sub4_)},
                  {"participants",
                   Value::Set({Value::OfOid(p2_), Value::OfOid(p3_)})}})
              .value();

    // t = 46: the subproject changes (paper: <[20,45],i4>,<[46,now],i9>).
    ASSERT_TRUE(db_.AdvanceTo(46).ok());
    sub9_ = db_.CreateObject("project",
                             {{"name", Value::String("SUB-B")}})
                .value();
    ASSERT_TRUE(
        db_.UpdateAttribute(i1_, "subproject", Value::OfOid(sub9_)).ok());

    // t = 81: a participant joins (paper: <[20,80],{i2,i3}>,
    // <[81,now],{i2,i3,i8}>).
    ASSERT_TRUE(db_.AdvanceTo(81).ok());
    p8_ = db_.CreateObject("person").value();
    ASSERT_TRUE(db_.UpdateAttribute(
                       i1_, "participants",
                       Value::Set({Value::OfOid(p2_), Value::OfOid(p3_),
                                   Value::OfOid(p8_)}))
                    .ok());

    ASSERT_TRUE(db_.AdvanceTo(100).ok());
  }

  Database db_;
  Oid i1_, p2_, p3_, p8_, t7_, sub4_, sub9_;
};

TEST_F(PaperExampleTest, Example31Types) {
  // The five example types of Example 3.1 are all constructible and
  // round-trip through the parser.
  const char* kTypes[] = {
      "time", "temporal(integer)", "list-of(bool)",
      "temporal(set-of(project))",
      "record-of(task:temporal(project),startbudget:real,endbudget:real)"};
  for (const char* text : kTypes) {
    Result<const Type*> t = ParseType(text);
    ASSERT_TRUE(t.ok()) << text << ": " << t.status();
    EXPECT_EQ(ParseType((*t)->ToString()).value(), *t);
  }
}

TEST_F(PaperExampleTest, Example32Values) {
  // {<[5,10],12>,<[11,30],5>} in [[temporal(integer)]]_t.
  Result<Value> f = ParseValue("{<[5,10],12>,<[11,30],5>}");
  ASSERT_TRUE(f.ok()) << f.status();
  const Type* tint = types::Temporal(types::Integer()).value();
  EXPECT_TRUE(IsLegalValue(*f, tint, db_.now(), db_.typing_context()));

  // (name:'Bob', score:{<[1,100],40>,<[101,200],70>}) in
  // [[record-of(name:string,score:temporal(integer))]]_t.
  Result<Value> rec =
      ParseValue("(name:'Bob',score:{<[1,100],40>,<[101,200],70>})");
  ASSERT_TRUE(rec.ok()) << rec.status();
  const Type* rtype =
      ParseType("record-of(name:string,score:temporal(integer))").value();
  EXPECT_TRUE(IsLegalValue(*rec, rtype, db_.now(), db_.typing_context()));
}

TEST_F(PaperExampleTest, Example41ClassSignature) {
  const ClassDef* project = db_.GetClass("project");
  ASSERT_NE(project, nullptr);
  // The class is static: its only c-attribute is non-temporal.
  EXPECT_EQ(project->kind(), ClassKind::kStatic);
  EXPECT_EQ(project->lifespan().start(), 10);
  EXPECT_TRUE(project->lifespan().is_ongoing());
  EXPECT_EQ(project->metaclass(), "m-project");
  ASSERT_NE(project->FindMethod("add-participant"), nullptr);
  EXPECT_EQ(project->FindMethod("add-participant")->ToString(),
            "add-participant: person -> project");
  // The history record carries the c-attribute plus ext / proper-ext.
  Value history = project->History();
  ASSERT_EQ(history.kind(), ValueKind::kRecord);
  EXPECT_NE(history.FieldValue("average-participants"), nullptr);
  EXPECT_NE(history.FieldValue("ext"), nullptr);
  EXPECT_NE(history.FieldValue("proper-ext"), nullptr);
}

TEST_F(PaperExampleTest, Example42DerivedTypes) {
  const ClassDef* project = db_.GetClass("project");
  const Type* h = project->HistoricalType();
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->ToString(),
            "record-of(name:string,participants:set-of(person),"
            "subproject:project)");
  const Type* s = project->StaticType();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->ToString(),
            "record-of(objective:string,workplan:set-of(task))");
}

TEST_F(PaperExampleTest, Example51ObjectState) {
  const Object* obj = db_.GetObject(i1_);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->lifespan().start(), 20);
  EXPECT_TRUE(obj->lifespan().is_ongoing());
  EXPECT_TRUE(obj->IsHistorical());
  EXPECT_EQ(obj->CurrentClass().value(), "project");
  // The subproject history matches the paper's shape.
  const Value* sub = obj->Attribute("subproject");
  ASSERT_NE(sub, nullptr);
  ASSERT_EQ(sub->kind(), ValueKind::kTemporal);
  const auto& segs = sub->AsTemporal().segments();
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].interval, Interval(20, 45));
  EXPECT_EQ(segs[0].value, Value::OfOid(sub4_));
  EXPECT_EQ(segs[1].interval, Interval::FromUntilNow(46));
  EXPECT_EQ(segs[1].value, Value::OfOid(sub9_));
}

TEST_F(PaperExampleTest, Example52States) {
  // s_state(i1) = (objective:'Implementation', workplan:{i7}).
  Value s_state = db_.SStateOf(i1_).value();
  EXPECT_EQ(*s_state.FieldValue("objective"),
            Value::String("Implementation"));
  EXPECT_EQ(*s_state.FieldValue("workplan"),
            Value::Set({Value::OfOid(t7_)}));
  // h_state(i1, 50) = (name:'IDEA', subproject:i9,
  // participants:{i2,i3}).
  Value h_state = db_.HStateOf(i1_, 50).value();
  EXPECT_EQ(*h_state.FieldValue("name"), Value::String("IDEA"));
  EXPECT_EQ(*h_state.FieldValue("subproject"), Value::OfOid(sub9_));
  EXPECT_EQ(*h_state.FieldValue("participants"),
            Value::Set({Value::OfOid(p2_), Value::OfOid(p3_)}));
}

TEST_F(PaperExampleTest, Example53Consistency) {
  // The database satisfies every consistency notion and invariant.
  Status s = CheckDatabaseConsistency(db_);
  EXPECT_TRUE(s.ok()) << s;
  // And object i1 specifically is a consistent instance of project.
  EXPECT_TRUE(CheckObjectConsistency(db_, i1_).ok());
}

TEST_F(PaperExampleTest, Section53Snapshot) {
  // snapshot(i1, now) is defined and projects every attribute...
  Value snap = db_.SnapshotOf(i1_, kNow).value();
  EXPECT_EQ(*snap.FieldValue("name"), Value::String("IDEA"));
  EXPECT_EQ(*snap.FieldValue("objective"), Value::String("Implementation"));
  EXPECT_EQ(*snap.FieldValue("subproject"), Value::OfOid(sub9_));
  EXPECT_EQ(*snap.FieldValue("participants"),
            Value::Set({Value::OfOid(p2_), Value::OfOid(p3_),
                        Value::OfOid(p8_)}));
  // ...but snapshot(i1, t) for t != now is undefined, because i1 has
  // static attributes (Section 5.3).
  Result<Value> past = db_.SnapshotOf(i1_, 50);
  EXPECT_FALSE(past.ok());
  EXPECT_EQ(past.status().code(), StatusCode::kTemporalError);
}

TEST_F(PaperExampleTest, Table3Functions) {
  // pi(project, 30) = {i4, i1} (both projects existed at 30).
  std::vector<Oid> extent = db_.Pi("project", 30);
  EXPECT_EQ(extent.size(), 2u);
  // o_lifespan / m_lifespan.
  EXPECT_EQ(db_.OLifespan(i1_).value(), Interval::FromUntilNow(20));
  IntervalSet member = db_.MLifespan(i1_, "project").value();
  EXPECT_TRUE(member.Contains(20));
  EXPECT_TRUE(member.Contains(db_.now()));
  EXPECT_FALSE(member.Contains(19));
  // ref(i1, 30): workplan task, subproject i4, participants p2 p3.
  std::vector<Oid> refs = db_.Ref(i1_, 30).value();
  EXPECT_EQ(refs.size(), 4u);
  // ref(i1, now): subproject switched to i9 and p8 joined.
  refs = db_.Ref(i1_, kNow).value();
  EXPECT_EQ(refs.size(), 5u);
}

}  // namespace
}  // namespace tchimera
