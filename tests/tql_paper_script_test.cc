// The paper's running example, expressed entirely in TQL: the textual
// language is expressive enough to reproduce every state of Examples 4.1,
// 5.1, 5.2, 5.3 and the Section 5.3 snapshot — the counterpart of
// paper_examples_test.cc, which drives the same scenario through the C++
// API.
#include <gtest/gtest.h>

#include "core/db/database.h"
#include "query/interpreter.h"

namespace tchimera {
namespace {

class TqlPaperScriptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    interp_ = std::make_unique<Interpreter>(&db_);
    // t = 10: the schema of Example 4.1, verbatim in TQL.
    Must("advance to 10");
    Must("define class person end");
    Must("define class task end");
    Must(
        "define class project "
        "attributes name: temporal(string), objective: string, "
        "workplan: set-of(task), subproject: temporal(project), "
        "participants: temporal(set-of(person)) "
        "methods add-participant(person): project "
        "c-attributes average-participants: integer "
        "end");
    // t = 20: the objects of Example 5.1. Oids are assigned sequentially:
    // i1,i2 persons; i3 task; i4 subproject; i5 the IDEA project.
    Must("advance to 20");
    Must("create person");   // i1
    Must("create person");   // i2
    Must("create task");     // i3
    Must("create project (name: 'SUB-A')");  // i4
    Must(
        "create project (name: 'IDEA', objective: 'Implementation', "
        "workplan: {i3}, subproject: i4, participants: {i1, i2})");  // i5
    // t = 46: the subproject changes.
    Must("advance to 46");
    Must("create project (name: 'SUB-B')");  // i6
    Must("update i5 set subproject = i6");
    // t = 81: a participant joins.
    Must("advance to 81");
    Must("create person");  // i7
    Must("update i5 set participants = {i1, i2, i7}");
    Must("advance to 100");
  }

  std::string Must(const std::string& stmt) {
    Result<std::string> out = interp_->Execute(stmt);
    EXPECT_TRUE(out.ok()) << stmt << ": " << out.status();
    return out.value_or("");
  }

  Database db_;
  std::unique_ptr<Interpreter> interp_;
};

TEST_F(TqlPaperScriptTest, Example51Histories) {
  EXPECT_EQ(Must("history i5.subproject"),
            "{<[20,45],i4>,<[46,now],i6>}");
  EXPECT_EQ(Must("history i5.participants"),
            "{<[20,80],{i1,i2}>,<[81,now],{i1,i2,i7}>}");
  EXPECT_EQ(Must("history i5.name"), "{<[20,now],'IDEA'>}");
}

TEST_F(TqlPaperScriptTest, Example52StatesThroughQueries) {
  // h_state(i5, 50) components, via AT-queries.
  EXPECT_EQ(Must("select x.name, x.subproject, x.participants "
                 "from x in project at 50 where videntical(x, i5)"),
            "'IDEA' | i6 | {i1,i2}");
  // s_state components are instant-independent.
  EXPECT_EQ(Must("select x.objective, x.workplan from x in project "
                 "where videntical(x, i5)"),
            "'Implementation' | {i3}");
}

TEST_F(TqlPaperScriptTest, Section53Snapshot) {
  EXPECT_EQ(Must("snapshot i5"),
            "(name:'IDEA',objective:'Implementation',"
            "participants:{i1,i2,i7},subproject:i6,workplan:{i3})");
  // The past snapshot is undefined (static attributes, Section 5.3).
  EXPECT_FALSE(interp_->Execute("snapshot i5 at 50").ok());
}

TEST_F(TqlPaperScriptTest, Example53ConsistencyViaCheck) {
  EXPECT_EQ(Must("check"), "consistent");
}

TEST_F(TqlPaperScriptTest, TemporalQuestions) {
  // Which project did i1 participate in at t=30?
  EXPECT_EQ(Must("select x from x in project at 30 where "
                 "i1 in x.participants"),
            "i5");
  // When was i4 the subproject of i5?
  EXPECT_EQ(Must("when videntical(i5.subproject, i4)"), "{[20,45]}");
  // When was i7 on the project?
  EXPECT_EQ(Must("when i7 in i5.participants"), "{[81,100]}");
}

TEST_F(TqlPaperScriptTest, ExtentsOverTime) {
  // pi(project, t): 1 project at 20- (SUB-A created just before IDEA),
  // 3 projects from 46.
  EXPECT_EQ(Must("select x from x in project at 30"), "i4\ni5");
  EXPECT_EQ(Must("select x from x in project at 46"), "i4\ni5\ni6");
  EXPECT_EQ(Must("select x from x in project at 19"), "(no results)");
}

}  // namespace
}  // namespace tchimera
