// Tests for the workload generators: determinism, schema installation,
// and model-consistency of generated populations.
#include <gtest/gtest.h>

#include "core/db/consistency.h"
#include "storage/serializer.h"
#include "workload/generator.h"
#include "workload/project_schema.h"

namespace tchimera {
namespace {

TEST(ProjectSchemaTest, InstallsTheRunningExampleClasses) {
  Database db;
  ASSERT_TRUE(InstallProjectSchema(&db).ok());
  for (const char* name :
       {"person", "employee", "manager", "task", "project"}) {
    EXPECT_NE(db.GetClass(name), nullptr) << name;
  }
  EXPECT_TRUE(db.isa().IsSubclassOf("manager", "person"));
  EXPECT_FALSE(db.isa().IsSubclassOf("task", "person"));
  // Installing twice fails cleanly (classes already exist).
  EXPECT_FALSE(InstallProjectSchema(&db).ok());
}

TEST(GeneratorTest, PopulationIsDeterministic) {
  PopulationConfig config;
  config.seed = 99;
  config.persons = 10;
  config.projects = 3;
  config.timesteps = 8;
  config.updates_per_step = 5;
  config.migration_rate = 0.5;
  Database db1, db2;
  ASSERT_TRUE(PopulateDatabase(&db1, config).ok());
  ASSERT_TRUE(PopulateDatabase(&db2, config).ok());
  // Bit-identical serialized states.
  EXPECT_EQ(SaveDatabaseToString(db1).value(),
            SaveDatabaseToString(db2).value());
  // A different seed diverges.
  Database db3;
  config.seed = 100;
  ASSERT_TRUE(PopulateDatabase(&db3, config).ok());
  EXPECT_NE(SaveDatabaseToString(db1).value(),
            SaveDatabaseToString(db3).value());
}

TEST(GeneratorTest, PopulationCountsMatchConfig) {
  PopulationConfig config;
  config.persons = 12;
  config.projects = 4;
  config.tasks_per_project = 2;
  config.timesteps = 6;
  config.updates_per_step = 3;
  Database db;
  Population pop = PopulateDatabase(&db, config).value();
  EXPECT_EQ(pop.persons.size(), 12u);
  EXPECT_EQ(pop.projects.size(), 4u);
  EXPECT_EQ(pop.tasks.size(), 8u);
  EXPECT_EQ(pop.updates_applied, 18u);
  EXPECT_EQ(db.now(), 6);
  EXPECT_EQ(db.object_count(), 24u);
}

TEST(GeneratorTest, StoreOpsAreDeterministicAndOrdered) {
  StoreWorkloadConfig config;
  config.objects = 5;
  config.attributes = 4;
  config.updates_per_object = 10;
  std::vector<StoreOp> a = GenerateStoreOps(config);
  std::vector<StoreOp> b = GenerateStoreOps(config);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), 5u + 50u);
  TimePoint last = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].object_index, b[i].object_index);
    EXPECT_EQ(a[i].attr, b[i].attr);
    EXPECT_EQ(a[i].value, b[i].value);
    EXPECT_EQ(a[i].t, b[i].t);
    EXPECT_GE(a[i].t, last);  // timestamps never go backwards
    last = a[i].t;
  }
}

TEST(GeneratorTest, StaticAttributeNamesKeepHotAttributeTemporal) {
  StoreWorkloadConfig config;
  config.attributes = 8;
  config.static_attr_fraction = 0.5;
  std::set<std::string> statics = StoreStaticAttributeNames(config);
  EXPECT_EQ(statics.size(), 4u);
  EXPECT_EQ(statics.count("a0"), 0u);
  EXPECT_EQ(statics.count("a7"), 1u);
}

TEST(GeneratorTest, RngHelpersAreDeterministic) {
  Rng a(5), b(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Uniform(0, 100), b.Uniform(0, 100));
  }
  Rng c(5);
  EXPECT_EQ(Rng(5).Name(8), c.Name(8));
  int heads = 0;
  Rng d(123);
  for (int i = 0; i < 1000; ++i) heads += d.Chance(0.5);
  EXPECT_GT(heads, 400);
  EXPECT_LT(heads, 600);
}

}  // namespace
}  // namespace tchimera
