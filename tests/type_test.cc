// Unit tests for the T_Chimera type system (Section 3.1): interning,
// Definition 3.3's restriction on temporal(), T^-, and the type parser.
#include <gtest/gtest.h>

#include "core/types/type_parser.h"
#include "core/types/type_registry.h"

namespace tchimera {
namespace {

TEST(TypeTest, InterningGivesPointerEquality) {
  EXPECT_EQ(types::Integer(), types::Integer());
  EXPECT_EQ(types::Object("person"), types::Object("person"));
  EXPECT_NE(types::Object("person"), types::Object("employee"));
  EXPECT_EQ(types::SetOf(types::Integer()), types::SetOf(types::Integer()));
  EXPECT_NE(types::SetOf(types::Integer()), types::ListOf(types::Integer()));
  EXPECT_EQ(types::Temporal(types::Real()).value(),
            types::Temporal(types::Real()).value());
}

TEST(TypeTest, BasicValueTypeClassification) {
  for (const Type* t : {types::Integer(), types::Real(), types::Bool(),
                        types::Char(), types::String(), types::Time()}) {
    EXPECT_TRUE(t->IsBasicValueType()) << t->ToString();
    EXPECT_TRUE(t->IsChimeraType()) << t->ToString();
  }
  EXPECT_FALSE(types::Any()->IsBasicValueType());
  EXPECT_FALSE(types::Any()->IsChimeraType());
  EXPECT_FALSE(types::Object("c")->IsBasicValueType());
  EXPECT_TRUE(types::Object("c")->IsChimeraType());
}

TEST(TypeTest, RecordCanonicalizesFieldOrder) {
  const Type* a =
      types::RecordOf({{"b", types::Integer()}, {"a", types::String()}})
          .value();
  const Type* b =
      types::RecordOf({{"a", types::String()}, {"b", types::Integer()}})
          .value();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->ToString(), "record-of(a:string,b:integer)");
  EXPECT_EQ(a->FieldType("a"), types::String());
  EXPECT_EQ(a->FieldType("b"), types::Integer());
  EXPECT_EQ(a->FieldType("zzz"), nullptr);
}

TEST(TypeTest, RecordRejectsDuplicatesAndBadNames) {
  EXPECT_FALSE(
      types::RecordOf({{"a", types::Integer()}, {"a", types::Real()}})
          .ok());
  EXPECT_FALSE(types::RecordOf({{"9bad", types::Integer()}}).ok());
  EXPECT_FALSE(types::RecordOf({{"a", nullptr}}).ok());
}

TEST(TypeTest, TemporalRejectsNestedTemporal) {
  // Definition 3.3: temporal() applies to Chimera types only.
  const Type* t_int = types::Temporal(types::Integer()).value();
  EXPECT_FALSE(types::Temporal(t_int).ok());
  EXPECT_FALSE(types::Temporal(types::SetOf(t_int)).ok());
  const Type* rec = types::RecordOf({{"x", t_int}}).value();
  EXPECT_FALSE(types::Temporal(rec).ok());
  // But T_Chimera types may nest temporal under other constructors
  // (Definition 3.4).
  EXPECT_FALSE(types::SetOf(t_int)->IsChimeraType());
  EXPECT_TRUE(types::SetOf(t_int)->ContainsTemporal());
}

TEST(TypeTest, TemporalOfTimeIsLegal) {
  // `time` joined BVT in T_Chimera, so temporal(time) is well-formed.
  EXPECT_TRUE(types::Temporal(types::Time()).ok());
}

TEST(TypeTest, TMinus) {
  const Type* t = types::Temporal(types::SetOf(types::Object("project")))
                      .value();
  EXPECT_EQ(types::TMinus(t).value(),
            types::SetOf(types::Object("project")));
  // T^- is only defined on temporal types.
  Result<const Type*> bad = types::TMinus(types::Integer());
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
}

class TypeParserRoundTripTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(TypeParserRoundTripTest, RoundTrips) {
  Result<const Type*> t = ParseType(GetParam());
  ASSERT_TRUE(t.ok()) << GetParam() << ": " << t.status();
  Result<const Type*> again = ParseType((*t)->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *t) << "canonical form: " << (*t)->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, TypeParserRoundTripTest,
    ::testing::Values(
        "integer", "real", "bool", "char", "string", "time", "person",
        "set-of(integer)", "list-of(person)", "temporal(integer)",
        "temporal(set-of(project))",
        "record-of(task:temporal(project),startbudget:real,endbudget:real)",
        "set-of(temporal(record-of(a:integer,b:set-of(person))))",
        "record-of(x:record-of(y:record-of(z:integer)))",
        "  record-of( a : integer , b : string )  ",
        "list-of(list-of(list-of(bool)))"));

TEST(TypeParserTest, RejectsMalformedTypes) {
  EXPECT_FALSE(ParseType("").ok());
  EXPECT_FALSE(ParseType("set-of(").ok());
  EXPECT_FALSE(ParseType("set-of()").ok());
  EXPECT_FALSE(ParseType("record-of(a integer)").ok());
  EXPECT_FALSE(ParseType("record-of(a:integer,a:real)").ok());
  EXPECT_FALSE(ParseType("integer garbage").ok());
  EXPECT_FALSE(ParseType("temporal(temporal(integer))").ok());
  EXPECT_FALSE(ParseType("123").ok());
}

TEST(TypeParserTest, BooleanAndCharacterAliases) {
  EXPECT_EQ(ParseType("boolean").value(), types::Bool());
  EXPECT_EQ(ParseType("character").value(), types::Char());
}

}  // namespace
}  // namespace tchimera
