// tchimera_serve: the socket server front end.
//
//   tchimera_serve [flags] [DBDIR]
//
//     DBDIR                persist to DBDIR/{snapshot.tchdb,journal.tql}
//                          (recovered on start; omitted = in-memory)
//     --host=H             listen address        (default 127.0.0.1)
//     --port=P             listen port           (default 7411; 0 = ephemeral)
//     --workers=N          session pool size     (default 4)
//     --max-pending=N      request-queue admission limit   (default 256)
//     --max-backlog=N      group-commit backlog admission limit (default 1024)
//     --retry-budget=N     optimistic attempts per request (default 5)
//     --port-file=PATH     write the bound port to PATH once listening
//                          (how tests and benches find an ephemeral port)
//
// Assembly order matters and mirrors examples/temporal_repl.cpp: recover
// (snapshot, definitions, journals, audit) through a session *before*
// the commit sink is installed — replay must not re-journal — then open
// the sink at the recovered epoch, install it, and only then serve.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "core/db/database.h"
#include "query/session.h"
#include "server/net.h"
#include "server/server.h"
#include "storage/group_commit.h"
#include "storage/recovery.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using tchimera::Database;
  using tchimera::Engine;
  using tchimera::GroupCommitJournal;
  using tchimera::Result;
  using tchimera::Server;
  using tchimera::ServerOptions;
  using tchimera::Session;
  using tchimera::Status;

  tchimera::IgnoreSigpipe();

  ServerOptions options;
  options.port = 7411;
  std::string dir_arg, port_file, value;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--host", &value)) {
      options.host = value;
    } else if (ParseFlag(argv[i], "--port", &value)) {
      options.port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      options.worker_threads = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--max-pending", &value)) {
      options.max_pending_requests =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--max-backlog", &value)) {
      options.max_commit_backlog =
          static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--retry-budget", &value)) {
      options.conflict_retry_budget = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--port-file", &value)) {
      port_file = value;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    } else {
      dir_arg = argv[i];
    }
  }

  std::string snapshot_path, journal_path;
  if (!dir_arg.empty()) {
    std::filesystem::path dir(dir_arg);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    snapshot_path = (dir / "snapshot.tchdb").string();
    journal_path = (dir / "journal.tql").string();
  }

  tchimera::RecoveryManager recovery(snapshot_path, journal_path);
  tchimera::RecoveryStats stats;
  std::unique_ptr<Database> db = std::make_unique<Database>();
  if (!journal_path.empty()) {
    Result<std::unique_ptr<Database>> loaded = recovery.LoadSnapshot(&stats);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", snapshot_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    db = std::move(loaded).value();
  }

  Engine engine(std::move(db));
  GroupCommitJournal sink;
  if (!journal_path.empty()) {
    Session boot = engine.OpenSession();
    Status replayed = Status::OK();
    for (const std::string& definition : recovery.snapshot_definitions()) {
      replayed = boot.Execute(definition).status();
      if (!replayed.ok()) break;
    }
    if (replayed.ok()) {
      replayed = recovery.ReplayJournals(
          [&boot](const std::string& statement) {
            return boot.Execute(statement).status();
          },
          &stats);
    }
    for (const std::string& note : stats.notes) {
      std::fprintf(stderr, "recovery: %s\n", note.c_str());
    }
    if (!replayed.ok()) {
      std::fprintf(stderr, "journal replay failed: %s\n",
                   replayed.ToString().c_str());
      return 1;
    }
    Status audit = tchimera::RecoveryManager::Audit(
        &engine.writer_db(), tchimera::AuditMode::kFail, &stats);
    if (!audit.ok()) {
      std::fprintf(stderr, "post-recovery audit failed: %s\n",
                   audit.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "recovered: %zu objects, %zu statement(s)\n",
                 engine.writer_db().object_count(),
                 stats.statements_applied);
    tchimera::JournalOptions journal_options;
    journal_options.epoch = stats.next_epoch;
    Status opened = sink.Open(journal_path, journal_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.ToString().c_str());
      return 1;
    }
    engine.set_commit_sink(&sink);
    options.commit_backlog = [&sink]() -> uint64_t {
      // Read durable first: reading enqueued first could observe a value
      // smaller than a durable read a moment later and underflow.
      uint64_t d = sink.durable();
      uint64_t e = sink.enqueued();
      return e > d ? e - d : 0;
    };
  }

  // Block the shutdown signals BEFORE Start() so every thread the server
  // spawns inherits the mask; sigwait below then consumes them
  // synchronously on the main thread — no async handlers, no EINTR
  // storms in the workers.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  tchimera::TryRaiseNofileLimit(16384);
  Server server(&engine, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    // Write-then-rename so a watcher never reads a half-written port.
    std::string tmp = port_file + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
      std::fclose(f);
      (void)std::rename(tmp.c_str(), port_file.c_str());
    }
  }
  std::fprintf(stderr, "tchimera_serve listening on %s:%u (%s)\n",
               options.host.c_str(), static_cast<unsigned>(server.port()),
               journal_path.empty() ? "in-memory" : dir_arg.c_str());

  // Park until SIGINT/SIGTERM arrives (mask installed above).
  int sig = 0;
  (void)sigwait(&set, &sig);
  std::fprintf(stderr, "signal %d: shutting down\n", sig);

  server.Stop();
  if (sink.is_open()) sink.Close();
  return 0;
}
