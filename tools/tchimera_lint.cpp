// tchimera-lint: static analysis for T_Chimera schema / TQL script files.
//
//   tchimera_lint [--json] [--schema-only] [--no-flow] [--werror]
//                 [--fix | --fix-dry-run] file.tql...
//
// Pipeline per file:
//   1. parse the whole script (parse failures are TC010);
//   2. run the schema analyzer over every DEFINE CLASS in the script at
//      once (forward references allowed, all findings reported);
//   3. unless --schema-only, replay the script against a scratch
//      in-memory database so the clock, classes and objects are what they
//      would be at runtime, linting every SELECT / WHEN statement just
//      before its turn (TC1xx) and reporting statements that fail to
//      execute (TC111);
//   4. unless --schema-only or --no-flow, run the flow-sensitive pass
//      (TC2xx: definite initialization, static write conflicts, windows
//      empty under the propagated clock).
//
// --fix applies the machine-applicable fix-its (analysis/fixer.h) and
// re-lints the rewritten text to a fixpoint: fixes that overlapped (and
// were skipped) in one round are regenerated with fresh offsets and
// applied in the next, until a round changes nothing. The reported
// findings are those of the final, fixed text. --fix-dry-run runs the
// same loop but leaves the file untouched, printing the rewritten text's
// destination instead.
//
// Exit status: 1 if any error-severity finding was produced (or any
// finding at all under --werror), 0 otherwise — so the binary can gate CI.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "server/net.h"
#include "analysis/fixer.h"
#include "analysis/lint_driver.h"

namespace tchimera {
namespace {

struct Options {
  bool json = false;
  bool schema_only = false;
  bool no_flow = false;
  bool werror = false;
  bool fix = false;          // rewrite files in place
  bool fix_dry_run = false;  // run the fix loop, discard the result
  std::vector<std::string> files;
};

// Overlapping fix-its are resolved first-wins per round, so one round is
// not always enough; a fixpoint is, and on sane input arrives within a
// couple of rounds. The bound only guards against a pathological
// non-idempotent fix (which would be a bug in an analyzer).
constexpr int kMaxFixRounds = 8;

// Lints `source`, leaving resolved, sorted diagnostics in `diags`.
void LintOnce(const std::string& file, const std::string& source,
              const Options& opts, DiagnosticEngine* diags) {
  LintOptions lint_opts;
  lint_opts.schema_only = opts.schema_only;
  lint_opts.no_flow = opts.no_flow;
  LintTqlScript(source, lint_opts, diags);
  diags->ResolveLocations(file, source);
  diags->SortByLocation();
}

// The --fix loop for one file: returns the fixed text, the final round's
// diagnostics, and the number of rounds that changed anything.
struct FixOutcome {
  std::string text;
  size_t rounds_with_edits = 0;
  size_t fixes_applied = 0;
  std::vector<std::string> skipped_reasons;
};

FixOutcome FixToFixpoint(const std::string& file, std::string source,
                         const Options& opts, DiagnosticEngine* final_diags) {
  FixOutcome out;
  bool at_fixpoint = false;
  for (int round = 0; round < kMaxFixRounds; ++round) {
    DiagnosticEngine diags;
    LintOnce(file, source, opts, &diags);
    FixResult fixed = ApplyFixIts(source, diags.diagnostics());
    for (std::string& reason : fixed.skipped_reasons) {
      out.skipped_reasons.push_back(std::move(reason));
    }
    if (!fixed.changed_anything()) {
      // Fixpoint: report the final text's findings.
      *final_diags = std::move(diags);
      at_fixpoint = true;
      break;
    }
    out.fixes_applied += fixed.applied;
    ++out.rounds_with_edits;
    source = std::move(fixed.text);
  }
  if (!at_fixpoint) {
    // Round budget exhausted (an analyzer emitted a non-idempotent fix);
    // still report the findings of the text we ended up with.
    LintOnce(file, source, opts, final_diags);
  }
  out.text = std::move(source);
  return out;
}

int Run(const Options& opts) {
  std::vector<Diagnostic> all;
  size_t total_fixes = 0;
  for (const std::string& file : opts.files) {
    DiagnosticEngine diags;
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      diags.Report("TC011", SourceLocation::kNoOffset, "cannot open file");
      diags.ResolveLocations(file, "");
      for (const Diagnostic& d : diags.diagnostics()) all.push_back(d);
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string source = buf.str();

    if (opts.fix || opts.fix_dry_run) {
      FixOutcome outcome = FixToFixpoint(file, source, opts, &diags);
      total_fixes += outcome.fixes_applied;
      for (const std::string& reason : outcome.skipped_reasons) {
        std::fprintf(stderr, "%s: skipped fix: %s\n", file.c_str(),
                     reason.c_str());
      }
      if (outcome.text != source) {
        if (opts.fix) {
          std::ofstream outf(file, std::ios::binary | std::ios::trunc);
          if (!outf) {
            diags.Report("TC011", SourceLocation::kNoOffset,
                         "cannot write fixed file");
            diags.ResolveLocations(file, source);
            diags.SortByLocation();
          } else {
            outf << outcome.text;
          }
        } else {
          std::fprintf(stderr, "%s: %zu fix(es) available (dry run, file "
                       "unchanged)\n",
                       file.c_str(), outcome.fixes_applied);
        }
      }
    } else {
      LintOnce(file, source, opts, &diags);
    }
    for (const Diagnostic& d : diags.diagnostics()) all.push_back(d);
  }

  size_t errors = 0;
  for (const Diagnostic& d : all) {
    if (d.severity == Severity::kError) ++errors;
  }
  if (opts.json) {
    std::fputs(RenderJson(all).c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::fputs(RenderHuman(all).c_str(), stdout);
    if (opts.fix || opts.fix_dry_run) {
      std::fprintf(stdout,
                   "%zu file(s), %zu finding(s) remaining, %zu error(s), "
                   "%zu fix(es) applied\n",
                   opts.files.size(), all.size(), errors, total_fixes);
    } else {
      std::fprintf(stdout, "%zu file(s), %zu finding(s), %zu error(s)\n",
                   opts.files.size(), all.size(), errors);
    }
  }
  if (errors > 0) return 1;
  if (opts.werror && !all.empty()) return 1;
  return 0;
}

constexpr char kUsage[] =
    "usage: tchimera_lint [--json] [--schema-only] [--no-flow] [--werror] "
    "[--fix | --fix-dry-run] file.tql...\n";

}  // namespace
}  // namespace tchimera

int main(int argc, char** argv) {
  // A lint run piped into `head` must exit with a write error, not die
  // on SIGPIPE mid-report.
  tchimera::IgnoreSigpipe();
  tchimera::Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--schema-only") {
      opts.schema_only = true;
    } else if (arg == "--no-flow") {
      opts.no_flow = true;
    } else if (arg == "--werror") {
      opts.werror = true;
    } else if (arg == "--fix") {
      opts.fix = true;
    } else if (arg == "--fix-dry-run") {
      opts.fix_dry_run = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(tchimera::kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    } else {
      opts.files.push_back(std::move(arg));
    }
  }
  if (opts.fix && opts.fix_dry_run) {
    std::fprintf(stderr, "--fix and --fix-dry-run are mutually exclusive\n");
    return 2;
  }
  if (opts.files.empty()) {
    std::fputs(tchimera::kUsage, stderr);
    return 2;
  }
  return tchimera::Run(opts);
}
