// tchimera-lint: static analysis for T_Chimera schema / TQL script files.
//
//   tchimera_lint [--json] [--schema-only] [--werror] file.tql...
//
// Pipeline per file:
//   1. parse the whole script (parse failures are TC010);
//   2. run the schema analyzer over every DEFINE CLASS in the script at
//      once (forward references allowed, all findings reported);
//   3. unless --schema-only, replay the script against a scratch
//      in-memory database so the clock, classes and objects are what they
//      would be at runtime, linting every SELECT / WHEN statement just
//      before its turn (TC1xx) and reporting statements that fail to
//      execute (TC111).
//
// Exit status: 1 if any error-severity finding was produced (or any
// finding at all under --werror), 0 otherwise — so the binary can gate CI.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/lint_driver.h"

namespace tchimera {
namespace {

struct Options {
  bool json = false;
  bool schema_only = false;
  bool werror = false;
  std::vector<std::string> files;
};

int Run(const Options& opts) {
  std::vector<Diagnostic> all;
  for (const std::string& file : opts.files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      Diagnostic d;
      d.code = "TC011";
      d.severity = Severity::kError;
      d.message = "cannot open file";
      d.location.file = file;
      all.push_back(std::move(d));
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string source = buf.str();

    DiagnosticEngine diags;
    LintOptions lint_opts;
    lint_opts.schema_only = opts.schema_only;
    LintTqlScript(source, lint_opts, &diags);
    diags.ResolveLocations(file, source);
    diags.SortByLocation();
    for (const Diagnostic& d : diags.diagnostics()) all.push_back(d);
  }

  size_t errors = 0;
  for (const Diagnostic& d : all) {
    if (d.severity == Severity::kError) ++errors;
  }
  if (opts.json) {
    std::fputs(RenderJson(all).c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::fputs(RenderHuman(all).c_str(), stdout);
    std::fprintf(stdout, "%zu file(s), %zu finding(s), %zu error(s)\n",
                 opts.files.size(), all.size(), errors);
  }
  if (errors > 0) return 1;
  if (opts.werror && !all.empty()) return 1;
  return 0;
}

}  // namespace
}  // namespace tchimera

int main(int argc, char** argv) {
  tchimera::Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--schema-only") {
      opts.schema_only = true;
    } else if (arg == "--werror") {
      opts.werror = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stdout,
                   "usage: tchimera_lint [--json] [--schema-only] "
                   "[--werror] file.tql...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    } else {
      opts.files.push_back(std::move(arg));
    }
  }
  if (opts.files.empty()) {
    std::fprintf(stderr,
                 "usage: tchimera_lint [--json] [--schema-only] [--werror] "
                 "file.tql...\n");
    return 2;
  }
  return tchimera::Run(opts);
}
