// tchimera-recover: offline inspection and repair for a T_Chimera
// database directory (the snapshot.tchdb / journal.tql pair the REPL and
// embedders write).
//
//   tchimera_recover inspect <dir>   report snapshot + journal health
//   tchimera_recover verify  <dir>   dry-run full recovery with audit;
//                                    exit 1 if the directory cannot be
//                                    recovered to a consistent database
//   tchimera_recover salvage <dir>   quarantine torn v2 journal tails to
//                                    <journal>.corrupt (what recovery
//                                    would do, without replaying)
//   tchimera_recover verify-replica <replica-dir> <primary-dir>
//                                    recover both directories and compare
//                                    state hashes: exit 0 when the
//                                    replica's replayed copy of the
//                                    shipped journal matches the primary,
//                                    1 on divergence, 2 when the replica
//                                    merely lags (a resync/drain away
//                                    from comparable)
//
// Nothing here ever mutates the snapshot; `salvage` only moves corrupt
// journal bytes aside, which is information-preserving.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_fs.h"
#include "server/net.h"
#include "storage/deserializer.h"
#include "storage/journal.h"
#include "storage/recovery.h"
#include "storage/serializer.h"
#include "triggers/trigger.h"

namespace tchimera {
namespace {

constexpr const char* kSnapshotName = "snapshot.tchdb";
constexpr const char* kJournalName = "journal.tql";

// The journal files of `dir` in replay order: rotated epochs ascending,
// then the live journal.
std::vector<std::string> JournalFiles(const std::string& dir) {
  std::vector<std::string> files;
  auto names = FileSystem::Default()->ListDirectory(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      const std::string prefix = std::string(kJournalName) + ".e";
      if (name.size() > prefix.size() && name.rfind(prefix, 0) == 0 &&
          name.find_first_not_of("0123456789", prefix.size()) ==
              std::string::npos) {
        files.push_back(dir + "/" + name);
      }
    }
  }
  std::sort(files.begin(), files.end(),
            [](const std::string& a, const std::string& b) {
              return a.size() != b.size() ? a.size() < b.size() : a < b;
            });
  std::string live = dir + "/" + kJournalName;
  if (FileSystem::Default()->FileExists(live)) files.push_back(live);
  return files;
}

void PrintScan(const std::string& path, const JournalScan& scan) {
  std::printf("journal  %s\n", path.c_str());
  std::printf("  format v%d  epoch %llu  statements %zu  valid bytes %llu\n",
              scan.format, static_cast<unsigned long long>(scan.epoch),
              scan.statements.size(),
              static_cast<unsigned long long>(scan.valid_bytes));
  if (!scan.tail_error.ok()) {
    std::printf("  CORRUPT TAIL: %llu byte(s) — %s\n",
                static_cast<unsigned long long>(scan.dropped_bytes),
                scan.tail_error.message().c_str());
  }
}

int Inspect(const std::string& dir) {
  int corrupt = 0;
  std::string snapshot = dir + "/" + kSnapshotName;
  if (FileSystem::Default()->FileExists(snapshot)) {
    auto info = ProbeSnapshotFile(snapshot);
    if (!info.ok()) {
      std::printf("snapshot %s: unreadable: %s\n", snapshot.c_str(),
                  info.status().ToString().c_str());
      ++corrupt;
    } else {
      std::printf("snapshot %s\n", snapshot.c_str());
      std::printf("  format v%d  epoch %llu  records %zu  bytes %llu\n",
                  info->version,
                  static_cast<unsigned long long>(info->epoch),
                  info->records,
                  static_cast<unsigned long long>(info->byte_size));
      if (!info->integrity.ok()) {
        std::printf("  CORRUPT: %s\n", info->integrity.message().c_str());
        ++corrupt;
      }
    }
  } else {
    std::printf("snapshot %s: absent\n", snapshot.c_str());
  }
  if (FileSystem::Default()->FileExists(snapshot + ".tmp")) {
    std::printf("snapshot %s.tmp: leftover of an interrupted checkpoint "
                "(recovery deletes it)\n",
                snapshot.c_str());
  }
  for (const std::string& file : JournalFiles(dir)) {
    auto scan = ScanJournal(file);
    if (!scan.ok()) {
      std::printf("journal  %s: unreadable: %s\n", file.c_str(),
                  scan.status().ToString().c_str());
      ++corrupt;
      continue;
    }
    PrintScan(file, *scan);
    if (!scan->tail_error.ok()) ++corrupt;
  }
  return corrupt == 0 ? 0 : 1;
}

int Verify(const std::string& dir) {
  // The phase API with an ActiveDatabase executor, mirroring the REPL:
  // journals written by it contain `trigger` / `constraint` definitions
  // a plain Interpreter would reject.
  RecoveryManager manager(dir + "/" + kSnapshotName,
                          dir + "/" + kJournalName);
  RecoveryStats stats;
  Status failure = Status::OK();
  std::unique_ptr<Database> db;
  auto loaded = manager.LoadSnapshot(&stats);
  if (!loaded.ok()) {
    failure = loaded.status();
  } else {
    db = std::move(loaded).value();
    ActiveDatabase active(db.get());
    // A v3 snapshot carries trigger/constraint definitions; restore them
    // before replay so journaled statements see the same active rules
    // they were originally executed under.
    for (const std::string& definition : manager.snapshot_definitions()) {
      failure = active.Execute(definition).status();
      if (!failure.ok()) break;
    }
    if (failure.ok()) {
      failure = manager.ReplayJournals(
          [&active](const std::string& statement) {
            return active.Execute(statement).status();
          },
          &stats);
    }
    if (failure.ok()) {
      failure = RecoveryManager::Audit(db.get(), AuditMode::kFail, &stats);
    }
  }
  for (const std::string& note : stats.notes) {
    std::printf("note: %s\n", note.c_str());
  }
  std::printf("snapshot %s (epoch %llu), %zu journal file(s), "
              "%zu statement(s) replayed\n",
              stats.snapshot_loaded ? "loaded" : "absent",
              static_cast<unsigned long long>(stats.snapshot_epoch),
              stats.journals_replayed, stats.statements_applied);
  if (!failure.ok()) {
    std::printf("NOT RECOVERABLE: %s\n", failure.ToString().c_str());
    return 1;
  }
  std::printf("OK: recovers to a consistent database "
              "(%zu objects, now = %lld)\n",
              db->object_count(), static_cast<long long>(db->now()));
  return 0;
}

int Salvage(const std::string& dir) {
  int failures = 0;
  for (const std::string& file : JournalFiles(dir)) {
    auto scan = SalvageJournal(file);
    if (!scan.ok()) {
      std::printf("%s: %s\n", file.c_str(),
                  scan.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (scan->dropped_bytes > 0) {
      std::printf("%s: quarantined %llu corrupt tail byte(s) to "
                  "%s.corrupt (%s)\n",
                  file.c_str(),
                  static_cast<unsigned long long>(scan->dropped_bytes),
                  file.c_str(), scan->tail_error.message().c_str());
    } else {
      std::printf("%s: clean (%zu statement(s))\n", file.c_str(),
                  scan->statements.size());
    }
  }
  return failures == 0 ? 0 : 1;
}

// One recovered database directory plus where its journal stream ends
// (replica journals mirror the primary's epoch/seq numbering, so the
// positions are directly comparable).
struct RecoveredDir {
  std::unique_ptr<Database> db;
  std::unique_ptr<ActiveDatabase> active;
  uint64_t epoch = 0;
  uint64_t last_seq = 0;
};

Status RecoverDir(const std::string& dir, RecoveredDir* out) {
  RecoveryManager manager(dir + "/" + kSnapshotName,
                          dir + "/" + kJournalName);
  RecoveryStats stats;
  auto loaded = manager.LoadSnapshot(&stats);
  if (!loaded.ok()) return loaded.status();
  out->db = std::move(loaded).value();
  out->active = std::make_unique<ActiveDatabase>(out->db.get());
  for (const std::string& definition : manager.snapshot_definitions()) {
    Status status = out->active->Execute(definition).status();
    if (!status.ok()) return status;
  }
  TCH_RETURN_IF_ERROR(manager.ReplayJournals(
      [out](const std::string& statement) {
        return out->active->Execute(statement).status();
      },
      &stats));
  std::string live = dir + "/" + kJournalName;
  out->epoch = stats.next_epoch;
  if (FileSystem::Default()->FileExists(live)) {
    auto scan = ScanJournal(live);
    if (scan.ok()) {
      out->epoch = scan->epoch;
      out->last_seq = scan->last_seq;
    }
  }
  return Status::OK();
}

int VerifyReplica(const std::string& replica_dir,
                  const std::string& primary_dir) {
  RecoveredDir replica, primary;
  Status status = RecoverDir(replica_dir, &replica);
  if (!status.ok()) {
    std::printf("replica %s: NOT RECOVERABLE: %s\n", replica_dir.c_str(),
                status.ToString().c_str());
    return 1;
  }
  status = RecoverDir(primary_dir, &primary);
  if (!status.ok()) {
    std::printf("primary %s: NOT RECOVERABLE: %s\n", primary_dir.c_str(),
                status.ToString().c_str());
    return 1;
  }
  auto replica_hash =
      DatabaseStateHash(*replica.db, replica.active->DefinitionStatements());
  auto primary_hash =
      DatabaseStateHash(*primary.db, primary.active->DefinitionStatements());
  if (!replica_hash.ok() || !primary_hash.ok()) {
    std::printf("state hash failed: %s\n",
                (!replica_hash.ok() ? replica_hash.status() :
                                      primary_hash.status())
                    .ToString()
                    .c_str());
    return 1;
  }
  std::printf("replica  epoch %llu seq %llu  hash %08x\n",
              static_cast<unsigned long long>(replica.epoch),
              static_cast<unsigned long long>(replica.last_seq),
              replica_hash.value());
  std::printf("primary  epoch %llu seq %llu  hash %08x\n",
              static_cast<unsigned long long>(primary.epoch),
              static_cast<unsigned long long>(primary.last_seq),
              primary_hash.value());
  if (replica_hash.value() == primary_hash.value()) {
    std::printf("OK: replica state matches the primary\n");
    return 0;
  }
  const bool lagging =
      replica.epoch < primary.epoch ||
      (replica.epoch == primary.epoch && replica.last_seq < primary.last_seq);
  if (lagging) {
    std::printf("LAGGING: replica is behind the primary's stream position "
                "(not divergence; drain or resync and re-verify)\n");
    return 2;
  }
  std::printf("DIVERGED: replica is at or past the primary's stream "
              "position yet its state hash differs\n");
  return 1;
}

}  // namespace
}  // namespace tchimera

int main(int argc, char** argv) {
  tchimera::IgnoreSigpipe();
  std::string command = argc > 1 ? argv[1] : "";
  if ((command == "verify-replica" || command == "--verify-replica") &&
      argc == 4) {
    return tchimera::VerifyReplica(argv[2], argv[3]);
  }
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: %s inspect|verify|salvage <db-directory>\n"
                 "       %s verify-replica <replica-dir> <primary-dir>\n",
                 argv[0], argv[0]);
    return 2;
  }
  std::string dir = argv[2];
  if (command == "inspect") return tchimera::Inspect(dir);
  if (command == "verify") return tchimera::Verify(dir);
  if (command == "salvage") return tchimera::Salvage(dir);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}
