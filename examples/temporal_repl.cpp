// An interactive TQL shell over a persistent T_Chimera database.
//
//   ./build/examples/temporal_repl [db-directory]
//
// On startup the shell runs crash recovery over the database directory
// (snapshot load, journal replay in epoch order with torn-tail salvage,
// consistency audit — see storage/recovery.h); every successfully
// executed mutating statement is then journaled before the prompt
// returns, and `.checkpoint` runs the safe rotate-snapshot-delete
// protocol. Without a directory argument the session is in-memory only.
//
// The journal replay goes through the ActiveDatabase facade so journaled
// `trigger` and `constraint` definitions are restored too. (Those
// definitions live only in the journal: a checkpoint folds the journal
// into a snapshot, which does not carry them — a known gap.)
//
// Meta commands: .help .checkpoint .quit — everything else is TQL
// (see src/query/parser.h for the grammar).
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>

#include "common/string_util.h"
#include "core/db/database.h"
#include "storage/journal.h"
#include "storage/recovery.h"
#include "triggers/trigger.h"

namespace {

constexpr const char* kHelp = R"(TQL statements:
  define class NAME [under SUPER,...] [attributes a: type, ...]
      [methods m(T,...): T, ...] [c-attributes a: type, ...] end
  create CLASS [at T] (attr: value, ...)
  update iN set attr = value [during [a,b]]
  migrate iN to CLASS [set attr = value, ...]
  delete iN
  select expr, ... from x in CLASS [at T] [where expr]
  snapshot iN [at T]   |  history iN.attr
  tick [n]  |  advance to T  |  check  |  when <expr>
  show class NAME | show object iN | show classes | show now
  trigger NAME on EVENT [of CLASS[.ATTR]] do <stmt>
  constraint NAME on CLASS always|sometime <expr>
  constraint NAME on CLASS nondecreasing|immutable ATTR
meta commands:
  .help  .checkpoint  .quit
)";

// The statements worth journaling: the interpreter's mutating verbs plus
// the REPL-level trigger / constraint definitions.
bool ShouldJournal(std::string_view statement) {
  if (tchimera::IsMutatingStatement(statement)) return true;
  std::string token = tchimera::FirstTokenLower(statement);
  return token == "trigger" || token == "constraint";
}

}  // namespace

int main(int argc, char** argv) {
  using tchimera::ActiveDatabase;
  using tchimera::Database;
  using tchimera::Journal;
  using tchimera::Result;
  using tchimera::Status;

  std::string snapshot_path, journal_path;
  if (argc > 1) {
    std::filesystem::path dir(argv[1]);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    snapshot_path = (dir / "snapshot.tchdb").string();
    journal_path = (dir / "journal.tql").string();
  } else {
    std::printf("(in-memory session; pass a directory to persist)\n");
  }

  tchimera::RecoveryManager recovery(snapshot_path, journal_path);
  tchimera::RecoveryStats stats;
  std::unique_ptr<Database> db = std::make_unique<Database>();
  if (!journal_path.empty()) {
    Result<std::unique_ptr<Database>> loaded = recovery.LoadSnapshot(&stats);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", snapshot_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    db = std::move(loaded).value();
  }

  ActiveDatabase active(db.get());
  Journal journal;
  if (!journal_path.empty()) {
    Status replayed = recovery.ReplayJournals(
        [&active](const std::string& statement) {
          return active.Execute(statement).status();
        },
        &stats);
    for (const std::string& note : stats.notes) {
      std::fprintf(stderr, "recovery: %s\n", note.c_str());
    }
    if (!replayed.ok()) {
      std::fprintf(stderr, "journal replay failed: %s\n",
                   replayed.ToString().c_str());
      return 1;
    }
    Status audit = tchimera::RecoveryManager::Audit(
        db.get(), tchimera::AuditMode::kFail, &stats);
    if (!audit.ok()) {
      std::fprintf(stderr, "post-recovery audit failed: %s\n",
                   audit.ToString().c_str());
      return 1;
    }
    std::printf("recovered: %zu objects, now = %lld "
                "(%zu statement(s) replayed)\n",
                db->object_count(), static_cast<long long>(db->now()),
                stats.statements_applied);
    tchimera::JournalOptions options;
    options.epoch = stats.next_epoch;
    Status opened = journal.Open(journal_path, options);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.ToString().c_str());
      return 1;
    }
  }
  std::printf("T_Chimera temporal shell — .help for help\n");
  std::string line;
  while (true) {
    std::printf("tql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = tchimera::StripWhitespace(line);
    if (trimmed.empty()) continue;
    if (trimmed == ".quit" || trimmed == ".exit") break;
    if (trimmed == ".help") {
      std::printf("%s", kHelp);
      continue;
    }
    if (trimmed == ".checkpoint") {
      if (snapshot_path.empty()) {
        std::printf("no database directory; nothing to checkpoint\n");
        continue;
      }
      Status s = tchimera::RecoveryManager::Checkpoint(*db, &journal,
                                                       snapshot_path);
      std::printf("%s\n", s.ok() ? "checkpointed" : s.ToString().c_str());
      continue;
    }
    Result<std::string> out = active.Execute(trimmed);
    if (!out.ok()) {
      std::printf("error: %s\n", out.status().ToString().c_str());
      continue;
    }
    // Journal after the statement applied cleanly, so replay failures are
    // always corruption; the append (synced per policy) completes before
    // the prompt acknowledges the statement.
    if (journal.is_open() && ShouldJournal(trimmed)) {
      Status s = journal.Append(trimmed);
      if (!s.ok()) std::printf("journal: %s\n", s.ToString().c_str());
    }
    std::printf("%s\n", out->c_str());
  }
  std::printf("\nbye\n");
  return 0;
}
