// An interactive TQL shell over a persistent T_Chimera database.
//
//   ./build/examples/temporal_repl [--no-compile] [db-directory]
//
// `--no-compile` disables the compiled read path (query/lower.h +
// query/vm.h): every select/when tree-walks through the evaluator, and
// `explain` still shows what the compiler would have produced.
//
// On startup the shell runs crash recovery over the database directory
// (snapshot load, journal replay in epoch order with torn-tail salvage,
// consistency audit — see storage/recovery.h). Statements then run
// through a query Session over the concurrent Engine (query/session.h):
// mutating statements are serialized, journaled through the group-commit
// sink (storage/group_commit.h) and acknowledged only once durable;
// `.checkpoint` runs the safe rotate-snapshot-delete protocol with the
// sink quiesced. Without a directory argument the session is in-memory
// only.
//
// The journal replay goes through the ActiveDatabase facade so journaled
// `trigger` and `constraint` definitions are restored too; a checkpoint
// persists them as the snapshot's DEFINE records (snapshot v3), which
// recovery replays back through the facade.
//
// Meta commands: .help .checkpoint .quit — everything else is TQL
// (see src/query/parser.h for the grammar).
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>

#include "common/string_util.h"
#include "core/db/database.h"
#include "query/session.h"
#include "server/net.h"
#include "storage/group_commit.h"
#include "storage/recovery.h"
#include "triggers/trigger.h"

namespace {

constexpr const char* kHelp = R"(TQL statements:
  define class NAME [under SUPER,...] [attributes a: type, ...]
      [methods m(T,...): T, ...] [c-attributes a: type, ...] end
  create CLASS [at T] (attr: value, ...)
  update iN set attr = value [during [a,b]]
  migrate iN to CLASS [set attr = value, ...]
  delete iN
  select expr, ... from x in CLASS [at T] [where expr]
  snapshot iN [at T]   |  history iN.attr
  tick [n]  |  advance to T  |  check  |  when <expr>
  explain <select|when ...>   (print the compiled plan or fallback reason)
  show class NAME | show object iN | show classes | show now
  trigger NAME on EVENT [of CLASS[.ATTR]] do <stmt>
  constraint NAME on CLASS always|sometime <expr>
  constraint NAME on CLASS nondecreasing|immutable ATTR
meta commands:
  .help  .checkpoint  .quit
)";

}  // namespace

int main(int argc, char** argv) {
  // A shell piped into `head` (or a dying pager) should see EPIPE as an
  // ordinary write error, not take the process down mid-fdatasync.
  tchimera::IgnoreSigpipe();
  using tchimera::Database;
  using tchimera::Engine;
  using tchimera::GroupCommitJournal;
  using tchimera::Result;
  using tchimera::Session;
  using tchimera::Status;

  bool compile_enabled = true;
  std::string dir_arg;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--no-compile") {
      compile_enabled = false;
    } else {
      dir_arg = argv[i];
    }
  }

  std::string snapshot_path, journal_path;
  if (!dir_arg.empty()) {
    std::filesystem::path dir(dir_arg);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    snapshot_path = (dir / "snapshot.tchdb").string();
    journal_path = (dir / "journal.tql").string();
  } else {
    std::printf("(in-memory session; pass a directory to persist)\n");
  }

  tchimera::RecoveryManager recovery(snapshot_path, journal_path);
  tchimera::RecoveryStats stats;
  std::unique_ptr<Database> db = std::make_unique<Database>();
  if (!journal_path.empty()) {
    Result<std::unique_ptr<Database>> loaded = recovery.LoadSnapshot(&stats);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", snapshot_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    db = std::move(loaded).value();
  }

  // The engine owns the database from here on; recovery replay runs
  // through a session before the commit sink is installed, so replayed
  // statements are not re-journaled.
  Engine engine(std::move(db));
  Session session = engine.OpenSession();
  session.set_compile_enabled(compile_enabled);
  GroupCommitJournal sink;
  if (!journal_path.empty()) {
    Status replayed = Status::OK();
    for (const std::string& definition : recovery.snapshot_definitions()) {
      replayed = session.Execute(definition).status();
      if (!replayed.ok()) break;
    }
    if (replayed.ok()) {
      replayed = recovery.ReplayJournals(
          [&session](const std::string& statement) {
            return session.Execute(statement).status();
          },
          &stats);
    }
    for (const std::string& note : stats.notes) {
      std::fprintf(stderr, "recovery: %s\n", note.c_str());
    }
    if (!replayed.ok()) {
      std::fprintf(stderr, "journal replay failed: %s\n",
                   replayed.ToString().c_str());
      return 1;
    }
    Status audit = tchimera::RecoveryManager::Audit(
        &engine.writer_db(), tchimera::AuditMode::kFail, &stats);
    if (!audit.ok()) {
      std::fprintf(stderr, "post-recovery audit failed: %s\n",
                   audit.ToString().c_str());
      return 1;
    }
    std::printf("recovered: %zu objects, now = %lld "
                "(%zu statement(s) replayed)\n",
                engine.writer_db().object_count(),
                static_cast<long long>(engine.writer_db().now()),
                stats.statements_applied);
    tchimera::JournalOptions options;
    options.epoch = stats.next_epoch;
    Status opened = sink.Open(journal_path, options);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.ToString().c_str());
      return 1;
    }
    engine.set_commit_sink(&sink);
  }
  std::printf("T_Chimera temporal shell — .help for help\n");
  std::string line;
  while (true) {
    std::printf("tql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = tchimera::StripWhitespace(line);
    if (trimmed.empty()) continue;
    if (trimmed == ".quit" || trimmed == ".exit") break;
    if (trimmed == ".help") {
      std::printf("%s", kHelp);
      continue;
    }
    if (trimmed == ".checkpoint") {
      if (snapshot_path.empty()) {
        std::printf("no database directory; nothing to checkpoint\n");
        continue;
      }
      // Exclusive over the engine, quiesced over the sink: the snapshot
      // sees a committed state and the journal rotates at a batch
      // boundary. Lock order (writer lock, then sink mutex) matches the
      // write path.
      Status s = engine.WithExclusive(
          [&](Database& live, tchimera::ActiveDatabase& active) {
            return sink.WithQuiesced([&](tchimera::Journal& journal) {
              return tchimera::RecoveryManager::Checkpoint(
                  live, &journal, snapshot_path, nullptr,
                  active.DefinitionStatements());
            });
          });
      std::printf("%s\n", s.ok() ? "checkpointed" : s.ToString().c_str());
      continue;
    }
    // Session::Execute routes reads to a snapshot and mutations through
    // the serialized write path; a mutating statement is journaled and
    // fdatasynced (group commit) before the prompt acknowledges it.
    Result<std::string> out = session.Execute(trimmed);
    if (!out.ok()) {
      std::printf("error: %s\n", out.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n", out->c_str());
  }
  std::printf("\nbye\n");
  return 0;
}
