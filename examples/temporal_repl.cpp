// An interactive TQL shell over a persistent T_Chimera database.
//
//   ./build/examples/temporal_repl [db-directory]
//
// On startup the shell loads `snapshot.tchdb` (if present) from the
// database directory and replays `journal.tql` on top; every mutating
// statement is journaled before execution; `.checkpoint` writes a fresh
// snapshot and truncates the journal. Without a directory argument the
// session is in-memory only.
//
// Meta commands: .help .checkpoint .quit — everything else is TQL
// (see src/query/parser.h for the grammar).
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include <fstream>

#include "common/string_util.h"
#include "core/db/database.h"
#include "storage/deserializer.h"
#include "storage/journal.h"
#include "storage/serializer.h"
#include "triggers/trigger.h"

namespace {

constexpr const char* kHelp = R"(TQL statements:
  define class NAME [under SUPER,...] [attributes a: type, ...]
      [methods m(T,...): T, ...] [c-attributes a: type, ...] end
  create CLASS [at T] (attr: value, ...)
  update iN set attr = value [during [a,b]]
  migrate iN to CLASS [set attr = value, ...]
  delete iN
  select expr, ... from x in CLASS [at T] [where expr]
  snapshot iN [at T]   |  history iN.attr
  tick [n]  |  advance to T  |  check  |  when <expr>
  show class NAME | show object iN | show classes | show now
  trigger NAME on EVENT [of CLASS[.ATTR]] do <stmt>
  constraint NAME on CLASS always|sometime <expr>
  constraint NAME on CLASS nondecreasing|immutable ATTR
meta commands:
  .help  .checkpoint  .quit
)";

}  // namespace

int main(int argc, char** argv) {
  using tchimera::ActiveDatabase;
  using tchimera::Database;
  using tchimera::Journal;
  using tchimera::Result;
  using tchimera::Status;

  std::unique_ptr<Database> db = std::make_unique<Database>();
  Journal journal;
  std::string snapshot_path, journal_path;

  if (argc > 1) {
    std::filesystem::path dir(argv[1]);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    snapshot_path = (dir / "snapshot.tchdb").string();
    journal_path = (dir / "journal.tql").string();
    if (std::filesystem::exists(snapshot_path)) {
      Result<std::unique_ptr<Database>> loaded =
          tchimera::LoadDatabaseFromFile(snapshot_path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "cannot load %s: %s\n", snapshot_path.c_str(),
                     loaded.status().ToString().c_str());
        return 1;
      }
      db = std::move(loaded).value();
      std::printf("loaded snapshot (%zu objects, now = %lld)\n",
                  db->object_count(), static_cast<long long>(db->now()));
    }
    Status opened = Status::OK();
    (void)opened;
  } else {
    std::printf("(in-memory session; pass a directory to persist)\n");
  }

  ActiveDatabase active(db.get());
  if (!journal_path.empty()) {
    // Replay the journal tail through the active facade so trigger and
    // constraint definitions are restored too.
    if (std::filesystem::exists(journal_path)) {
      std::ifstream in(journal_path);
      std::string replay_line;
      size_t applied = 0;
      while (std::getline(in, replay_line)) {
        if (tchimera::StripWhitespace(replay_line).empty()) continue;
        Result<std::string> r = active.Execute(replay_line);
        if (!r.ok()) {
          std::fprintf(stderr, "journal replay failed at '%s': %s\n",
                       replay_line.c_str(),
                       r.status().ToString().c_str());
          return 1;
        }
        ++applied;
      }
      std::printf("replayed %zu journaled statements\n", applied);
    }
    Status opened = journal.Open(journal_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.ToString().c_str());
      return 1;
    }
  }
  std::printf("T_Chimera temporal shell — .help for help\n");
  std::string line;
  while (true) {
    std::printf("tql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = tchimera::StripWhitespace(line);
    if (trimmed.empty()) continue;
    if (trimmed == ".quit" || trimmed == ".exit") break;
    if (trimmed == ".help") {
      std::printf("%s", kHelp);
      continue;
    }
    if (trimmed == ".checkpoint") {
      if (snapshot_path.empty()) {
        std::printf("no database directory; nothing to checkpoint\n");
        continue;
      }
      Status s = tchimera::SaveDatabaseToFile(*db, snapshot_path);
      if (s.ok()) s = journal.Truncate();
      std::printf("%s\n", s.ok() ? "checkpointed" : s.ToString().c_str());
      continue;
    }
    // Journal mutating statements before executing (write-ahead).
    if (journal.is_open()) {
      std::string head;
      for (char c : trimmed.substr(0, 8)) {
        head.push_back(static_cast<char>(std::tolower(
            static_cast<unsigned char>(c))));
      }
      for (std::string_view kw : {"define", "drop", "create", "update",
                                  "migrate", "delete", "tick", "advance",
                                  "trigger", "constraint"}) {
        if (tchimera::StartsWith(head, kw)) {
          Status s = journal.Append(trimmed);
          if (!s.ok()) std::printf("journal: %s\n", s.ToString().c_str());
          break;
        }
      }
    }
    Result<std::string> out = active.Execute(trimmed);
    if (out.ok()) {
      std::printf("%s\n", out->c_str());
    } else {
      std::printf("error: %s\n", out.status().ToString().c_str());
    }
  }
  std::printf("\nbye\n");
  return 0;
}
