// Project management through TQL: the workload the paper's introduction
// motivates — a project office that needs complete histories of salaries,
// staffing and sub-projects, asked temporal questions a snapshot database
// cannot answer ("who was on the project when the budget slipped?").
//
// Everything here goes through the textual language: schema definition,
// data entry, time progression, time-slice queries, history queries and
// the database-wide consistency check.
//
// Build & run:  cmake --build build && ./build/examples/project_management
#include <cstdio>
#include <string>

#include "common/string_util.h"
#include "core/db/database.h"
#include "query/interpreter.h"

namespace {

tchimera::Interpreter* g_interp = nullptr;

// Executes one statement, echoing statement and result.
std::string Run(const std::string& stmt) {
  tchimera::Result<std::string> out = g_interp->Execute(stmt);
  std::printf("tql> %s\n", stmt.c_str());
  if (!out.ok()) {
    std::printf("  !! %s\n", out.status().ToString().c_str());
    std::exit(1);
  }
  for (const std::string& line :
       tchimera::Split(*out, '\n')) {
    std::printf("  %s\n", line.c_str());
  }
  return *out;
}

}  // namespace

int main() {
  tchimera::Database db;
  tchimera::Interpreter interp(&db);
  g_interp = &interp;

  std::printf("== schema ==\n");
  Run("define class person attributes name: temporal(string), "
      "birthyear: integer end");
  Run("define class employee under person attributes "
      "salary: temporal(integer), office: string end");
  Run("define class task attributes description: string, "
      "effort: temporal(integer) end");
  Run("define class project attributes name: temporal(string), "
      "objective: string, workplan: set-of(task), "
      "participants: temporal(set-of(person)) end");

  std::printf("\n== year 0: the team assembles ==\n");
  std::string ann = Run("create employee (name: 'Ann', birthyear: 1970, "
                        "salary: 48000, office: 'A1')");
  std::string bob = Run("create employee (name: 'Bob', birthyear: 1985, "
                        "salary: 39000, office: 'B2')");
  std::string cat = Run("create employee (name: 'Cat', birthyear: 1990, "
                        "salary: 41000, office: 'B3')");
  std::string design = Run("create task (description: 'design', "
                           "effort: 30)");
  std::string build = Run("create task (description: 'build', "
                          "effort: 90)");
  std::string idea =
      Run("create project (name: 'IDEA', objective: 'ship it', "
          "workplan: {" + design + "," + build + "}, participants: {" +
          ann + "," + bob + "})");

  std::printf("\n== years pass: raises, churn, re-planning ==\n");
  Run("advance to 10");
  Run("update " + ann + " set salary = 61000");
  Run("update " + build + " set effort = 120");
  Run("advance to 20");
  Run("update " + idea + " set participants = {" + ann + "," + cat + "}");
  Run("update " + bob + " set salary = 45000");
  Run("advance to 30");
  Run("update " + ann + " set salary = 70000");

  std::printf("\n== temporal questions ==\n");
  std::printf("-- who earns more than 50k now?\n");
  Run("select x.name, x.salary from x in employee where "
      "x.salary > 50000");
  std::printf("-- who earned more than 50k back at t=15?\n");
  Run("select x.name, x.salary from x in employee at 15 where "
      "x.salary > 50000");
  std::printf("-- Ann's full salary history:\n");
  Run("history " + ann + ".salary");
  std::printf("-- was Bob on the project at t=15? at t=25?\n");
  Run("select x from x in project where " + bob +
      " in x.participants @ 15");
  Run("select x from x in project where " + bob +
      " in x.participants @ 25");
  std::printf("-- effort re-estimates of the build task:\n");
  Run("history " + build + ".effort");
  std::printf("-- when did Ann out-earn Bob?\n");
  Run("when " + ann + ".salary > " + bob + ".salary");
  std::printf("-- a time-slice of the whole staffing at t=15:\n");
  Run("select x.participants @ 15 from x in project");

  std::printf("\n== retroactive correction ==\n");
  std::printf("-- payroll finds Ann's raise was effective at 8, not 10:\n");
  Run("update " + ann + " set salary = 61000 during [8,9]");
  Run("history " + ann + ".salary");

  std::printf("\n== the model audits itself ==\n");
  Run("check");
  return 0;
}
