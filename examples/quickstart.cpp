// Quickstart: the paper's running example, end to end, through the C++
// API — Example 4.1's class `project`, Example 5.1's object, the state
// functions of Example 5.2, the consistency check of Example 5.3 and the
// snapshot of Section 5.3.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/db/consistency.h"
#include "core/db/database.h"
#include "core/types/type_registry.h"

using namespace tchimera;  // example code; the library itself never does this

namespace {

// Unwraps a Result or aborts with its error (examples keep error handling
// loud and simple).
template <typename T>
T OrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void OrDie(Status status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  Database db;

  // --- t = 10: define the schema of Example 4.1 -------------------------
  OrDie(db.AdvanceTo(10), "advance");
  ClassSpec person;
  person.name = "person";
  OrDie(db.DefineClass(person), "define person");
  ClassSpec task;
  task.name = "task";
  OrDie(db.DefineClass(task), "define task");

  ClassSpec project;
  project.name = "project";
  project.attributes = {
      // name is immutable in practice: a constant temporal function.
      {"name", types::Temporal(types::String()).value()},
      // objective / workplan are non-temporal: past values not kept.
      {"objective", types::String()},
      {"workplan", types::SetOf(types::Object("task"))},
      // subproject / participants are temporal: full history kept.
      {"subproject", types::Temporal(types::Object("project")).value()},
      {"participants",
       types::Temporal(types::SetOf(types::Object("person"))).value()},
  };
  project.methods = {{"add-participant",
                      {types::Object("person")},
                      types::Object("project")}};
  project.c_attributes = {{"average-participants", types::Integer()}};
  OrDie(db.DefineClass(project), "define project");
  std::printf("defined classes: person, task, project\n");
  std::printf("  h_type(project) = %s\n",
              OrDie(db.HistoricalTypeOf("project"), "h_type")->ToString()
                  .c_str());
  std::printf("  s_type(project) = %s\n",
              OrDie(db.StaticTypeOf("project"), "s_type")->ToString()
                  .c_str());

  // --- t = 20: create the objects of Example 5.1 -------------------------
  OrDie(db.AdvanceTo(20), "advance");
  Oid p2 = OrDie(db.CreateObject("person"), "create person");
  Oid p3 = OrDie(db.CreateObject("person"), "create person");
  Oid t7 = OrDie(db.CreateObject("task"), "create task");
  Oid sub_a = OrDie(db.CreateObject(
                        "project", {{"name", Value::String("SUB-A")}}),
                    "create subproject");
  Oid idea = OrDie(
      db.CreateObject(
          "project",
          {{"name", Value::String("IDEA")},
           {"objective", Value::String("Implementation")},
           {"workplan", Value::Set({Value::OfOid(t7)})},
           {"subproject", Value::OfOid(sub_a)},
           {"participants",
            Value::Set({Value::OfOid(p2), Value::OfOid(p3)})}}),
      "create IDEA");
  std::printf("created project %s at t=20\n", idea.ToString().c_str());

  // --- t = 46: the subproject changes ------------------------------------
  OrDie(db.AdvanceTo(46), "advance");
  Oid sub_b = OrDie(db.CreateObject(
                        "project", {{"name", Value::String("SUB-B")}}),
                    "create subproject");
  OrDie(db.UpdateAttribute(idea, "subproject", Value::OfOid(sub_b)),
        "update subproject");

  // --- t = 81: a participant joins ----------------------------------------
  OrDie(db.AdvanceTo(81), "advance");
  Oid p8 = OrDie(db.CreateObject("person"), "create person");
  OrDie(db.UpdateAttribute(
            idea, "participants",
            Value::Set({Value::OfOid(p2), Value::OfOid(p3),
                        Value::OfOid(p8)})),
        "update participants");

  OrDie(db.AdvanceTo(100), "advance");

  // --- inspect: the Table 3 functions -------------------------------------
  std::printf("\nat now = %lld:\n",
              static_cast<long long>(db.now()));
  std::printf("  subproject history = %s\n",
              db.GetObject(idea)->Attribute("subproject")->ToString()
                  .c_str());
  std::printf("  s_state(i)         = %s\n",
              OrDie(db.SStateOf(idea), "s_state").ToString().c_str());
  std::printf("  h_state(i, 50)     = %s\n",
              OrDie(db.HStateOf(idea, 50), "h_state").ToString().c_str());
  std::printf("  snapshot(i, now)   = %s\n",
              OrDie(db.SnapshotOf(idea, kNow), "snapshot").ToString()
                  .c_str());
  Result<Value> past = db.SnapshotOf(idea, 50);
  std::printf("  snapshot(i, 50)    -> %s\n",
              past.ok() ? past->ToString().c_str()
                        : past.status().ToString().c_str());
  std::printf("  o_lifespan(i)      = %s\n",
              OrDie(db.OLifespan(idea), "o_lifespan").ToString().c_str());
  std::printf("  pi(project, 30)    has %zu members\n",
              db.Pi("project", 30).size());

  // --- verify: Definition 5.5 + all invariants ------------------------------
  Status check = CheckDatabaseConsistency(db);
  std::printf("\nfull consistency check: %s\n", check.ToString().c_str());
  return check.ok() ? 0 : 1;
}
