// The Section 7 future-work items, running: temporal integrity
// constraints over object histories and ECA triggers with a termination
// guard — an "active" T_Chimera database.
//
// Build & run:  cmake --build build && ./build/examples/active_database
#include <cstdio>
#include <string>

#include "constraints/constraint.h"
#include "triggers/trigger.h"
#include "workload/project_schema.h"

namespace {

tchimera::ActiveDatabase* g_active = nullptr;

std::string Run(const std::string& stmt) {
  std::printf("tql> %s\n", stmt.c_str());
  tchimera::Result<std::string> out = g_active->Execute(stmt);
  if (!out.ok()) {
    std::printf("  !! %s\n", out.status().ToString().c_str());
    return "";
  }
  std::printf("  %s\n", out->c_str());
  return *out;
}

void Report(const tchimera::Status& s, const char* label) {
  std::printf("%s: %s\n", label, s.ToString().c_str());
}

}  // namespace

int main() {
  tchimera::Database db;
  tchimera::ActiveDatabase active(&db, /*max_cascade_depth=*/8);
  g_active = &active;
  if (!tchimera::InstallProjectSchema(&db).ok()) return 1;

  std::printf("== triggers: reactive rules ==\n");
  // Every new employee gets a starter salary; every promotion to manager
  // initializes dependents.
  (void)active.DefineTrigger(
      "trigger starter on create of employee do "
      "update $self set salary = 30000");
  (void)active.DefineTrigger(
      "trigger promo on migrate of manager do "
      "update $self set dependents = 0");
  std::string ann = Run("create employee (name: 'Ann', office: 'A1')");
  Run("select x.salary from x in employee");
  Run("tick 10");
  Run("migrate " + ann + " to manager set officialcar = 'sedan'");
  Run("select x.dependents from x in manager");
  std::printf("(triggers fired so far: %zu)\n\n", active.fired_count());

  std::printf("== the termination problem, contained ==\n");
  (void)active.DefineTrigger(
      "trigger loop on update of manager.dependents do "
      "update $self set dependents = 1");
  Run("update " + ann + " set dependents = 5");  // self-refiring rule
  (void)active.DropTrigger("loop");
  std::printf("\n");

  std::printf("== temporal integrity constraints over histories ==\n");
  tchimera::ConstraintRegistry constraints;
  (void)constraints.Define(
      "constraint positive-pay on employee always x.salary > 0");
  (void)constraints.Define(
      "constraint no-pay-cuts on employee nondecreasing salary");
  (void)constraints.Define(
      "constraint stable-name on person immutable name");
  Report(constraints.CheckAll(db), "initial check");

  Run("tick 10");
  Run("update " + ann + " set salary = 45000");
  Report(constraints.CheckAll(db), "after a raise");

  Run("tick 10");
  Run("update " + ann + " set salary = 20000");  // a pay cut!
  Report(constraints.CheckAll(db), "after a pay cut");

  // Retroactive corrections are also policed: sneak a violation into the
  // past and the history-aware checker still sees it.
  Run("update " + ann + " set salary = 45000 during [25,27]");
  Report(constraints.CheckObject(db, db.AllOids().front()),
         "per-object incremental check");

  std::printf("\n== constraints + triggers together ==\n");
  // A trigger enforcing a constraint reactively: any salary write is
  // immediately floored (the action itself satisfies positive-pay).
  (void)active.DefineTrigger(
      "trigger floor on create of employee do "
      "update $self set salary = 1");
  std::string intern = Run("create employee (name: 'Iggy')");
  Run("history " + intern + ".salary");
  Report(constraints.Find("positive-pay")->Check(db),
         "positive-pay after reactive floor");
  return 0;
}
