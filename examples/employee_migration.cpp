// The Section 5.2 scenario in full: an employee is promoted to manager
// (gaining `dependents` and `officialcar`), later transferred back
// (losing the static attribute without trace, keeping the temporal one
// closed), while class histories, extent histories and every invariant
// follow along. Also demonstrates the four equality notions of
// Section 5.3 and the temporal->static coercion of Section 6.1.
//
// Build & run:  cmake --build build && ./build/examples/employee_migration
#include <cstdio>

#include "core/db/consistency.h"
#include "core/db/database.h"
#include "core/db/equality.h"
#include "core/types/type_registry.h"
#include "workload/project_schema.h"

using namespace tchimera;  // example code; the library itself never does this

namespace {

void Show(const Database& db, Oid oid, const char* label) {
  const Object* obj = db.GetObject(oid);
  std::printf("%s:\n", label);
  std::printf("  class-history = %s\n",
              obj->NormalizedClassHistory(db.now()).ToString().c_str());
  std::printf("  v             = %s\n",
              obj->AttributeRecord().ToString().c_str());
}

}  // namespace

int main() {
  Database db;
  if (!InstallProjectSchema(&db).ok()) return 1;

  // t = 0: hire Ann as an employee.
  Oid ann = db.CreateObject("employee",
                            {{"name", Value::String("Ann")},
                             {"birthyear", Value::Integer(1970)},
                             {"salary", Value::Integer(48000)},
                             {"office", Value::String("A1")}})
                .value();
  std::printf("t=%lld: hired %s as employee\n",
              static_cast<long long>(db.now()), ann.ToString().c_str());

  // t = 30: promotion — "manager being a subclass of employee with some
  // extra attributes, like dependents and officialcar" (Section 5.2).
  (void)db.AdvanceTo(30);
  if (!db.Migrate(ann, "manager",
                  {{"dependents", Value::Integer(2)},
                   {"officialcar", Value::String("sedan")}})
           .ok()) {
    return 1;
  }
  std::printf("t=30: promoted to manager\n");
  Show(db, ann, "after promotion");
  std::printf("  pi(manager, 30)  contains Ann: %s\n",
              db.GetClass("manager")->InExtentAt(ann, 30) ? "yes" : "no");
  std::printf("  pi(manager, 29)  contains Ann: %s\n",
              db.GetClass("manager")->InExtentAt(ann, 29) ? "yes" : "no");

  // t = 60: "the other, rather undesirable case": demotion. The static
  // officialcar is dropped without trace; the temporal dependents value
  // is retained but closed.
  (void)db.AdvanceTo(60);
  if (!db.Migrate(ann, "employee").ok()) return 1;
  std::printf("\nt=60: transferred back to employee\n");
  Show(db, ann, "after demotion");
  const Object* obj = db.GetObject(ann);
  std::printf("  officialcar attribute present: %s\n",
              obj->Attribute("officialcar") != nullptr ? "yes" : "no");
  const Value* dependents = obj->Attribute("dependents");
  std::printf("  dependents value at t=45 (retained): %s\n",
              dependents->AsTemporal().At(45)->ToString().c_str());
  std::printf("  dependents value at t=60 (closed):   %s\n",
              dependents->AsTemporal().At(60) == nullptr
                  ? "undefined"
                  : "still defined?!");
  std::printf("  m_lifespan(ann, manager) = %s\n",
              db.MLifespan(ann, "manager").value().ToString().c_str());

  // Equality notions (Section 5.3): a second employee whose current state
  // matches Ann's but whose history differs.
  (void)db.AdvanceTo(80);
  Oid twin = db.CreateObject("employee",
                             {{"name", Value::String("Ann")},
                              {"birthyear", Value::Integer(1970)},
                              {"salary", Value::Integer(48000)},
                              {"office", Value::String("A1")}})
                 .value();
  const Object* a = db.GetObject(ann);
  const Object* b = db.GetObject(twin);
  std::printf("\nAnn (%s) vs the newly hired twin (%s):\n",
              ann.ToString().c_str(), twin.ToString().c_str());
  std::printf("  equal by identity:       %s\n",
              EqualByIdentity(*a, *b) ? "yes" : "no");
  std::printf("  equal by value:          %s (histories differ)\n",
              EqualByValue(*a, *b) ? "yes" : "no");
  // Ann still carries the *retained* dependents history from her manager
  // period (Section 5.2), so her state has an attribute the twin lacks —
  // even the snapshot-based equalities distinguish them.
  std::printf("  instantaneous-value eq.: %s (Ann retains 'dependents')\n",
              InstantaneousValueEqual(*a, *b, db.now()) ? "yes" : "no");
  std::printf("  weak-value equality:     %s\n",
              WeakValueEqual(*a, *b, db.now()) ? "yes" : "no");

  // Two genuinely interchangeable hires show the other end of the
  // lattice: identical histories => value equal (but never identical).
  Oid c1 = db.CreateObject("employee",
                           {{"name", Value::String("Cy")},
                            {"birthyear", Value::Integer(1990)},
                            {"salary", Value::Integer(40000)},
                            {"office", Value::String("C9")}})
               .value();
  Oid c2 = db.CreateObject("employee",
                           {{"name", Value::String("Cy")},
                            {"birthyear", Value::Integer(1990)},
                            {"salary", Value::Integer(40000)},
                            {"office", Value::String("C9")}})
               .value();
  const Object* x = db.GetObject(c1);
  const Object* y = db.GetObject(c2);
  std::printf("\ntwo identically-hired contractors (%s, %s):\n",
              c1.ToString().c_str(), c2.ToString().c_str());
  std::printf("  equal by identity:       %s\n",
              EqualByIdentity(*x, *y) ? "yes" : "no");
  std::printf("  equal by value:          %s\n",
              EqualByValue(*x, *y) ? "yes" : "no");
  std::printf("  instantaneous-value eq.: %s\n",
              InstantaneousValueEqual(*x, *y, db.now()) ? "yes" : "no");
  std::printf("  weak-value equality:     %s\n",
              WeakValueEqual(*x, *y, db.now()) ? "yes" : "no");

  // Coercion (Section 6.1): `name` is temporal, but seeing the object at
  // the superclass level only needs the current value — snapshot(i, now)
  // coerces the function to a plain value.
  Value snap = db.SnapshotOf(ann, kNow).value();
  std::printf("\ncoerced view (snapshot at now): name = %s\n",
              snap.FieldValue("name")->ToString().c_str());

  Status check = CheckDatabaseConsistency(db);
  std::printf("\nfull consistency check after all migrations: %s\n",
              check.ToString().c_str());
  return check.ok() ? 0 : 1;
}
