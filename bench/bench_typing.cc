// Experiment TY (DESIGN.md): the typing machinery of Definitions 3.5/3.6
// — type inference, legal-value checking, subtyping and lub — measured
// over values of growing structural depth and histories of growing
// length, plus the type-interning fast path.
#include <benchmark/benchmark.h>

#include "core/db/database.h"
#include "core/types/type_parser.h"
#include "core/types/type_registry.h"
#include "core/values/temporal_function.h"
#include "core/values/typing.h"
#include "core/values/value_parser.h"
#include "workload/random.h"

namespace tchimera {
namespace {

// A value of nesting depth d: record(set(record(...))) with scalars at the
// leaves.
Value DeepValue(int depth) {
  if (depth == 0) return Value::Integer(7);
  std::vector<Value> elems;
  for (int i = 0; i < 3; ++i) elems.push_back(DeepValue(depth - 1));
  return Value::Record({{"left", Value::Set(std::move(elems))},
                        {"right", Value::String("x")}})
      .value();
}

const Type* DeepType(int depth) {
  if (depth == 0) return types::Integer();
  return types::RecordOf({{"left", types::SetOf(DeepType(depth - 1))},
                          {"right", types::String()}})
      .value();
}

void BM_InferType(benchmark::State& state) {
  Database db;
  Value v = DeepValue(static_cast<int>(state.range(0)));
  TypingContext ctx = db.typing_context();
  for (auto _ : state) {
    auto t = InferType(v, 0, ctx);
    if (!t.ok()) state.SkipWithError("inference failed");
    benchmark::DoNotOptimize(t);
  }
  state.SetLabel("depth=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_InferType)->Arg(1)->Arg(3)->Arg(5);

void BM_CheckLegalValue(benchmark::State& state) {
  Database db;
  Value v = DeepValue(static_cast<int>(state.range(0)));
  const Type* t = DeepType(static_cast<int>(state.range(0)));
  TypingContext ctx = db.typing_context();
  for (auto _ : state) {
    Status s = CheckLegalValue(v, t, 0, ctx);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(s);
  }
  state.SetLabel("depth=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CheckLegalValue)->Arg(1)->Arg(3)->Arg(5);

void BM_CheckTemporalValue(benchmark::State& state) {
  // Legality of a temporal value is linear in its segment count.
  Database db;
  TemporalFunction f;
  Rng rng(9);
  TimePoint t = 0;
  for (int64_t i = 0; i < state.range(0); ++i) {
    (void)f.Define(Interval(t, t + 3), Value::Integer(rng.Uniform(0, 99)));
    t += 5;
  }
  Value v = Value::Temporal(std::move(f));
  const Type* type = types::Temporal(types::Integer()).value();
  TypingContext ctx = db.typing_context();
  for (auto _ : state) {
    Status s = CheckLegalValue(v, type, 0, ctx);
    benchmark::DoNotOptimize(s);
  }
  state.SetLabel("segments=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CheckTemporalValue)->Arg(8)->Arg(64)->Arg(512);

void BM_IsSubtypeIsaChain(benchmark::State& state) {
  // Subtype checks along an ISA chain of growing depth.
  Database db;
  std::string prev;
  for (int64_t i = 0; i < state.range(0); ++i) {
    ClassSpec spec;
    spec.name = "c" + std::to_string(i);
    if (!prev.empty()) spec.superclasses = {prev};
    (void)db.DefineClass(spec);
    prev = spec.name;
  }
  const Type* leaf = types::SetOf(types::Object(prev));
  const Type* root = types::SetOf(types::Object("c0"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsSubtype(leaf, root, db.isa()));
  }
  state.SetLabel("depth=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_IsSubtypeIsaChain)->Arg(4)->Arg(16)->Arg(64);

void BM_LeastUpperBound(benchmark::State& state) {
  Database db;
  ClassSpec person;
  person.name = "person";
  (void)db.DefineClass(person);
  // A wide fan of siblings: lub(person-sibling-i, person-sibling-j).
  for (int64_t i = 0; i < state.range(0); ++i) {
    ClassSpec spec;
    spec.name = "s" + std::to_string(i);
    spec.superclasses = {"person"};
    (void)db.DefineClass(spec);
  }
  const Type* a = types::Object("s0");
  const Type* b =
      types::Object("s" + std::to_string(state.range(0) - 1));
  for (auto _ : state) {
    auto lub = LeastUpperBound(a, b, db.isa());
    if (!lub.ok()) state.SkipWithError("lub failed");
    benchmark::DoNotOptimize(lub);
  }
  state.SetLabel("siblings=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_LeastUpperBound)->Arg(2)->Arg(16)->Arg(64);

void BM_TypeInterning(benchmark::State& state) {
  // Re-interning an existing structural type is a hash lookup.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        types::RecordOf({{"task", types::Object("project")},
                         {"startbudget", types::Real()},
                         {"endbudget", types::Real()}}));
  }
}
BENCHMARK(BM_TypeInterning);

void BM_TypeParse(benchmark::State& state) {
  const char* text =
      "record-of(task:temporal(project),startbudget:real,endbudget:real)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseType(text));
  }
}
BENCHMARK(BM_TypeParse);

void BM_ValueParse(benchmark::State& state) {
  const char* text = "(name:'Bob',score:{<[1,100],40>,<[101,200],70>})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseValue(text));
  }
}
BENCHMARK(BM_ValueParse);

}  // namespace
}  // namespace tchimera

BENCHMARK_MAIN();
