// Experiment AB (DESIGN.md): ablations of this implementation's own design
// choices (distinct from the paper's design axes, which T2a-T2c cover):
//
//   1. the O(1) tail fast path in TemporalFunction::AssertFrom vs the
//      general splice (Define) it otherwise falls back to;
//   2. set-valued temporal-function extents: membership-change cost as a
//      function of extent size (the whole current set is copied per
//      change);
//   3. type interning: pointer-equality subtype checks vs re-building the
//      type from parts each time (what a non-interned design would pay).
#include <benchmark/benchmark.h>

#include "core/db/database.h"
#include "core/schema/class_def.h"
#include "core/types/subtyping.h"
#include "core/types/type_registry.h"
#include "core/values/temporal_function.h"

namespace tchimera {
namespace {

void BM_AssertFromFastPath(benchmark::State& state) {
  // Appending updates at the moving tail (the production write path).
  TemporalFunction f;
  TimePoint t = 0;
  for (auto _ : state) {
    TimePoint at = t++;
    Status s = f.AssertFrom(at, Value::Integer(at % 7));
    if (!s.ok()) state.SkipWithError("assert failed");
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("tail append (fast path)");
}
BENCHMARK(BM_AssertFromFastPath);

void BM_AssertFromGeneralSplice(benchmark::State& state) {
  // The same semantic operation forced through the general splice: the
  // cost the fast path avoids, growing with accumulated history.
  const int64_t history = state.range(0);
  TemporalFunction f;
  for (TimePoint t = 0; t < history; ++t) {
    (void)f.AssertFrom(t, Value::Integer(t % 7));
  }
  TimePoint t = history;
  for (auto _ : state) {
    TimePoint at = t++;
    Status s =
        f.Define(Interval::FromUntilNow(at), Value::Integer(at % 7));
    if (!s.ok()) state.SkipWithError("define failed");
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("general splice, history=" + std::to_string(history));
}
BENCHMARK(BM_AssertFromGeneralSplice)->Arg(8)->Arg(64)->Arg(512);

void BM_ExtentMembershipChange(benchmark::State& state) {
  // AddMember/RemoveMember copies the current member set: O(extent).
  // This is the price of keeping extents as first-class temporal values
  // (the paper's class `history`, Definition 4.1) rather than per-object
  // interval indexes.
  const int64_t extent = state.range(0);
  ClassDef cls("c", 0, {}, {}, {}, {}, {});
  for (int64_t i = 0; i < extent; ++i) {
    (void)cls.AddMember(Oid{static_cast<uint64_t>(i + 1)}, 0);
  }
  TimePoint t = 1;
  uint64_t churn = extent + 1;
  for (auto _ : state) {
    (void)cls.AddMember(Oid{churn}, t);
    (void)cls.RemoveMember(Oid{churn}, t + 1);
    t += 2;
    ++churn;
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.SetLabel("extent=" + std::to_string(extent));
}
BENCHMARK(BM_ExtentMembershipChange)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_SubtypeInternedPointers(benchmark::State& state) {
  // With interning, a deep structural type compares by pointer: the
  // subtype check on equal types is O(1).
  EmptyIsaProvider isa;
  const Type* deep = types::SetOf(types::ListOf(types::SetOf(
      types::RecordOf({{"a", types::Integer()}, {"b", types::String()}})
          .value())));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsSubtype(deep, deep, isa));
  }
  state.SetLabel("interned (pointer equality)");
}
BENCHMARK(BM_SubtypeInternedPointers);

void BM_SubtypeRebuiltEachTime(benchmark::State& state) {
  // What a non-interned design would pay: reconstructing the type term
  // before every check (construction cost dominates; the check itself
  // still collapses via interning — the ablation isolates the factory
  // overhead a structural-equality design incurs per comparison).
  EmptyIsaProvider isa;
  const Type* reference = types::SetOf(types::ListOf(types::SetOf(
      types::RecordOf({{"a", types::Integer()}, {"b", types::String()}})
          .value())));
  for (auto _ : state) {
    const Type* rebuilt = types::SetOf(types::ListOf(types::SetOf(
        types::RecordOf({{"a", types::Integer()}, {"b", types::String()}})
            .value())));
    benchmark::DoNotOptimize(IsSubtype(rebuilt, reference, isa));
  }
  state.SetLabel("rebuilt per comparison");
}
BENCHMARK(BM_SubtypeRebuiltEachTime);

}  // namespace
}  // namespace tchimera

BENCHMARK_MAIN();
