// Experiment CC: the session/transaction engine — snapshot-read
// scaling across threads (the Table 3 functions are pure reads, so
// snapshot isolation should scale them near-linearly), MVCC interference
// (writer throughput must not degrade while a reader pins a snapshot,
// and commit cost must track touched objects, not database size) and
// group commit vs per-statement fdatasync (the sync count is the
// durability cost a batch amortizes).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/db/database.h"
#include "core/db/versioned_db.h"
#include "core/values/value.h"
#include "query/interpreter.h"
#include "query/session.h"
#include "storage/group_commit.h"
#include "storage/journal.h"
#include "workload/generator.h"

namespace tchimera {
namespace {

// One shared engine across all benchmark threads (that is the point:
// concurrent sessions on one engine).
Engine& SharedEngine() {
  static Engine& engine = *[] {
    auto db = std::make_unique<Database>();
    PopulationConfig config;
    config.persons = 100;
    config.projects = 20;
    config.timesteps = 24;
    config.updates_per_step = 8;
    config.migration_rate = 0.2;
    (void)PopulateDatabase(db.get(), config);
    return new Engine(std::move(db));
  }();
  return engine;
}

std::string ScratchDir(const std::string& name) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("tchimera_bench_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// --- read scaling: N threads, each with its own Session, running the
// same TQL query against pinned snapshots. Scaling past 1 thread is the
// acceptance bar for the snapshot-isolated read path.

void BM_SnapshotReads(benchmark::State& state) {
  Engine& engine = SharedEngine();
  Session session = engine.OpenSession();
  for (auto _ : state) {
    Result<std::string> rows =
        session.Execute("select x.name from x in person");
    if (!rows.ok()) state.SkipWithError("read failed");
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotReads)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// A cheaper read (single-object snapshot) to show the scaling is not an
// artifact of one expensive query dominating.
void BM_SnapshotPointReads(benchmark::State& state) {
  Engine& engine = SharedEngine();
  Session session = engine.OpenSession();
  for (auto _ : state) {
    Result<std::string> v = session.Execute("snapshot i1");
    if (!v.ok()) state.SkipWithError("read failed");
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotPointReads)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// --- MVCC interference: writer commit throughput with (Arg 1) and
// without (Arg 0) a reader snapshot pinned across the entire run. The
// two arms must be indistinguishable — a pinned snapshot only keeps its
// own version alive, it never gates the writer. (Under the pre-MVCC
// shared_mutex protocol the Arg(1) arm would simply hang on the first
// commit.)

void BM_WriterCommitsUnderPinnedSnapshot(benchmark::State& state) {
  const bool pin = state.range(0) != 0;
  Engine engine;
  Session setup = engine.OpenSession();
  (void)setup.Execute("define class emp attributes v: integer end");
  Session reader = engine.OpenSession();
  ReadSnapshot pinned;
  if (pin) pinned = reader.snapshot();  // held until the run ends
  Session writer = engine.OpenSession();
  for (auto _ : state) {
    Result<std::string> out = writer.Execute("create emp (v: 1)");
    if (!out.ok()) state.SkipWithError("write failed");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["pinned"] = pin ? 1.0 : 0.0;
}
BENCHMARK(BM_WriterCommitsUnderPinnedSnapshot)->Arg(0)->Arg(1);

// --- MVCC commit cost vs touched objects: a commit publishes a
// copy-on-write Database — the copy shares every class and object shard
// with the previous version, and the next writes re-clone only what they
// touch. Time per touched object should therefore be flat as the touch
// count grows, on a database whose total size (4096 objects) never
// changes.

void BM_CommitCostVsTouchedObjects(benchmark::State& state) {
  constexpr int kDbObjects = 4096;
  const int touched = static_cast<int>(state.range(0));
  VersionedDatabase vdb;
  std::vector<Oid> oids;
  {
    WriteGuard guard = vdb.BeginWrite();
    Interpreter interp(&guard.db());
    if (!interp.Execute("define class emp attributes v: integer end").ok()) {
      state.SkipWithError("schema failed");
      return;
    }
    oids.reserve(kDbObjects);
    for (int i = 0; i < kDbObjects; ++i) {
      Result<Oid> oid =
          guard.db().CreateObject("emp", {{"v", Value::Integer(0)}});
      if (!oid.ok()) {
        state.SkipWithError("populate failed");
        return;
      }
      oids.push_back(*oid);
    }
    guard.Commit();
  }
  int64_t next = 0;
  for (auto _ : state) {
    WriteGuard guard = vdb.BeginWrite();
    for (int k = 0; k < touched; ++k) {
      Oid oid = oids[static_cast<size_t>(next) % oids.size()];
      ++next;
      if (!guard.db().UpdateAttribute(oid, "v", Value::Integer(next)).ok()) {
        state.SkipWithError("update failed");
        return;
      }
    }
    benchmark::DoNotOptimize(guard.Commit());
  }
  state.SetItemsProcessed(state.iterations() * touched);
  state.counters["touched"] = static_cast<double>(touched);
  state.counters["db_objects"] = kDbObjects;
}
BENCHMARK(BM_CommitCostVsTouchedObjects)->Arg(1)->Arg(16)->Arg(256)->Arg(1024);

// --- single-writer latency under a linger window: with max_delay set, a
// lone committer's Await must NOT pay the linger — its pending statement
// is the whole non-durable backlog, so the leader flushes immediately.
// The bench measures the full Enqueue+Await round trip and fails
// (SkipWithError) if the average latency reaches max_delay, which is
// what the pre-fix dead linger cost on every single-writer commit.

void BM_SingleWriterLatencyWithLinger(benchmark::State& state) {
  std::string dir = ScratchDir("linger");
  GroupCommitOptions gopts;
  gopts.max_delay = std::chrono::microseconds(20000);  // 20ms window
  GroupCommitJournal sink;
  if (!sink.Open(dir + "/journal.tchl", JournalOptions{}, gopts).ok()) {
    state.SkipWithError("journal open failed");
    return;
  }
  std::chrono::nanoseconds in_commit{0};
  for (auto _ : state) {
    auto begin = std::chrono::steady_clock::now();
    CommitSink::Ticket ticket = sink.Enqueue("tick 1");
    Status durable = sink.Await(ticket);
    in_commit += std::chrono::steady_clock::now() - begin;
    if (!durable.ok()) {
      state.SkipWithError("await failed");
      break;
    }
  }
  const int64_t iterations = std::max<int64_t>(1, state.iterations());
  const auto avg = in_commit / iterations;
  state.counters["avg_commit_us"] =
      std::chrono::duration<double, std::micro>(avg).count();
  if (avg >= gopts.max_delay) {
    state.SkipWithError(
        "single-writer commit latency >= max_delay: lone-committer "
        "linger skip regressed");
  }
  sink.Close();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SingleWriterLatencyWithLinger)->UseRealTime();

// --- durability: group commit vs one fdatasync per statement. The
// baseline sink syncs inside Enqueue (the pre-refactor behavior: every
// acknowledged statement pays a full fdatasync); GroupCommitJournal
// batches concurrent commits into one sync. `syncs` is the counter the
// batch amortizes — fewer syncs per committed statement is the win.

class PerStatementSink final : public CommitSink {
 public:
  Status Open(const std::string& path) {
    JournalOptions options;
    options.sync = SyncPolicy::kEveryAppend;
    return journal_.Open(path, options);
  }
  Ticket Enqueue(std::string_view statement) override {
    std::lock_guard<std::mutex> lock(mu_);
    // kEveryAppend: the append itself fsyncs before returning.
    last_ = journal_.Append(statement);
    return Ticket{++seq_};
  }
  Status Await(Ticket) override {
    std::lock_guard<std::mutex> lock(mu_);
    return last_;
  }
  size_t sync_count() {
    std::lock_guard<std::mutex> lock(mu_);
    return journal_.sync_count();
  }

 private:
  std::mutex mu_;
  Journal journal_;
  uint64_t seq_ = 0;
  Status last_;
};

// Shared state for a multi-threaded commit benchmark: thread 0 sets up
// the engine + sink, every thread hammers writes, thread 0 reports.
struct CommitBench {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<GroupCommitJournal> group;
  std::unique_ptr<PerStatementSink> per_statement;
};
CommitBench g_commit;
// Threads other than 0 spin on this before touching g_commit: benchmark
// only synchronizes threads at the state loop, not before it.
std::atomic<bool> g_commit_ready{false};

void SetUpCommitBench(bool grouped, const std::string& dir) {
  g_commit.engine = std::make_unique<Engine>();
  Session setup = g_commit.engine->OpenSession();
  (void)setup.Execute("define class emp attributes v: integer end");
  if (grouped) {
    g_commit.group = std::make_unique<GroupCommitJournal>();
    (void)g_commit.group->Open(dir + "/journal.tchl");
    g_commit.engine->set_commit_sink(g_commit.group.get());
  } else {
    g_commit.per_statement = std::make_unique<PerStatementSink>();
    (void)g_commit.per_statement->Open(dir + "/journal.tchl");
    g_commit.engine->set_commit_sink(g_commit.per_statement.get());
  }
}

void RunCommitLoop(benchmark::State& state) {
  while (!g_commit_ready.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  Session session = g_commit.engine->OpenSession();
  for (auto _ : state) {
    Result<std::string> out = session.Execute("create emp (v: 1)");
    if (!out.ok()) state.SkipWithError("write failed");
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CommitGrouped(benchmark::State& state) {
  if (state.thread_index() == 0) {
    SetUpCommitBench(/*grouped=*/true, ScratchDir("grouped"));
    g_commit_ready.store(true, std::memory_order_release);
  }
  RunCommitLoop(state);
  if (state.thread_index() == 0) {
    state.counters["syncs"] =
        static_cast<double>(g_commit.group->batches());
    state.counters["commits"] =
        static_cast<double>(g_commit.group->durable());
    g_commit.group->Close();
    g_commit_ready.store(false, std::memory_order_release);
    g_commit = CommitBench{};
  }
}
BENCHMARK(BM_CommitGrouped)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_CommitPerStatement(benchmark::State& state) {
  if (state.thread_index() == 0) {
    SetUpCommitBench(/*grouped=*/false, ScratchDir("per_statement"));
    g_commit_ready.store(true, std::memory_order_release);
  }
  RunCommitLoop(state);
  if (state.thread_index() == 0) {
    state.counters["syncs"] =
        static_cast<double>(g_commit.per_statement->sync_count());
    g_commit_ready.store(false, std::memory_order_release);
    g_commit = CommitBench{};
  }
}
BENCHMARK(BM_CommitPerStatement)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// --- machine-readable report: optimistic multi-writer scaling ---------------
//
// Emitted as BENCH_concurrency.json (CI uploads it as an artifact): write
// throughput vs writer count plus the observed abort rate, on two
// workloads — disjoint objects (the scaling case: validation never
// conflicts, so throughput must grow with writers) and one shared object
// (the contention case: every commit round has one winner, abort rate is
// the interesting number). The acceptance bar for the optimistic
// protocol is >= 2x disjoint-object throughput at 4 writers vs 1.

struct WriterPoint {
  int writers = 0;
  uint64_t statements = 0;   // successfully committed statements
  uint64_t conflicts = 0;    // validation aborts (internally retried)
  double seconds = 0.0;
  double throughput = 0.0;   // statements per second
  double abort_rate = 0.0;   // conflicts / (commits + conflicts)
};

WriterPoint MeasureWriters(int writers, int per_writer, bool disjoint) {
  Engine engine;
  {
    Session setup = engine.OpenSession();
    (void)setup.Execute(
        "define class emp attributes v: temporal(integer) end");
    (void)setup.Execute("tick 2000");
    // One target object per writer (disjoint) or a single shared one.
    const int objects = disjoint ? writers : 1;
    for (int i = 0; i < objects; ++i) {
      (void)setup.Execute("create emp at 0 (v: 0)");
    }
  }
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> threads;
  threads.reserve(writers);
  const auto begin = std::chrono::steady_clock::now();
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&engine, &committed, t, per_writer, disjoint] {
      Session session = engine.OpenSession();
      const std::string target = "i" + std::to_string(disjoint ? t + 1 : 1);
      for (int i = 0; i < per_writer; ++i) {
        // The model's bread-and-butter mutation: patch a window of a
        // temporal attribute's history (Table 2 update semantics) — the
        // history merge is real per-statement work, where a bare integer
        // store would only measure commit-lock overhead.
        const int lo = (i * 2) % 1600;
        if (session
                .Execute("update " + target + " set v = " +
                         std::to_string(i) + " during [" +
                         std::to_string(lo) + "," + std::to_string(lo + 1) +
                         "]")
                .ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  WriterPoint point;
  point.writers = writers;
  point.statements = committed.load();
  point.conflicts = engine.conflict_count();
  point.seconds = std::chrono::duration<double>(end - begin).count();
  point.throughput =
      point.seconds > 0.0 ? point.statements / point.seconds : 0.0;
  const double attempts =
      static_cast<double>(point.statements + point.conflicts);
  point.abort_rate = attempts > 0.0 ? point.conflicts / attempts : 0.0;
  return point;
}

void AppendPoints(const std::vector<WriterPoint>& points, std::string* out) {
  char buf[256];
  for (size_t i = 0; i < points.size(); ++i) {
    const WriterPoint& p = points[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"writers\": %d, \"statements\": %llu, "
                  "\"conflicts\": %llu, \"seconds\": %.6f, "
                  "\"throughput_stmts_per_sec\": %.1f, "
                  "\"abort_rate\": %.4f}%s\n",
                  p.writers,
                  static_cast<unsigned long long>(p.statements),
                  static_cast<unsigned long long>(p.conflicts), p.seconds,
                  p.throughput, p.abort_rate,
                  i + 1 < points.size() ? "," : "");
    *out += buf;
  }
}

// Single-threaded phase breakdown of one optimistic statement at the
// VersionedDatabase layer: begin (COW copy of the base), execute (parse +
// typecheck + history merge on the private copy) and commit (the only
// span under the writer mutex). begin+execute parallelize across
// writers; commit serializes — the serial fraction bounds scaling via
// Amdahl, which is the honest number to report when the measuring host
// itself has too few cores to demonstrate the speedup directly.
struct PhaseBreakdown {
  double begin_us = 0.0;
  double exec_us = 0.0;
  double commit_us = 0.0;
  double serial_fraction = 0.0;
  double amdahl(int writers) const {
    if (serial_fraction <= 0.0) return static_cast<double>(writers);
    return 1.0 /
           (serial_fraction + (1.0 - serial_fraction) / writers);
  }
};

PhaseBreakdown MeasurePhases(int statements) {
  VersionedDatabase vdb;
  {
    Interpreter interp(&vdb.writer_db());
    (void)interp.Execute(
        "define class emp attributes v: temporal(integer) end");
    (void)interp.Execute("tick 2000");
    (void)interp.Execute("create emp at 0 (v: 0)");
    vdb.PublishWriterState();
  }
  PhaseBreakdown phases;
  for (int i = 0; i < statements; ++i) {
    const auto a = std::chrono::steady_clock::now();
    OptimisticTransaction txn = vdb.BeginTransaction();
    const auto b = std::chrono::steady_clock::now();
    Interpreter interp(&txn.db());
    const int lo = (i * 2) % 1600;
    if (!interp
             .Execute("update i1 set v = " + std::to_string(i) +
                      " during [" + std::to_string(lo) + "," +
                      std::to_string(lo + 1) + "]")
             .ok()) {
      break;
    }
    const auto c = std::chrono::steady_clock::now();
    if (!vdb.CommitTransaction(&txn).ok()) break;
    const auto d = std::chrono::steady_clock::now();
    phases.begin_us += std::chrono::duration<double, std::micro>(b - a).count();
    phases.exec_us += std::chrono::duration<double, std::micro>(c - b).count();
    phases.commit_us +=
        std::chrono::duration<double, std::micro>(d - c).count();
  }
  phases.begin_us /= statements;
  phases.exec_us /= statements;
  phases.commit_us /= statements;
  const double total = phases.begin_us + phases.exec_us + phases.commit_us;
  phases.serial_fraction = total > 0.0 ? phases.commit_us / total : 0.0;
  return phases;
}

int WriteConcurrencyReport(const std::string& path) {
  constexpr int kPerWriter = 800;
  constexpr int kRepeats = 3;  // keep the best run per point (noise floor)
  const std::vector<int> writer_counts = {1, 2, 4, 8};

  std::vector<WriterPoint> disjoint;
  std::vector<WriterPoint> contended;
  for (int writers : writer_counts) {
    WriterPoint best_d, best_c;
    for (int r = 0; r < kRepeats; ++r) {
      WriterPoint d = MeasureWriters(writers, kPerWriter, /*disjoint=*/true);
      if (d.throughput > best_d.throughput) best_d = d;
      WriterPoint c = MeasureWriters(writers, kPerWriter, /*disjoint=*/false);
      if (c.throughput > best_c.throughput) best_c = c;
    }
    disjoint.push_back(best_d);
    contended.push_back(best_c);
  }

  double speedup4 = 0.0;
  for (const WriterPoint& p : disjoint) {
    if (p.writers == 4 && disjoint.front().throughput > 0.0) {
      speedup4 = p.throughput / disjoint.front().throughput;
    }
  }
  const PhaseBreakdown phases = MeasurePhases(kPerWriter);
  const unsigned cores = std::thread::hardware_concurrency();

  std::string json;
  json += "{\n";
  json += "  \"benchmark\": \"concurrency\",\n";
  json += "  \"protocol\": \"optimistic-multi-writer\",\n";
  json += "  \"statements_per_writer\": " + std::to_string(kPerWriter) +
          ",\n";
  json += "  \"host_cores\": " + std::to_string(cores) + ",\n";
  json += "  \"disjoint_objects\": [\n";
  AppendPoints(disjoint, &json);
  json += "  ],\n";
  json += "  \"shared_object\": [\n";
  AppendPoints(contended, &json);
  json += "  ],\n";
  char buf[256];
  // Measured speedup is bounded by min(host cores, Amdahl); the phase
  // breakdown makes the protocol-level bound visible even when the host
  // has too few cores to demonstrate it.
  std::snprintf(buf, sizeof(buf),
                "  \"phase_us\": {\"begin\": %.3f, \"execute\": %.3f, "
                "\"commit_serial\": %.3f},\n"
                "  \"commit_serial_fraction\": %.3f,\n"
                "  \"amdahl_projected_speedup\": {\"2\": %.2f, \"4\": %.2f, "
                "\"8\": %.2f},\n",
                phases.begin_us, phases.exec_us, phases.commit_us,
                phases.serial_fraction, phases.amdahl(2), phases.amdahl(4),
                phases.amdahl(8));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"disjoint_speedup_4_writers_vs_1\": %.2f\n", speedup4);
  json += buf;
  json += "}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (disjoint 4-writer speedup: %.2fx)\n%s",
               path.c_str(), speedup4, json.c_str());
  return 0;
}

}  // namespace
}  // namespace tchimera

// Custom main: the google-benchmark suite as usual, plus the
// machine-readable multi-writer report.
//   --json[=PATH]  write BENCH_concurrency.json (or PATH) after the suite
//   --json-only    skip the google-benchmark suite (the CI artifact path)
int main(int argc, char** argv) {
  std::string json_path;
  bool json_only = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-only") {
      json_only = true;
      if (json_path.empty()) json_path = "BENCH_concurrency.json";
    } else if (arg == "--json") {
      json_path = "BENCH_concurrency.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_only) {
    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  if (!json_path.empty()) {
    return tchimera::WriteConcurrencyReport(json_path);
  }
  return 0;
}
