// Experiment CC: the session/transaction engine — snapshot-read
// scaling across threads (the Table 3 functions are pure reads, so
// snapshot isolation should scale them near-linearly) and group commit
// vs per-statement fdatasync (the sync count is the durability cost a
// batch amortizes).
#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "query/session.h"
#include "storage/group_commit.h"
#include "storage/journal.h"
#include "workload/generator.h"

namespace tchimera {
namespace {

// One shared engine across all benchmark threads (that is the point:
// concurrent sessions on one engine).
Engine& SharedEngine() {
  static Engine& engine = *[] {
    auto db = std::make_unique<Database>();
    PopulationConfig config;
    config.persons = 100;
    config.projects = 20;
    config.timesteps = 24;
    config.updates_per_step = 8;
    config.migration_rate = 0.2;
    (void)PopulateDatabase(db.get(), config);
    return new Engine(std::move(db));
  }();
  return engine;
}

std::string ScratchDir(const std::string& name) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("tchimera_bench_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// --- read scaling: N threads, each with its own Session, running the
// same TQL query against pinned snapshots. Scaling past 1 thread is the
// acceptance bar for the snapshot-isolated read path.

void BM_SnapshotReads(benchmark::State& state) {
  Engine& engine = SharedEngine();
  Session session = engine.OpenSession();
  for (auto _ : state) {
    Result<std::string> rows =
        session.Execute("select x.name from x in person");
    if (!rows.ok()) state.SkipWithError("read failed");
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotReads)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// A cheaper read (single-object snapshot) to show the scaling is not an
// artifact of one expensive query dominating.
void BM_SnapshotPointReads(benchmark::State& state) {
  Engine& engine = SharedEngine();
  Session session = engine.OpenSession();
  for (auto _ : state) {
    Result<std::string> v = session.Execute("snapshot i1");
    if (!v.ok()) state.SkipWithError("read failed");
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotPointReads)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// --- durability: group commit vs one fdatasync per statement. The
// baseline sink syncs inside Enqueue (the pre-refactor behavior: every
// acknowledged statement pays a full fdatasync); GroupCommitJournal
// batches concurrent commits into one sync. `syncs` is the counter the
// batch amortizes — fewer syncs per committed statement is the win.

class PerStatementSink final : public CommitSink {
 public:
  Status Open(const std::string& path) {
    JournalOptions options;
    options.sync = SyncPolicy::kEveryAppend;
    return journal_.Open(path, options);
  }
  Ticket Enqueue(std::string_view statement) override {
    std::lock_guard<std::mutex> lock(mu_);
    // kEveryAppend: the append itself fsyncs before returning.
    last_ = journal_.Append(statement);
    return Ticket{++seq_};
  }
  Status Await(Ticket) override {
    std::lock_guard<std::mutex> lock(mu_);
    return last_;
  }
  size_t sync_count() {
    std::lock_guard<std::mutex> lock(mu_);
    return journal_.sync_count();
  }

 private:
  std::mutex mu_;
  Journal journal_;
  uint64_t seq_ = 0;
  Status last_;
};

// Shared state for a multi-threaded commit benchmark: thread 0 sets up
// the engine + sink, every thread hammers writes, thread 0 reports.
struct CommitBench {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<GroupCommitJournal> group;
  std::unique_ptr<PerStatementSink> per_statement;
};
CommitBench g_commit;
// Threads other than 0 spin on this before touching g_commit: benchmark
// only synchronizes threads at the state loop, not before it.
std::atomic<bool> g_commit_ready{false};

void SetUpCommitBench(bool grouped, const std::string& dir) {
  g_commit.engine = std::make_unique<Engine>();
  Session setup = g_commit.engine->OpenSession();
  (void)setup.Execute("define class emp attributes v: integer end");
  if (grouped) {
    g_commit.group = std::make_unique<GroupCommitJournal>();
    (void)g_commit.group->Open(dir + "/journal.tchl");
    g_commit.engine->set_commit_sink(g_commit.group.get());
  } else {
    g_commit.per_statement = std::make_unique<PerStatementSink>();
    (void)g_commit.per_statement->Open(dir + "/journal.tchl");
    g_commit.engine->set_commit_sink(g_commit.per_statement.get());
  }
}

void RunCommitLoop(benchmark::State& state) {
  while (!g_commit_ready.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  Session session = g_commit.engine->OpenSession();
  for (auto _ : state) {
    Result<std::string> out = session.Execute("create emp (v: 1)");
    if (!out.ok()) state.SkipWithError("write failed");
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CommitGrouped(benchmark::State& state) {
  if (state.thread_index() == 0) {
    SetUpCommitBench(/*grouped=*/true, ScratchDir("grouped"));
    g_commit_ready.store(true, std::memory_order_release);
  }
  RunCommitLoop(state);
  if (state.thread_index() == 0) {
    state.counters["syncs"] =
        static_cast<double>(g_commit.group->batches());
    state.counters["commits"] =
        static_cast<double>(g_commit.group->durable());
    g_commit.group->Close();
    g_commit_ready.store(false, std::memory_order_release);
    g_commit = CommitBench{};
  }
}
BENCHMARK(BM_CommitGrouped)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_CommitPerStatement(benchmark::State& state) {
  if (state.thread_index() == 0) {
    SetUpCommitBench(/*grouped=*/false, ScratchDir("per_statement"));
    g_commit_ready.store(true, std::memory_order_release);
  }
  RunCommitLoop(state);
  if (state.thread_index() == 0) {
    state.counters["syncs"] =
        static_cast<double>(g_commit.per_statement->sync_count());
    g_commit_ready.store(false, std::memory_order_release);
    g_commit = CommitBench{};
  }
}
BENCHMARK(BM_CommitPerStatement)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace tchimera

BENCHMARK_MAIN();
