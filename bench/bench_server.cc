// Experiment SV: the socket server front end (src/server/server.h) —
// request round-trip latency, sustained mixed-workload throughput over
// persistent connections, connection-scale fan-in (the acceptance bar:
// >= 1000 concurrent connections served without a failure), and
// backpressure behavior when admission control sheds load.
//
// The JSON report (BENCH_server.json, uploaded by CI) carries the
// serving numbers a deployment cares about: connections sustained,
// requests/sec through the pooled sessions, conflict retries absorbed by
// the server's budget, and how many retryable rejections clients saw
// while the server protected itself.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "query/session.h"
#include "server/client.h"
#include "server/net.h"
#include "server/server.h"
#include "server/wire.h"
#include "storage/group_commit.h"

namespace tchimera {
namespace {

std::string ScratchDir(const std::string& name) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("tchimera_bench_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// Engine + durable sink + server, assembled the way tchimera_serve does.
struct BenchServer {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<GroupCommitJournal> sink;
  std::unique_ptr<Server> server;
  std::string dir;

  static bool Start(const std::string& name, ServerOptions options,
                    BenchServer* out) {
    out->dir = ScratchDir(name);
    out->engine = std::make_unique<Engine>();
    out->sink = std::make_unique<GroupCommitJournal>();
    if (!out->sink->Open(out->dir + "/journal.tql").ok()) return false;
    out->engine->set_commit_sink(out->sink.get());
    GroupCommitJournal* sink = out->sink.get();
    options.commit_backlog = [sink]() -> uint64_t {
      uint64_t d = sink->durable();
      uint64_t e = sink->enqueued();
      return e > d ? e - d : 0;
    };
    options.port = 0;
    out->server = std::make_unique<Server>(out->engine.get(), options);
    return out->server->Start().ok();
  }

  bool Seed() {
    Result<std::unique_ptr<Client>> c =
        Client::Connect("127.0.0.1", server->port());
    if (!c.ok()) return false;
    return (*c)->Execute("define class item attributes name: string, "
                         "qty: integer end")
               .ok() &&
           (*c)->Execute("create item (name: 'seed', qty: 0)").ok();
  }
};

// --- micro: wire codec and single-connection round-trip --------------------

void BM_FrameEncodeDecode(benchmark::State& state) {
  const std::string statement(static_cast<size_t>(state.range(0)), 's');
  FrameReader reader(1 << 20);
  Frame frame;
  for (auto _ : state) {
    std::string encoded = EncodeRequest(statement, 0);
    reader.Feed(encoded);
    if (reader.Next(&frame) != FrameReader::Outcome::kFrame) {
      state.SkipWithError("decode failed");
      break;
    }
    benchmark::DoNotOptimize(frame.payload.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(statement.size() + 6));
}
BENCHMARK(BM_FrameEncodeDecode)->Arg(64)->Arg(1024)->Arg(65536);

void BM_RequestRoundTrip(benchmark::State& state) {
  static BenchServer& bench = *new BenchServer();
  static bool ready = [] {
    ServerOptions options;
    options.worker_threads = 2;
    return BenchServer::Start("srv_rtt", options, &bench) && bench.Seed();
  }();
  if (!ready) {
    state.SkipWithError("server setup failed");
    return;
  }
  Result<std::unique_ptr<Client>> client =
      Client::Connect("127.0.0.1", bench.server->port());
  if (!client.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  for (auto _ : state) {
    Result<std::string> r =
        (*client)->Execute("select x.qty from x in item");
    if (!r.ok()) {
      state.SkipWithError("request failed");
      break;
    }
    benchmark::DoNotOptimize(r.value().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RequestRoundTrip);

// --- the JSON report -------------------------------------------------------

struct PhaseResult {
  uint64_t requests = 0;
  uint64_t failures = 0;
  double seconds = 0;
  double per_sec() const { return seconds > 0 ? requests / seconds : 0; }
};

// `threads` drivers, each owning `conns_per_thread` persistent
// connections, each connection issuing `requests_per_conn` statements
// round-robin (1 write : 9 reads). Retryable errors are resent
// (ExecuteRetrying); anything else counts as a failure.
PhaseResult DriveWorkload(uint16_t port, int threads, int conns_per_thread,
                          int requests_per_conn,
                          std::atomic<uint64_t>* retries_absorbed) {
  PhaseResult result;
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> requests{0};
  auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  for (int t = 0; t < threads; ++t) {
    drivers.emplace_back([&, t] {
      std::vector<std::unique_ptr<Client>> conns;
      for (int c = 0; c < conns_per_thread; ++c) {
        Result<std::unique_ptr<Client>> client =
            Client::Connect("127.0.0.1", port);
        if (!client.ok()) {
          failures.fetch_add(1);
          continue;
        }
        conns.push_back(std::move(client).value());
      }
      for (int r = 0; r < requests_per_conn; ++r) {
        for (size_t c = 0; c < conns.size(); ++c) {
          bool write = (r % 10) == 0;
          std::string stmt =
              write ? "update i1 set qty = " +
                          std::to_string(t * 1'000'000 + r)
                    : "select x.qty from x in item";
          Result<std::string> out = conns[c]->ExecuteRetrying(stmt);
          requests.fetch_add(1);
          if (!out.ok()) failures.fetch_add(1);
        }
      }
      if (retries_absorbed != nullptr) {
        uint64_t absorbed = 0;
        for (const auto& conn : conns) absorbed += conn->retries_absorbed();
        retries_absorbed->fetch_add(absorbed);
      }
    });
  }
  for (std::thread& d : drivers) d.join();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  result.requests = requests.load();
  result.failures = failures.load();
  return result;
}

// Holds open `total` concurrent connections (the fan-in scale test),
// then round-trips one request on every single one: each connection must
// be live and served, not merely accepted.
bool HoldConnections(uint16_t port, int total, uint64_t* served,
                     uint64_t* failed) {
  const int kThreads = 8;
  std::atomic<uint64_t> ok{0}, bad{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&, t] {
      int quota = total / kThreads + (t < total % kThreads ? 1 : 0);
      std::vector<std::unique_ptr<Client>> conns;
      for (int i = 0; i < quota; ++i) {
        Result<std::unique_ptr<Client>> client =
            Client::Connect("127.0.0.1", port);
        if (!client.ok()) {
          bad.fetch_add(1);
          continue;
        }
        conns.push_back(std::move(client).value());
      }
      for (auto& conn : conns) {
        Result<std::string> r =
            conn->ExecuteRetrying("select x.qty from x in item");
        if (r.ok()) {
          ok.fetch_add(1);
        } else {
          bad.fetch_add(1);
        }
      }
      // All connections stay open until here: the server holds
      // `total` concurrent sockets while every request is served.
    });
  }
  for (std::thread& d : drivers) d.join();
  *served = ok.load();
  *failed = bad.load();
  return bad.load() == 0;
}

int WriteServerReport(const std::string& path) {
  TryRaiseNofileLimit(16384);

  // Phase 1+2 server: generous admission so the workload itself is the
  // limit. A small worker pool, as deployed.
  BenchServer main_srv;
  ServerOptions options;
  options.worker_threads = 4;
  options.max_pending_requests = 4096;
  options.max_commit_backlog = 1 << 20;
  if (!BenchServer::Start("srv_report", options, &main_srv) ||
      !main_srv.Seed()) {
    std::fprintf(stderr, "bench server setup failed\n");
    return 1;
  }

  // Phase 1: connection scale. 1000 concurrent connections, one served
  // request each.
  constexpr int kConnections = 1000;
  uint64_t scale_served = 0, scale_failed = 0;
  bool scale_ok = HoldConnections(main_srv.server->port(), kConnections,
                                  &scale_served, &scale_failed);

  // Phase 2: sustained mixed throughput over persistent connections.
  std::atomic<uint64_t> throughput_retries{0};
  PhaseResult throughput = DriveWorkload(main_srv.server->port(),
                                         /*threads=*/4,
                                         /*conns_per_thread=*/4,
                                         /*requests_per_conn=*/250,
                                         &throughput_retries);
  const ServerStats& main_stats = main_srv.server->stats();
  uint64_t conflict_retries = main_stats.conflict_retries.load();
  uint64_t conflict_exhausted = main_stats.conflict_budget_exhausted.load();
  main_srv.server->Stop();
  main_srv.sink->Close();

  // Phase 3: backpressure. A deliberately tiny admission window and one
  // worker; a burst of drivers must see retryable rejections (shed load)
  // while every request eventually lands via client backoff.
  BenchServer tight;
  ServerOptions tight_options;
  tight_options.worker_threads = 1;
  tight_options.max_pending_requests = 2;
  tight_options.max_commit_backlog = 1;
  if (!BenchServer::Start("srv_tight", tight_options, &tight) ||
      !tight.Seed()) {
    std::fprintf(stderr, "backpressure server setup failed\n");
    return 1;
  }
  std::atomic<uint64_t> bp_retries{0};
  PhaseResult pressure = DriveWorkload(tight.server->port(),
                                       /*threads=*/8,
                                       /*conns_per_thread=*/2,
                                       /*requests_per_conn=*/25,
                                       &bp_retries);
  uint64_t rejections = tight.server->stats().admission_rejections.load();
  tight.server->Stop();
  tight.sink->Close();

  char buf[256];
  std::string json;
  json += "{\n";
  json += "  \"benchmark\": \"server\",\n";
  json += "  \"connection_scale\": {\n";
  json += "    \"connections\": " + std::to_string(kConnections) + ",\n";
  json += "    \"served\": " + std::to_string(scale_served) + ",\n";
  json += "    \"failed\": " + std::to_string(scale_failed) + ",\n";
  json += std::string("    \"sustained\": ") +
          (scale_ok ? "true" : "false") + "\n";
  json += "  },\n";
  std::snprintf(buf, sizeof(buf),
                "  \"throughput\": {\n"
                "    \"requests\": %llu,\n"
                "    \"failures\": %llu,\n"
                "    \"seconds\": %.3f,\n"
                "    \"requests_per_sec\": %.1f,\n"
                "    \"conflict_retries\": %llu,\n"
                "    \"conflict_budget_exhausted\": %llu,\n"
                "    \"client_retries_absorbed\": %llu\n"
                "  },\n",
                static_cast<unsigned long long>(throughput.requests),
                static_cast<unsigned long long>(throughput.failures),
                throughput.seconds, throughput.per_sec(),
                static_cast<unsigned long long>(conflict_retries),
                static_cast<unsigned long long>(conflict_exhausted),
                static_cast<unsigned long long>(throughput_retries.load()));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"backpressure\": {\n"
                "    \"requests\": %llu,\n"
                "    \"failures\": %llu,\n"
                "    \"retryable_rejections\": %llu,\n"
                "    \"client_retries_absorbed\": %llu\n"
                "  }\n",
                static_cast<unsigned long long>(pressure.requests),
                static_cast<unsigned long long>(pressure.failures),
                static_cast<unsigned long long>(rejections),
                static_cast<unsigned long long>(bp_retries.load()));
  json += buf;
  json += "}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n%s", path.c_str(), json.c_str());
  // The acceptance gates: full fan-in with zero failures, and observed
  // load-shedding under the tight server.
  if (!scale_ok || throughput.failures != 0) return 1;
  if (rejections == 0) {
    std::fprintf(stderr, "expected backpressure rejections, saw none\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tchimera

// Flags (mirrors the other bench binaries):
//   --json[=PATH]  write BENCH_server.json (or PATH) after the suite
//   --json-only    skip the google-benchmark suite (the CI artifact path)
int main(int argc, char** argv) {
  tchimera::IgnoreSigpipe();
  std::string json_path;
  bool json_only = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-only") {
      json_only = true;
      if (json_path.empty()) json_path = "BENCH_server.json";
    } else if (arg == "--json") {
      json_path = "BENCH_server.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_only) {
    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  if (!json_path.empty()) {
    return tchimera::WriteServerReport(json_path);
  }
  return 0;
}
