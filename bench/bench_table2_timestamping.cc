// Experiment T2a (DESIGN.md): the quantitative side of Table 2's "what is
// timestamped / how are temporal values represented" axes.
//
// The four store designs run the same deterministic workload; benchmarks
// sweep object count and history length over:
//   - per-attribute update cost
//   - point read (attribute at instant)
//   - whole-object snapshot reconstruction
//   - attribute history scan
// plus a storage report (bytes per store after identical workloads).
//
// Expected shapes (Section 3 of DESIGN.md): attribute timestamping wins
// updates and storage when updates touch single attributes; object
// versioning wins whole-object snapshots; the dense per-instant
// representation loses to the coalesced function representation as run
// lengths grow.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/attribute_store.h"
#include "baselines/dense_temporal_value.h"
#include "baselines/object_version_store.h"
#include "baselines/snapshot_store.h"
#include "baselines/triple_store.h"
#include "workload/generator.h"

namespace tchimera {
namespace {

enum StoreKind : int64_t {
  kAttr = 0,
  kObjectVersion = 1,
  kTriple = 2,
  kSnapshot = 3
};

const char* StoreName(int64_t kind) {
  switch (kind) {
    case kAttr:
      return "attribute-ts(T_Chimera)";
    case kObjectVersion:
      return "object-versions(MAD)";
    case kTriple:
      return "triples(3DIS)";
    default:
      return "snapshot(non-temporal)";
  }
}

std::unique_ptr<TemporalStore> MakeStore(int64_t kind) {
  switch (kind) {
    case kAttr:
      return std::make_unique<AttributeTimestampStore>();
    case kObjectVersion:
      return std::make_unique<ObjectVersionStore>();
    case kTriple:
      return std::make_unique<TripleStore>();
    default:
      return std::make_unique<SnapshotStore>();
  }
}

StoreWorkloadConfig Config(int64_t objects, int64_t history) {
  StoreWorkloadConfig config;
  config.objects = static_cast<size_t>(objects);
  config.attributes = 8;
  config.updates_per_object = static_cast<size_t>(history);
  config.hot_fraction = 0.5;
  return config;
}

// --- update cost ---------------------------------------------------------------

void BM_Update(benchmark::State& state) {
  const int64_t kind = state.range(0);
  const int64_t history = state.range(1);
  std::vector<StoreOp> ops = GenerateStoreOps(Config(64, history));
  for (auto _ : state) {
    auto store = MakeStore(kind);
    auto run = ApplyStoreOps(store.get(), ops);
    if (!run.ok()) state.SkipWithError(run.status().ToString().c_str());
    benchmark::DoNotOptimize(store->ApproxBytes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ops.size()));
  state.SetLabel(StoreName(kind));
}
BENCHMARK(BM_Update)
    ->ArgsProduct({{kAttr, kObjectVersion, kTriple, kSnapshot},
                   {8, 64, 256}});

// --- point reads ----------------------------------------------------------------

void BM_ReadAtInstant(benchmark::State& state) {
  const int64_t kind = state.range(0);
  const int64_t history = state.range(1);
  auto store = MakeStore(kind);
  std::vector<StoreOp> ops = GenerateStoreOps(Config(64, history));
  StoreRunResult run = ApplyStoreOps(store.get(), ops).value();
  Rng rng(7);
  std::vector<std::string> attrs = StoreAttributeNames(8);
  for (auto _ : state) {
    uint64_t id = run.ids[rng.Index(run.ids.size())];
    // The snapshot store can only answer at the end time.
    TimePoint t = kind == kSnapshot
                      ? run.end_time
                      : rng.Uniform(2, run.end_time);
    auto v = store->ReadAttribute(id, rng.Pick(attrs), t);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v);
  }
  state.SetLabel(StoreName(kind));
}
BENCHMARK(BM_ReadAtInstant)
    ->ArgsProduct({{kAttr, kObjectVersion, kTriple, kSnapshot},
                   {8, 64, 256}});

// --- whole-object snapshots ------------------------------------------------------

void BM_SnapshotObject(benchmark::State& state) {
  const int64_t kind = state.range(0);
  const int64_t history = state.range(1);
  auto store = MakeStore(kind);
  std::vector<StoreOp> ops = GenerateStoreOps(Config(64, history));
  StoreRunResult run = ApplyStoreOps(store.get(), ops).value();
  Rng rng(7);
  for (auto _ : state) {
    uint64_t id = run.ids[rng.Index(run.ids.size())];
    TimePoint t = kind == kSnapshot
                      ? run.end_time
                      : rng.Uniform(2, run.end_time);
    auto v = store->SnapshotObject(id, t);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v);
  }
  state.SetLabel(StoreName(kind));
}
BENCHMARK(BM_SnapshotObject)
    ->ArgsProduct({{kAttr, kObjectVersion, kTriple, kSnapshot},
                   {8, 64, 256}});

// --- attribute history scans ------------------------------------------------------

void BM_HistoryScan(benchmark::State& state) {
  const int64_t kind = state.range(0);
  const int64_t history = state.range(1);
  auto store = MakeStore(kind);
  std::vector<StoreOp> ops = GenerateStoreOps(Config(64, history));
  StoreRunResult run = ApplyStoreOps(store.get(), ops).value();
  Rng rng(7);
  for (auto _ : state) {
    uint64_t id = run.ids[rng.Index(run.ids.size())];
    auto v = store->History(id, "a0");
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v);
  }
  state.SetLabel(StoreName(kind));
}
BENCHMARK(BM_HistoryScan)
    ->ArgsProduct({{kAttr, kObjectVersion, kTriple}, {8, 64, 256}});

// --- storage accounting (reported as a counter) ----------------------------------

void BM_StorageBytes(benchmark::State& state) {
  const int64_t kind = state.range(0);
  const int64_t history = state.range(1);
  auto store = MakeStore(kind);
  std::vector<StoreOp> ops = GenerateStoreOps(Config(64, history));
  (void)ApplyStoreOps(store.get(), ops);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->ApproxBytes());
  }
  state.counters["bytes"] =
      static_cast<double>(store->ApproxBytes());
  state.counters["bytes_per_update"] =
      static_cast<double>(store->ApproxBytes()) /
      static_cast<double>(64 * history);
  state.SetLabel(StoreName(kind));
}
BENCHMARK(BM_StorageBytes)
    ->ArgsProduct({{kAttr, kObjectVersion, kTriple, kSnapshot},
                   {8, 64, 256}});

// --- T2a-rep: function representation vs per-instant pairs ------------------------

void BM_RepresentationCoalesced(benchmark::State& state) {
  const int64_t run_length = state.range(0);
  TemporalFunction f;
  TimePoint t = 0;
  for (int i = 0; i < 64; ++i) {
    (void)f.Define(Interval(t, t + run_length - 1), Value::Integer(i));
    t += run_length;
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.At(rng.Uniform(0, t - 1)));
  }
  state.counters["bytes"] = static_cast<double>(f.ApproxBytes());
  state.SetLabel("coalesced-function");
}
BENCHMARK(BM_RepresentationCoalesced)->Arg(1)->Arg(8)->Arg(64);

void BM_RepresentationDense(benchmark::State& state) {
  const int64_t run_length = state.range(0);
  TemporalFunction f;
  TimePoint t = 0;
  for (int i = 0; i < 64; ++i) {
    (void)f.Define(Interval(t, t + run_length - 1), Value::Integer(i));
    t += run_length;
  }
  DenseTemporalValue dense = DenseTemporalValue::FromFunction(f, t - 1);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense.At(rng.Uniform(0, t - 1)));
  }
  state.counters["bytes"] = static_cast<double>(dense.ApproxBytes());
  state.SetLabel("dense-per-instant");
}
BENCHMARK(BM_RepresentationDense)->Arg(1)->Arg(8)->Arg(64);

}  // namespace
}  // namespace tchimera

BENCHMARK_MAIN();
