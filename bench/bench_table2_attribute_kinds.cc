// Experiment T2b (DESIGN.md): the value of supporting all three attribute
// kinds (temporal + immutable + non-temporal, the "Our model" row of
// Table 2). Declaring an attribute non-temporal makes its updates O(1)
// and its storage O(1) in history length — the paper's practical argument
// for the non-temporal kind (Section 1.1).
//
// The sweep varies the fraction of attributes declared non-temporal and
// measures update throughput and storage on identical workloads.
#include <benchmark/benchmark.h>

#include "baselines/attribute_store.h"
#include "workload/generator.h"

namespace tchimera {
namespace {

StoreWorkloadConfig Config(double static_fraction) {
  StoreWorkloadConfig config;
  config.objects = 64;
  config.attributes = 8;
  config.updates_per_object = 128;
  config.static_attr_fraction = static_fraction;
  config.hot_fraction = 0.0;  // uniform across attributes
  return config;
}

void BM_UpdatesWithStaticFraction(benchmark::State& state) {
  const double fraction = static_cast<double>(state.range(0)) / 100.0;
  StoreWorkloadConfig config = Config(fraction);
  std::vector<StoreOp> ops = GenerateStoreOps(config);
  for (auto _ : state) {
    AttributeTimestampStore store(StoreStaticAttributeNames(config));
    auto run = ApplyStoreOps(&store, ops);
    if (!run.ok()) state.SkipWithError(run.status().ToString().c_str());
    benchmark::DoNotOptimize(store.ApproxBytes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ops.size()));
  state.SetLabel("static_fraction=" + std::to_string(fraction));
}
BENCHMARK(BM_UpdatesWithStaticFraction)->Arg(0)->Arg(25)->Arg(50)->Arg(75);

void BM_StorageWithStaticFraction(benchmark::State& state) {
  const double fraction = static_cast<double>(state.range(0)) / 100.0;
  StoreWorkloadConfig config = Config(fraction);
  std::vector<StoreOp> ops = GenerateStoreOps(config);
  AttributeTimestampStore store(StoreStaticAttributeNames(config));
  (void)ApplyStoreOps(&store, ops);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.ApproxBytes());
  }
  state.counters["bytes"] = static_cast<double>(store.ApproxBytes());
  state.SetLabel("static_fraction=" + std::to_string(fraction));
}
BENCHMARK(BM_StorageWithStaticFraction)->Arg(0)->Arg(25)->Arg(50)->Arg(75);

// Reads of a static attribute are O(1) while temporal point reads pay a
// binary search over the history.
void BM_ReadStaticVsTemporal(benchmark::State& state) {
  const bool read_static = state.range(0) == 1;
  StoreWorkloadConfig config = Config(0.5);
  std::vector<StoreOp> ops = GenerateStoreOps(config);
  AttributeTimestampStore store(StoreStaticAttributeNames(config));
  StoreRunResult run = ApplyStoreOps(&store, ops).value();
  // a7 is static under fraction 0.5 of 8 attributes; a0 is temporal.
  const std::string attr = read_static ? "a7" : "a0";
  Rng rng(5);
  for (auto _ : state) {
    uint64_t id = run.ids[rng.Index(run.ids.size())];
    auto v = store.ReadAttribute(id, attr, run.end_time);
    benchmark::DoNotOptimize(v);
  }
  state.SetLabel(read_static ? "non-temporal attribute"
                             : "temporal attribute");
}
BENCHMARK(BM_ReadStaticVsTemporal)->Arg(1)->Arg(0);

}  // namespace
}  // namespace tchimera

BENCHMARK_MAIN();
