// Experiment ST (DESIGN.md): persistence — snapshot serialization /
// deserialization and journal replay over databases of growing size
// (making the paper's "implementation issues" future-work item concrete).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

#include "core/db/timeslice.h"
#include "storage/deserializer.h"
#include "storage/journal.h"
#include "storage/serializer.h"
#include "workload/generator.h"

namespace tchimera {
namespace {

struct Fixture {
  Database db;
  std::string snapshot;
};

Fixture& SharedFixture(int64_t persons) {
  static std::map<int64_t, Fixture>& cache =
      *new std::map<int64_t, Fixture>();
  auto it = cache.find(persons);
  if (it == cache.end()) {
    it = cache.emplace(std::piecewise_construct,
                       std::forward_as_tuple(persons),
                       std::forward_as_tuple())
             .first;
    PopulationConfig config;
    config.persons = static_cast<size_t>(persons);
    config.projects = static_cast<size_t>(persons / 5 + 1);
    config.timesteps = 32;
    config.updates_per_step = 10;
    config.migration_rate = 0.2;
    (void)PopulateDatabase(&it->second.db, config);
    it->second.snapshot = SaveDatabaseToString(it->second.db).value();
  }
  return it->second;
}

void BM_Serialize(benchmark::State& state) {
  Fixture& fx = SharedFixture(state.range(0));
  for (auto _ : state) {
    auto text = SaveDatabaseToString(fx.db);
    if (!text.ok()) state.SkipWithError("serialize failed");
    benchmark::DoNotOptimize(text);
  }
  state.counters["snapshot_bytes"] =
      static_cast<double>(fx.snapshot.size());
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Serialize)->Arg(20)->Arg(100)->Arg(400);

void BM_Deserialize(benchmark::State& state) {
  Fixture& fx = SharedFixture(state.range(0));
  for (auto _ : state) {
    auto db = LoadDatabaseFromString(fx.snapshot);
    if (!db.ok()) state.SkipWithError("deserialize failed");
    benchmark::DoNotOptimize(db);
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Deserialize)->Arg(20)->Arg(100)->Arg(400);

void BM_JournalAppend(benchmark::State& state) {
  // The price of durability: Arg selects the sync policy, so the three
  // rows show what each fdatasync discipline costs per record.
  JournalOptions options;
  std::string label;
  switch (state.range(0)) {
    case 0:
      options.sync = SyncPolicy::kNone;
      label = "sync=none";
      break;
    case 1:
      options.sync = SyncPolicy::kBatched;
      options.batch_size = 32;
      label = "sync=batched(32)";
      break;
    default:
      options.sync = SyncPolicy::kEveryAppend;
      label = "sync=every-append";
      break;
  }
  std::string path = (std::filesystem::temp_directory_path() /
                      "tchimera_bench_journal.tql")
                         .string();
  std::remove(path.c_str());
  Journal journal;
  if (!journal.Open(path, options).ok()) {
    state.SkipWithError("cannot open journal");
    return;
  }
  for (auto _ : state) {
    Status s = journal.Append("update i1 set salary = 12345");
    if (!s.ok()) state.SkipWithError("append failed");
  }
  journal.Close();
  state.SetLabel(label);
  std::remove(path.c_str());
}
BENCHMARK(BM_JournalAppend)->Arg(0)->Arg(1)->Arg(2);

void BM_JournalReplay(benchmark::State& state) {
  // Recovery time for a journal of `n` statements.
  const int64_t n = state.range(0);
  std::string path = (std::filesystem::temp_directory_path() /
                      "tchimera_bench_replay.tql")
                         .string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << "define class worker attributes salary: temporal(integer) "
           "end\n";
    out << "create worker (salary: 1)\n";
    for (int64_t i = 0; i < n; ++i) {
      out << "tick\nupdate i1 set salary = " << i << "\n";
    }
  }
  for (auto _ : state) {
    Database db;
    Interpreter interp(&db);
    auto applied = Journal::Replay(path, &interp);
    if (!applied.ok()) {
      state.SkipWithError(applied.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(applied);
  }
  state.SetItemsProcessed(state.iterations() * (2 * n + 2));
  state.SetLabel("updates=" + std::to_string(n));
  std::remove(path.c_str());
}
BENCHMARK(BM_JournalReplay)->Arg(64)->Arg(512);

void BM_TimeSliceMaterialization(benchmark::State& state) {
  // Materializing the whole database as of a past instant (the
  // whole-database snapshot coercion; see core/db/timeslice.h).
  Fixture& fx = SharedFixture(state.range(0));
  TimePoint mid = fx.db.now() / 2;
  for (auto _ : state) {
    auto slice = TimeSlice(fx.db, mid);
    if (!slice.ok()) state.SkipWithError("slice failed");
    benchmark::DoNotOptimize(slice);
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_TimeSliceMaterialization)->Arg(20)->Arg(100)->Arg(400);

void BM_RoundTripFidelity(benchmark::State& state) {
  // Save -> load -> save: the cost of a full checkpoint cycle; the
  // byte-identity is also verified each iteration.
  Fixture& fx = SharedFixture(50);
  for (auto _ : state) {
    auto loaded = LoadDatabaseFromString(fx.snapshot);
    if (!loaded.ok()) state.SkipWithError("load failed");
    auto again = SaveDatabaseToString(**loaded);
    if (!again.ok() || *again != fx.snapshot) {
      state.SkipWithError("round trip not a fixed point");
    }
    benchmark::DoNotOptimize(again);
  }
}
BENCHMARK(BM_RoundTripFidelity);

}  // namespace
}  // namespace tchimera

BENCHMARK_MAIN();
