// Experiment CO (DESIGN.md): consistency checking (Definitions 5.3-5.6)
// and the invariants (5.1, 5.2, 6.1, 6.2) over populations of growing
// size and history length. The expected shape is linear in
// (meaningful attributes x history segments).
#include <benchmark/benchmark.h>

#include <map>

#include "core/db/consistency.h"
#include "workload/generator.h"

namespace tchimera {
namespace {

struct Fixture {
  Database db;
  Population pop;
};

Fixture& SharedFixture(int64_t persons, int64_t timesteps) {
  static std::map<std::pair<int64_t, int64_t>, Fixture>& cache =
      *new std::map<std::pair<int64_t, int64_t>, Fixture>();
  auto key = std::make_pair(persons, timesteps);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(std::piecewise_construct,
                       std::forward_as_tuple(key), std::forward_as_tuple())
             .first;
    PopulationConfig config;
    config.persons = static_cast<size_t>(persons);
    config.projects = static_cast<size_t>(persons / 5 + 1);
    config.timesteps = static_cast<size_t>(timesteps);
    config.updates_per_step = 10;
    config.migration_rate = 0.2;
    it->second.pop = PopulateDatabase(&it->second.db, config).value();
  }
  return it->second;
}

void BM_CheckObjectConsistency(benchmark::State& state) {
  Fixture& fx = SharedFixture(20, state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    Oid oid = rng.Pick(fx.pop.projects);
    Status s = CheckObjectConsistency(fx.db, oid);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetLabel("timesteps=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CheckObjectConsistency)->Arg(8)->Arg(64)->Arg(256);

void BM_CheckConsistentObjectSet(benchmark::State& state) {
  Fixture& fx = SharedFixture(state.range(0), 32);
  for (auto _ : state) {
    Status s = CheckConsistentObjectSet(fx.db, kNow);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CheckConsistentObjectSet)->Arg(20)->Arg(100)->Arg(400);

void BM_Invariant51(benchmark::State& state) {
  Fixture& fx = SharedFixture(state.range(0), 32);
  for (auto _ : state) {
    Status s = CheckInvariant51(fx.db);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Invariant51)->Arg(20)->Arg(100);

void BM_Invariant52(benchmark::State& state) {
  Fixture& fx = SharedFixture(state.range(0), 32);
  for (auto _ : state) {
    Status s = CheckInvariant52(fx.db);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Invariant52)->Arg(20)->Arg(100);

void BM_Invariant61(benchmark::State& state) {
  Fixture& fx = SharedFixture(state.range(0), 32);
  for (auto _ : state) {
    Status s = CheckInvariant61(fx.db);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Invariant61)->Arg(20)->Arg(100);

void BM_Invariant62(benchmark::State& state) {
  Fixture& fx = SharedFixture(state.range(0), 32);
  for (auto _ : state) {
    Status s = CheckInvariant62(fx.db);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Invariant62)->Arg(20)->Arg(100);

void BM_FullDatabaseCheck(benchmark::State& state) {
  Fixture& fx = SharedFixture(state.range(0), state.range(1));
  for (auto _ : state) {
    Status s = CheckDatabaseConsistency(fx.db);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)) +
                 " timesteps=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_FullDatabaseCheck)
    ->Args({20, 8})
    ->Args({20, 64})
    ->Args({100, 8})
    ->Args({100, 64});

}  // namespace
}  // namespace tchimera

BENCHMARK_MAIN();
