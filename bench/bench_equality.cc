// Experiment EQ (DESIGN.md): the four equality notions of Section 5.3
// over object pairs with growing histories. Identity is O(1); value
// equality compares whole histories; the snapshot-based notions scan
// piecewise-constant boundaries. The implication lattice is asserted at
// runtime on every measured pair.
#include <benchmark/benchmark.h>

#include "core/db/equality.h"
#include "core/values/temporal_function.h"
#include "workload/random.h"

namespace tchimera {
namespace {

Object RandomHistoricalObject(uint64_t id, int64_t segments, Rng* rng) {
  Object obj(Oid{id}, "c", 0);
  for (const char* attr : {"a", "b"}) {
    TemporalFunction f;
    TimePoint t = 0;
    for (int64_t i = 0; i < segments; ++i) {
      TimePoint end = t + rng->Uniform(1, 4);
      (void)f.Define(Interval(t, end), Value::Integer(rng->Uniform(0, 3)));
      t = end + 1;
    }
    obj.SetAttribute(attr, Value::Temporal(std::move(f)));
  }
  return obj;
}

void BM_EqualByIdentity(benchmark::State& state) {
  Rng rng(1);
  Object a = RandomHistoricalObject(1, state.range(0), &rng);
  Object b = RandomHistoricalObject(2, state.range(0), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EqualByIdentity(a, b));
  }
  state.SetLabel("segments=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_EqualByIdentity)->Arg(8)->Arg(128);

void BM_EqualByValue(benchmark::State& state) {
  Rng rng(1);
  Object a = RandomHistoricalObject(1, state.range(0), &rng);
  Object b = RandomHistoricalObject(2, state.range(0), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EqualByValue(a, b));
  }
  state.SetLabel("segments=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_EqualByValue)->Arg(8)->Arg(64)->Arg(512);

void BM_InstantaneousEqual(benchmark::State& state) {
  Rng rng(1);
  Object a = RandomHistoricalObject(1, state.range(0), &rng);
  Object b = RandomHistoricalObject(2, state.range(0), &rng);
  TimePoint now = 5 * state.range(0);
  for (auto _ : state) {
    bool inst = InstantaneousValueEqual(a, b, now);
    // The lattice holds on every measured pair.
    if (inst && !WeakValueEqual(a, b, now)) {
      state.SkipWithError("lattice violation");
    }
    benchmark::DoNotOptimize(inst);
  }
  state.SetLabel("segments=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_InstantaneousEqual)->Arg(8)->Arg(64)->Arg(512);

void BM_WeakEqual(benchmark::State& state) {
  Rng rng(1);
  Object a = RandomHistoricalObject(1, state.range(0), &rng);
  Object b = RandomHistoricalObject(2, state.range(0), &rng);
  TimePoint now = 5 * state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WeakValueEqual(a, b, now));
  }
  state.SetLabel("segments=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_WeakEqual)->Arg(8)->Arg(64)->Arg(512);

void BM_SelfEquality(benchmark::State& state) {
  // All four notions on an object compared with itself (the all-equal
  // fast-ish path; value equality is the record comparison).
  Rng rng(1);
  Object a = RandomHistoricalObject(1, state.range(0), &rng);
  TimePoint now = 5 * state.range(0);
  for (auto _ : state) {
    bool id = EqualByIdentity(a, a);
    bool v = EqualByValue(a, a);
    bool inst = InstantaneousValueEqual(a, a, now);
    bool weak = WeakValueEqual(a, a, now);
    if (!(id && v && inst && weak)) state.SkipWithError("reflexivity");
    benchmark::DoNotOptimize(id);
  }
  state.SetLabel("segments=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_SelfEquality)->Arg(8)->Arg(64);

}  // namespace
}  // namespace tchimera

BENCHMARK_MAIN();
