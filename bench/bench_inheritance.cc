// Experiment IN (DESIGN.md): Section 6 mechanisms — Rule 6.1 refinement
// validation at class-definition time, the snapshot coercion that makes
// temporal attributes substitutable for non-temporal ones, and the
// extent-inclusion invariant (6.1) along hierarchies of growing depth.
#include <benchmark/benchmark.h>

#include "core/db/consistency.h"
#include "core/db/database.h"
#include "core/schema/refinement.h"
#include "core/types/type_registry.h"
#include "workload/generator.h"

namespace tchimera {
namespace {

// Builds a linear ISA chain c0 <- c1 <- ... <- c{depth-1}, each level
// refining the inherited attribute's class domain one step down a
// parallel chain d0 <- d1 <- ...
void BuildChains(Database* db, int64_t depth) {
  std::string prev_d;
  for (int64_t i = 0; i < depth; ++i) {
    ClassSpec d;
    d.name = "d" + std::to_string(i);
    if (!prev_d.empty()) d.superclasses = {prev_d};
    (void)db->DefineClass(d);
    prev_d = d.name;
  }
  std::string prev_c;
  for (int64_t i = 0; i < depth; ++i) {
    ClassSpec c;
    c.name = "c" + std::to_string(i);
    if (!prev_c.empty()) c.superclasses = {prev_c};
    c.attributes = {{"buddy", types::Object("d" + std::to_string(i))}};
    (void)db->DefineClass(c);
    prev_c = c.name;
  }
}

void BM_DefineClassWithRefinement(benchmark::State& state) {
  // Cost of defining a whole refinement chain (merging + Rule 6.1
  // validation at each level).
  const int64_t depth = state.range(0);
  for (auto _ : state) {
    Database db;
    BuildChains(&db, depth);
    benchmark::DoNotOptimize(db.class_count());
  }
  state.SetItemsProcessed(state.iterations() * depth * 2);
  state.SetLabel("depth=" + std::to_string(depth));
}
BENCHMARK(BM_DefineClassWithRefinement)->Arg(4)->Arg(16)->Arg(64);

void BM_AttributeRefinementCheck(benchmark::State& state) {
  Database db;
  BuildChains(&db, 16);
  AttributeDef inherited{"buddy", types::Object("d0")};
  AttributeDef refined{
      "buddy", types::Temporal(types::Object("d15")).value()};
  for (auto _ : state) {
    Status s = CheckAttributeRefinement(inherited, refined, db.isa());
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
}
BENCHMARK(BM_AttributeRefinementCheck);

void BM_SnapshotCoercion(benchmark::State& state) {
  // Substitutability (Section 6.1): seeing an instance of a subclass
  // whose attribute became temporal as an instance of the superclass
  // coerces via snapshot(i, now).
  Database db;
  ClassSpec base;
  base.name = "base";
  base.attributes = {{"score", types::Integer()}};
  (void)db.DefineClass(base);
  ClassSpec derived;
  derived.name = "derived";
  derived.superclasses = {"base"};
  derived.attributes = {
      {"score", types::Temporal(types::Integer()).value()}};
  (void)db.DefineClass(derived);
  Oid obj = db.CreateObject("derived",
                            {{"score", Value::Integer(1)}})
                .value();
  // Accrue history.
  for (int i = 0; i < 64; ++i) {
    db.Tick();
    (void)db.UpdateAttribute(obj, "score", Value::Integer(i));
  }
  for (auto _ : state) {
    // The coerced view: snapshot at now, then read the attribute as a
    // plain (non-temporal) value.
    auto snap = db.SnapshotOf(obj, kNow);
    if (!snap.ok()) state.SkipWithError("snapshot failed");
    benchmark::DoNotOptimize(snap->FieldValue("score"));
  }
}
BENCHMARK(BM_SnapshotCoercion);

void BM_ExtentInclusionInvariant(benchmark::State& state) {
  // Invariant 6.1 validation cost vs hierarchy depth with objects spread
  // across levels.
  const int64_t depth = state.range(0);
  Database db;
  BuildChains(&db, depth);
  Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    std::string cls = "d" + std::to_string(rng.Uniform(0, depth - 1));
    (void)db.CreateObject(cls);
  }
  for (auto _ : state) {
    Status s = CheckInvariant61(db);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetLabel("depth=" + std::to_string(depth));
}
BENCHMARK(BM_ExtentInclusionInvariant)->Arg(4)->Arg(16)->Arg(64);

void BM_MigrationAcrossDeepHierarchy(benchmark::State& state) {
  // Migration cost grows with the number of superclasses whose extents
  // must be adjusted.
  const int64_t depth = state.range(0);
  Database db;
  BuildChains(&db, depth);
  Oid obj = db.CreateObject("d0").value();
  std::string leaf = "d" + std::to_string(depth - 1);
  for (auto _ : state) {
    db.Tick();
    Status s1 = db.Migrate(obj, leaf);
    db.Tick();
    Status s2 = db.Migrate(obj, "d0");
    if (!s1.ok() || !s2.ok()) state.SkipWithError("migration failed");
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.SetLabel("depth=" + std::to_string(depth));
}
BENCHMARK(BM_MigrationAcrossDeepHierarchy)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace tchimera

BENCHMARK_MAIN();
