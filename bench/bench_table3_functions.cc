// Experiment T3 (DESIGN.md): micro-benchmarks for each formal function of
// Table 3, over a populated database, sweeping history length where the
// function's cost depends on it.
//
//   T^-          BM_TMinus
//   pi           BM_Pi
//   type         BM_StructuralType
//   h_type       BM_HistoricalType
//   s_type       BM_StaticType
//   h_state      BM_HState
//   s_state      BM_SState
//   o_lifespan   BM_OLifespan
//   m_lifespan   BM_MLifespan (see also bench_table2_class_histories)
//   ref          BM_Ref
//   snapshot     BM_Snapshot
#include <benchmark/benchmark.h>

#include <map>

#include "core/db/database.h"
#include "core/types/type_registry.h"
#include "workload/generator.h"

namespace tchimera {
namespace {

struct Fixture {
  Database db;
  Population pop;
};

Fixture& SharedFixture(int64_t timesteps) {
  static std::map<int64_t, Fixture>& cache =
      *new std::map<int64_t, Fixture>();
  auto it = cache.find(timesteps);
  if (it == cache.end()) {
    it = cache.emplace(std::piecewise_construct,
                       std::forward_as_tuple(timesteps),
                       std::forward_as_tuple())
             .first;
    PopulationConfig config;
    config.persons = 50;
    config.projects = 10;
    config.timesteps = static_cast<size_t>(timesteps);
    config.updates_per_step = 20;
    config.migration_rate = 0.2;
    it->second.pop = PopulateDatabase(&it->second.db, config).value();
  }
  return it->second;
}

void BM_TMinus(benchmark::State& state) {
  const Type* t = types::Temporal(types::SetOf(types::Object("person")))
                      .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(types::TMinus(t));
  }
}
BENCHMARK(BM_TMinus);

void BM_Pi(benchmark::State& state) {
  Fixture& fx = SharedFixture(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    auto extent = fx.db.Pi("person", rng.Uniform(0, fx.db.now()));
    benchmark::DoNotOptimize(extent);
  }
  state.SetLabel("timesteps=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Pi)->Arg(16)->Arg(64)->Arg(256);

void BM_StructuralType(benchmark::State& state) {
  Fixture& fx = SharedFixture(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.db.StructuralTypeOf("project"));
  }
}
BENCHMARK(BM_StructuralType);

void BM_HistoricalType(benchmark::State& state) {
  Fixture& fx = SharedFixture(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.db.HistoricalTypeOf("project"));
  }
}
BENCHMARK(BM_HistoricalType);

void BM_StaticType(benchmark::State& state) {
  Fixture& fx = SharedFixture(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.db.StaticTypeOf("project"));
  }
}
BENCHMARK(BM_StaticType);

void BM_HState(benchmark::State& state) {
  Fixture& fx = SharedFixture(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    Oid oid = rng.Pick(fx.pop.persons);
    auto v = fx.db.HStateOf(oid, rng.Uniform(0, fx.db.now()));
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v);
  }
  state.SetLabel("timesteps=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_HState)->Arg(16)->Arg(64)->Arg(256);

void BM_SState(benchmark::State& state) {
  Fixture& fx = SharedFixture(16);
  Rng rng(3);
  for (auto _ : state) {
    auto v = fx.db.SStateOf(rng.Pick(fx.pop.persons));
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SState);

void BM_OLifespan(benchmark::State& state) {
  Fixture& fx = SharedFixture(16);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.db.OLifespan(rng.Pick(fx.pop.persons)));
  }
}
BENCHMARK(BM_OLifespan);

void BM_MLifespan(benchmark::State& state) {
  Fixture& fx = SharedFixture(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    auto m = fx.db.MLifespan(rng.Pick(fx.pop.persons), "manager");
    benchmark::DoNotOptimize(m);
  }
  state.SetLabel("timesteps=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_MLifespan)->Arg(16)->Arg(64)->Arg(256);

void BM_Ref(benchmark::State& state) {
  Fixture& fx = SharedFixture(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    Oid oid = rng.Pick(fx.pop.projects);
    auto refs = fx.db.Ref(oid, rng.Uniform(0, fx.db.now()));
    benchmark::DoNotOptimize(refs);
  }
  state.SetLabel("timesteps=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Ref)->Arg(16)->Arg(64)->Arg(256);

void BM_Snapshot(benchmark::State& state) {
  Fixture& fx = SharedFixture(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    // Projects carry static attributes, so only the current snapshot is
    // defined (Section 5.3).
    auto v = fx.db.SnapshotOf(rng.Pick(fx.pop.projects), kNow);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    benchmark::DoNotOptimize(v);
  }
  state.SetLabel("timesteps=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_Snapshot)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace tchimera

BENCHMARK_MAIN();
