// Experiment RP: journal-shipping replication — source fetch throughput
// over a prebuilt journal (the scan + frame-validate cost per shipped
// record), end-to-end ship+apply drain throughput into a live replica,
// batch-size sensitivity, and snapshot resync latency for a late joiner.
//
// The JSON report (BENCH_replication.json, uploaded by CI) carries the
// end-to-end numbers a deployment cares about: how fast a follower
// drains a backlog, and what a cold resync costs relative to streaming.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "query/session.h"
#include "storage/group_commit.h"
#include "storage/journal.h"
#include "storage/recovery.h"
#include "storage/replication.h"

namespace tchimera {
namespace {

std::string ScratchDir(const std::string& name) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("tchimera_bench_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// A journal of `records` small statements, built once per path.
std::string BuildJournal(const std::string& name, size_t records) {
  std::string dir = ScratchDir(name);
  std::string path = dir + "/journal.tql";
  Journal journal;
  JournalOptions options;
  options.sync = SyncPolicy::kNone;
  if (!journal.Open(path, options).ok()) return path;
  for (size_t i = 0; i < records; ++i) {
    (void)journal.Append("update i1 set name = 'n" + std::to_string(i) +
                         "'");
  }
  (void)journal.Sync();
  journal.Close();
  return path;
}

// --- source-side scan: how fast Fetch validates and frames records out
// of a journal file (no replica, no engine — the shipping floor).

void BM_SourceFetch(benchmark::State& state) {
  static const std::string& path = *new std::string(
      BuildJournal("repl_fetch", 4096));
  ReplicationSource source(path);  // offline: ships whatever is on disk
  const size_t batch = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    ReplicationCursor cursor;
    uint64_t shipped = 0;
    while (true) {
      auto fetched = source.Fetch(cursor, batch);
      if (!fetched.ok() || fetched->records.empty()) break;
      shipped += fetched->records.size();
      cursor = fetched->next;
    }
    if (shipped == 0) state.SkipWithError("fetch returned nothing");
    benchmark::DoNotOptimize(shipped);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SourceFetch)->Arg(16)->Arg(64)->Arg(256);

void BM_BackoffNextDelay(benchmark::State& state) {
  ExponentialBackoff backoff;
  for (auto _ : state) {
    benchmark::DoNotOptimize(backoff.NextDelay());
    if (backoff.attempts() > 64) backoff.Reset();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackoffNextDelay);

// --- the machine-readable end-to-end report ------------------------------

struct DrainPoint {
  size_t batch = 0;
  double micros = 0.0;
  double throughput = 0.0;  // statements per second
};

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A primary with `statements` committed through its group-commit sink.
struct BenchPrimary {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<GroupCommitJournal> sink;
  std::string dir;
};

bool BuildPrimary(const std::string& name, size_t statements,
                  BenchPrimary* out) {
  out->dir = ScratchDir(name);
  out->engine = std::make_unique<Engine>();
  out->sink = std::make_unique<GroupCommitJournal>();
  if (!out->sink->Open(out->dir + "/journal.tql").ok()) return false;
  out->engine->set_commit_sink(out->sink.get());
  Session session = out->engine->OpenSession();
  if (!session.Execute("define class person attributes name: "
                       "temporal(string) end")
           .ok()) {
    return false;
  }
  if (!session.Execute("create person (name: 'p')").ok()) return false;
  for (size_t i = 2; i < statements; ++i) {
    if (!session
             .Execute("update i1 set name = 'n" + std::to_string(i) + "'")
             .ok()) {
      return false;
    }
  }
  return true;
}

// Drains a fresh replica from `primary` with the given fetch batch size.
bool MeasureDrain(const BenchPrimary& primary, size_t batch,
                  size_t statements, DrainPoint* out) {
  ReplicationSource::Options sopts;
  sopts.horizon = primary.sink.get();
  sopts.snapshot_path = primary.dir + "/snapshot.tchdb";
  ReplicationSource source(primary.dir + "/journal.tql", sopts);
  auto replica = Replica::Open(ScratchDir("repl_drain_replica"));
  if (!replica.ok()) return false;
  ReplicationShipper::Options opts;
  opts.max_records_per_fetch = batch;
  opts.sleeper = [](std::chrono::microseconds) {};
  ReplicationShipper shipper(&source, primary.engine.get(), opts);
  shipper.AddReplica(replica.value().get(), "bench");
  const double start = NowMicros();
  if (!shipper.DrainAll().ok()) return false;
  const double micros = NowMicros() - start;
  out->batch = batch;
  out->micros = micros;
  out->throughput =
      micros > 0.0 ? static_cast<double>(statements) / (micros / 1e6) : 0.0;
  return true;
}

int WriteReplicationReport(const std::string& path) {
  constexpr size_t kStatements = 2000;
  constexpr int kRepeats = 3;
  const std::vector<size_t> batches = {16, 64, 256};

  BenchPrimary primary;
  if (!BuildPrimary("repl_report_primary", kStatements, &primary)) {
    std::fprintf(stderr, "bench primary setup failed\n");
    return 1;
  }

  std::vector<DrainPoint> points;
  for (size_t batch : batches) {
    DrainPoint best;
    for (int r = 0; r < kRepeats; ++r) {
      DrainPoint p;
      if (MeasureDrain(primary, batch, kStatements, &p) &&
          p.throughput > best.throughput) {
        best = p;
      }
    }
    if (best.batch == 0) {
      std::fprintf(stderr, "drain measurement failed\n");
      return 1;
    }
    points.push_back(best);
  }

  // Cold resync: checkpoint the primary (prunes epoch 0), then time a
  // fresh replica's snapshot install + drain.
  Status checkpointed = primary.engine->WithExclusive(
      [&primary](Database& live, ActiveDatabase& active) {
        return primary.sink->WithQuiesced([&](Journal& journal) {
          return RecoveryManager::Checkpoint(
              live, &journal, primary.dir + "/snapshot.tchdb", nullptr,
              active.DefinitionStatements());
        });
      });
  DrainPoint resync;
  if (checkpointed.ok()) {
    (void)MeasureDrain(primary, 256, kStatements, &resync);
  }

  std::string json;
  json += "{\n";
  json += "  \"benchmark\": \"replication\",\n";
  json += "  \"statements\": " + std::to_string(kStatements) + ",\n";
  json += "  \"drain\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "    {\"batch\": %zu, \"micros\": %.1f, "
                  "\"statements_per_sec\": %.0f}%s\n",
                  points[i].batch, points[i].micros, points[i].throughput,
                  i + 1 < points.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  \"cold_resync_micros\": %.1f\n", resync.micros);
  json += buf;
  json += "}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n%s", path.c_str(), json.c_str());
  return 0;
}

}  // namespace
}  // namespace tchimera

// Custom main, same flags as the other bench binaries:
//   --json[=PATH]  write BENCH_replication.json (or PATH) after the suite
//   --json-only    skip the google-benchmark suite (the CI artifact path)
int main(int argc, char** argv) {
  std::string json_path;
  bool json_only = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-only") {
      json_only = true;
      if (json_path.empty()) json_path = "BENCH_replication.json";
    } else if (arg == "--json") {
      json_path = "BENCH_replication.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_only) {
    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  if (!json_path.empty()) {
    return tchimera::WriteReplicationReport(json_path);
  }
  return 0;
}
