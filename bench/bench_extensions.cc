// Experiment EX (DESIGN.md): the Section 7 future-work features —
// temporal integrity constraints, trigger cascades, and deep value
// equality — measured over growing histories, rule sets and reference
// chains.
#include <benchmark/benchmark.h>

#include "constraints/constraint.h"
#include "core/db/equality.h"
#include "core/types/type_registry.h"
#include "triggers/trigger.h"
#include "workload/generator.h"
#include "workload/project_schema.h"

namespace tchimera {
namespace {

void BM_ConstraintAlways(benchmark::State& state) {
  // `always` over one object's salary history of growing length.
  Database db;
  (void)InstallProjectSchema(&db);
  Oid e = db.CreateObject("employee",
                          {{"salary", Value::Integer(1)}})
              .value();
  Rng rng(3);
  for (int64_t i = 0; i < state.range(0); ++i) {
    db.Tick();
    (void)db.UpdateAttribute(e, "salary",
                             Value::Integer(rng.Uniform(1, 1000)));
  }
  TemporalConstraint c =
      TemporalConstraint::Parse(
          "constraint pos on employee always x.salary > 0")
          .value();
  for (auto _ : state) {
    Status s = c.Check(db);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetLabel("history=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ConstraintAlways)->Arg(8)->Arg(64)->Arg(512);

void BM_ConstraintNondecreasing(benchmark::State& state) {
  // The segment-walk modes are cheaper than expression quantification.
  Database db;
  (void)InstallProjectSchema(&db);
  Oid e = db.CreateObject("employee",
                          {{"salary", Value::Integer(1)}})
              .value();
  for (int64_t i = 0; i < state.range(0); ++i) {
    db.Tick();
    (void)db.UpdateAttribute(e, "salary", Value::Integer(i + 2));
  }
  TemporalConstraint c =
      TemporalConstraint::Parse(
          "constraint pay on employee nondecreasing salary")
          .value();
  for (auto _ : state) {
    Status s = c.Check(db);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetLabel("history=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ConstraintNondecreasing)->Arg(8)->Arg(64)->Arg(512);

void BM_ConstraintRegistryOverPopulation(benchmark::State& state) {
  Database db;
  PopulationConfig config;
  config.persons = static_cast<size_t>(state.range(0));
  config.timesteps = 32;
  config.updates_per_step = 10;
  (void)PopulateDatabase(&db, config);
  ConstraintRegistry registry;
  (void)registry.Define(
      "constraint pos on employee always x.salary > 0");
  (void)registry.Define(
      "constraint named on person sometime defined(x.name)");
  for (auto _ : state) {
    Status s = registry.CheckAll(db);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ConstraintRegistryOverPopulation)->Arg(20)->Arg(100);

void BM_TriggerOverheadPerUpdate(benchmark::State& state) {
  // Marginal cost of N matching triggers per update (each action is a
  // no-op tick-free statement: a SELECT would fire nothing, so use an
  // update of an unrelated attribute exactly once per chain step).
  const int64_t rules = state.range(0);
  Database db;
  ActiveDatabase active(&db);
  (void)InstallProjectSchema(&db);
  Oid e = db.CreateObject("employee").value();
  // N independent triggers all matching updates of salary; their actions
  // touch `office`, which no trigger matches — cascade depth 1.
  for (int64_t i = 0; i < rules; ++i) {
    (void)active.DefineTrigger(
        "trigger t" + std::to_string(i) +
        " on update of employee.salary do update $self set office = 'x'");
  }
  std::string stmt = "update " + e.ToString() + " set salary = 7";
  for (auto _ : state) {
    auto r = active.Execute(stmt);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.counters["fired"] = static_cast<double>(active.fired_count());
  state.SetLabel("rules=" + std::to_string(rules));
}
BENCHMARK(BM_TriggerOverheadPerUpdate)->Arg(0)->Arg(1)->Arg(8)->Arg(32);

void BM_TriggerCascadeDepth(benchmark::State& state) {
  // A linear chain of depth D: update a0 -> a1 -> ... -> aD.
  const int64_t depth = state.range(0);
  Database db;
  ActiveDatabase active(&db, /*max_cascade_depth=*/depth + 4);
  ClassSpec spec;
  spec.name = "chain";
  for (int64_t i = 0; i <= depth; ++i) {
    spec.attributes.push_back({"a" + std::to_string(i), types::Integer()});
  }
  (void)db.DefineClass(spec);
  Oid obj = db.CreateObject("chain").value();
  for (int64_t i = 0; i < depth; ++i) {
    (void)active.DefineTrigger(
        "trigger s" + std::to_string(i) + " on update of chain.a" +
        std::to_string(i) + " do update $self set a" +
        std::to_string(i + 1) + " = 1");
  }
  std::string stmt = "update " + obj.ToString() + " set a0 = 1";
  for (auto _ : state) {
    auto r = active.Execute(stmt);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetLabel("depth=" + std::to_string(depth));
}
BENCHMARK(BM_TriggerCascadeDepth)->Arg(1)->Arg(4)->Arg(16);

void BM_DeepEqualityChain(benchmark::State& state) {
  // Two parallel reference chains of growing length; deep equality walks
  // both to the end.
  const int64_t length = state.range(0);
  Database db;
  ClassSpec node;
  node.name = "node";
  node.attributes = {{"label", types::String()},
                     {"next", types::Object("node")}};
  (void)db.DefineClass(node);
  auto build_chain = [&db](int64_t n) {
    Oid prev = Oid::Invalid();
    Oid head = Oid::Invalid();
    for (int64_t i = 0; i < n; ++i) {
      Oid cur = db.CreateObject(
                      "node", {{"label", Value::String("x")}})
                    .value();
      if (prev.valid()) {
        (void)db.UpdateAttribute(prev, "next", Value::OfOid(cur));
      } else {
        head = cur;
      }
      prev = cur;
    }
    return head;
  };
  Oid a = build_chain(length);
  Oid b = build_chain(length);
  const Object* oa = db.GetObject(a);
  const Object* ob = db.GetObject(b);
  for (auto _ : state) {
    bool eq = DeepValueEqual(db, *oa, *ob);
    if (!eq) state.SkipWithError("chains should be deep-equal");
    benchmark::DoNotOptimize(eq);
  }
  state.SetLabel("chain=" + std::to_string(length));
}
BENCHMARK(BM_DeepEqualityChain)->Arg(2)->Arg(16)->Arg(128);

void BM_DeepEqualityCycle(benchmark::State& state) {
  // Bisimulation on reference cycles: the in-progress set bounds work.
  const int64_t length = state.range(0);
  Database db;
  ClassSpec node;
  node.name = "node";
  node.attributes = {{"label", types::String()},
                     {"next", types::Object("node")}};
  (void)db.DefineClass(node);
  auto build_cycle = [&db](int64_t n) {
    std::vector<Oid> ring;
    for (int64_t i = 0; i < n; ++i) {
      ring.push_back(db.CreateObject(
                           "node", {{"label", Value::String("x")}})
                         .value());
    }
    for (int64_t i = 0; i < n; ++i) {
      (void)db.UpdateAttribute(ring[i], "next",
                               Value::OfOid(ring[(i + 1) % n]));
    }
    return ring.front();
  };
  Oid a = build_cycle(length);
  Oid b = build_cycle(length);
  const Object* oa = db.GetObject(a);
  const Object* ob = db.GetObject(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeepValueEqual(db, *oa, *ob));
  }
  state.SetLabel("cycle=" + std::to_string(length));
}
BENCHMARK(BM_DeepEqualityCycle)->Arg(2)->Arg(16)->Arg(128);

}  // namespace
}  // namespace tchimera

BENCHMARK_MAIN();
