// Experiment T2c (DESIGN.md): the cost and value of keeping histories of
// object types (the last column of Table 2, which only [21], [11], [7]
// and T_Chimera support).
//
// Measured: migration cost (which maintains class histories and extent
// histories), the cost of answering "what was this object's most specific
// class at instant t" from the class history, and the storage the class
// history adds per migration.
#include <benchmark/benchmark.h>

#include "core/db/database.h"
#include "workload/generator.h"
#include "workload/project_schema.h"

namespace tchimera {
namespace {

// A database with one employee that has migrated back and forth
// `migrations` times.
struct Fixture {
  Database db;
  Oid subject;
};

void MakeFixture(Fixture* fx, int64_t migrations) {
  (void)InstallProjectSchema(&fx->db);
  fx->subject = fx->db.CreateObject("employee").value();
  bool manager = false;
  for (int64_t i = 0; i < migrations; ++i) {
    fx->db.Tick();
    if (manager) {
      (void)fx->db.Migrate(fx->subject, "employee");
    } else {
      (void)fx->db.Migrate(fx->subject, "manager",
                           {{"dependents", Value::Integer(1)},
                            {"officialcar", Value::String("car")}});
    }
    manager = !manager;
  }
}

void BM_Migration(benchmark::State& state) {
  // Cost of one promote+demote round trip, including class-history and
  // extent maintenance plus attribute adjustment (Section 5.2).
  Database db;
  (void)InstallProjectSchema(&db);
  Oid e = db.CreateObject("employee").value();
  for (auto _ : state) {
    db.Tick();
    Status s1 = db.Migrate(e, "manager",
                           {{"dependents", Value::Integer(1)},
                            {"officialcar", Value::String("car")}});
    db.Tick();
    Status s2 = db.Migrate(e, "employee");
    if (!s1.ok() || !s2.ok()) state.SkipWithError("migration failed");
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_Migration);

void BM_ClassAtInstant(benchmark::State& state) {
  // "What was the most specific class of i at t?" — answerable only
  // because class histories are kept; cost is a binary search over the
  // migration history.
  Fixture fx;
  MakeFixture(&fx, state.range(0));
  Rng rng(5);
  TimePoint horizon = fx.db.now();
  for (auto _ : state) {
    auto c = fx.db.GetObject(fx.subject)->ClassAt(
        rng.Uniform(0, horizon));
    benchmark::DoNotOptimize(c);
  }
  state.SetLabel("migrations=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ClassAtInstant)->Arg(2)->Arg(16)->Arg(128)->Arg(1024);

void BM_MLifespan(benchmark::State& state) {
  // m_lifespan(i, c): the membership intervals, reconstructed from the
  // extent history (Table 3).
  Fixture fx;
  MakeFixture(&fx, state.range(0));
  for (auto _ : state) {
    auto m = fx.db.MLifespan(fx.subject, "manager");
    if (!m.ok()) state.SkipWithError("m_lifespan failed");
    benchmark::DoNotOptimize(m);
  }
  state.SetLabel("migrations=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_MLifespan)->Arg(2)->Arg(16)->Arg(128);

void BM_ClassHistoryStorage(benchmark::State& state) {
  // Storage attributable to type histories: object footprint as the
  // number of migrations grows (attribute histories are constant here,
  // so growth is the class history plus retained manager attributes).
  Fixture fx;
  MakeFixture(&fx, state.range(0));
  const Object* obj = fx.db.GetObject(fx.subject);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj->ApproxBytes());
  }
  state.counters["object_bytes"] =
      static_cast<double>(obj->ApproxBytes());
  state.counters["class_history_segments"] =
      static_cast<double>(obj->class_history().segment_count());
  state.SetLabel("migrations=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ClassHistoryStorage)->Arg(0)->Arg(16)->Arg(128);

}  // namespace
}  // namespace tchimera

BENCHMARK_MAIN();
