// Experiment T1 (DESIGN.md): regenerates Tables 1 and 2 of the paper.
//
// Each implemented model variant self-reports its design axes through
// TemporalStore::Describe(); rows for the paper-surveyed systems that this
// repository does not re-implement (user-defined time structures,
// arbitrary timestamping) are emitted from the paper's own table data and
// marked "[paper]". The T_Chimera row is additionally *verified*: every
// claimed capability is demonstrated against the live implementation, and
// the driver fails (non-zero exit) if any demonstration breaks.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/attribute_store.h"
#include "baselines/object_version_store.h"
#include "baselines/snapshot_store.h"
#include "baselines/triple_store.h"
#include "core/db/database.h"
#include "core/types/type_registry.h"
#include "workload/project_schema.h"

namespace tchimera {
namespace {

struct Row {
  ModelDescriptor d;
  bool implemented;
};

void PrintTable1(const std::vector<Row>& rows) {
  std::printf("Table 1: comparison among temporal OO data models (I)\n");
  std::printf("%-38s | %-14s | %-12s | %-9s | %-8s | %-8s\n", "model",
              "oo data model", "time struct", "time dim", "val&obj",
              "class ft");
  std::printf("%s\n", std::string(106, '-').c_str());
  for (const Row& row : rows) {
    std::printf("%-38s | %-14s | %-12s | %-9s | %-8s | %-8s\n",
                (row.d.model_name + (row.implemented ? "" : " [paper]"))
                    .c_str(),
                row.d.oo_data_model.c_str(), row.d.time_structure.c_str(),
                row.d.time_dimension.c_str(),
                row.d.values_and_objects.c_str(),
                row.d.class_features ? "YES" : "NO");
  }
  std::printf("\n");
}

void PrintTable2(const std::vector<Row>& rows) {
  std::printf("Table 2: comparison among temporal OO data models (II)\n");
  std::printf("%-38s | %-12s | %-16s | %-30s | %-9s\n", "model",
              "timestamped", "temporal values", "kinds of attributes",
              "type hist");
  std::printf("%s\n", std::string(118, '-').c_str());
  for (const Row& row : rows) {
    std::printf("%-38s | %-12s | %-16s | %-30s | %-9s\n",
                (row.d.model_name + (row.implemented ? "" : " [paper]"))
                    .c_str(),
                row.d.what_is_timestamped.c_str(),
                row.d.temporal_attribute_values.c_str(),
                row.d.kinds_of_attributes.c_str(),
                row.d.histories_of_object_types ? "YES" : "NO");
  }
  std::printf("\n");
}

// Rows reproduced verbatim from the paper for systems whose distinguishing
// axes this repository does not re-implement.
std::vector<Row> PaperOnlyRows() {
  std::vector<Row> rows;
  ModelDescriptor d;
  d.model_name = "Wuu & Dayal [21]";
  d.oo_data_model = "OODAPLEX";
  d.time_structure = "user-defined";
  d.time_dimension = "arbitrary";
  d.values_and_objects = "objects";
  d.class_features = false;
  d.what_is_timestamped = "arbitrary";
  d.temporal_attribute_values = "functions";
  d.kinds_of_attributes = "temporal + immutable";
  d.histories_of_object_types = true;
  rows.push_back({d, false});
  d = ModelDescriptor();
  d.model_name = "Cheng & Gadia [6]";
  d.oo_data_model = "OODAPLEX";
  d.time_structure = "linear";
  d.time_dimension = "valid";
  d.values_and_objects = "objects";
  d.class_features = false;
  d.what_is_timestamped = "attributes";
  d.temporal_attribute_values = "functions";
  d.kinds_of_attributes = "temporal + immutable";
  d.histories_of_object_types = false;
  rows.push_back({d, false});
  d = ModelDescriptor();
  d.model_name = "Goralwalla & Ozsu [11]";
  d.oo_data_model = "TIGUKAT";
  d.time_structure = "user-defined";
  d.time_dimension = "valid";
  d.values_and_objects = "objects";
  d.class_features = false;
  d.what_is_timestamped = "arbitrary";
  d.temporal_attribute_values = "sets of pairs";
  d.kinds_of_attributes = "temporal + immutable";
  d.histories_of_object_types = true;
  rows.push_back({d, false});
  d = ModelDescriptor();
  d.model_name = "Clifford & Croker [7]";
  d.oo_data_model = "generic";
  d.time_structure = "linear";
  d.time_dimension = "valid";
  d.values_and_objects = "objects";
  d.class_features = false;
  d.what_is_timestamped = "attributes";
  d.temporal_attribute_values = "functions";
  d.kinds_of_attributes = "temporal + immutable";
  d.histories_of_object_types = true;
  rows.push_back({d, false});
  return rows;
}

#define VERIFY(cond, what)                                   \
  do {                                                       \
    if (!(cond)) {                                           \
      std::printf("VERIFICATION FAILED: %s\n", what);        \
      return false;                                          \
    }                                                        \
    std::printf("  verified: %s\n", what);                   \
  } while (false)

// Demonstrates every capability the T_Chimera row claims, against the
// real implementation.
bool VerifyOurRow() {
  std::printf("Verifying the 'Our model' row against the implementation:\n");
  Database db;
  if (!InstallProjectSchema(&db).ok()) return false;

  // values & objects = both: value types and object types coexist in one
  // attribute record.
  const ClassDef* project = db.GetClass("project");
  VERIFY(project->FindAttribute("objective")->type == types::String(),
         "value-typed attributes (values are first-class)");
  VERIFY(project->FindAttribute("participants")->type->element()->element()
                 ->IsObjectType(),
         "object-typed attributes (objects are first-class)");

  // class features = YES: c-attributes live on the class itself.
  VERIFY(db.SetClassAttribute("project", "average-participants",
                              Value::Integer(20))
             .ok(),
         "c-attributes (class features)");

  // kinds of attributes = temporal + immutable + non-temporal.
  VERIFY(project->FindAttribute("name")->is_temporal(),
         "temporal attributes");
  VERIFY(!project->FindAttribute("objective")->is_temporal(),
         "non-temporal attributes");
  // Immutable = constant temporal function (Section 1.1).
  Result<Oid> p = db.CreateObject(
      "project", {{"name", Value::String("IDEA")}});
  VERIFY(p.ok(), "object creation");
  db.Tick(10);
  VERIFY(db.GetObject(*p)->Attribute("name")->AsTemporal()
                 .segment_count() == 1,
         "immutable attributes as constant functions");

  // temporal attribute values = functions: projection at instants.
  VERIFY(db.UpdateAttribute(*p, "name", Value::String("IDEA-2")).ok(),
         "temporal update");
  VERIFY(db.GetObject(*p)->Attribute("name")->AsTemporal().At(5)->AsString()
             == "IDEA",
         "temporal values are functions from TIME");

  // histories of object types = YES: class histories + migration.
  Result<Oid> e = db.CreateObject("employee");
  VERIFY(e.ok(), "employee creation");
  db.Tick(5);
  VERIFY(db.Migrate(*e, "manager",
                    {{"dependents", Value::Integer(1)},
                     {"officialcar", Value::String("car")}})
             .ok(),
         "object migration");
  VERIFY(db.GetObject(*e)->ClassAt(10).value() == "employee" &&
             db.GetObject(*e)->ClassAt(15).value() == "manager",
         "histories of object types (class histories)");
  return true;
}

int Main() {
  AttributeTimestampStore attr;
  ObjectVersionStore object;
  TripleStore triple;
  SnapshotStore snap;
  std::vector<Row> rows;
  for (Row r : PaperOnlyRows()) rows.push_back(r);
  rows.push_back({object.Describe(), true});   // MAD / OSAM* axes
  rows.push_back({triple.Describe(), true});   // 3DIS axes
  rows.push_back({snap.Describe(), true});     // non-temporal baseline
  rows.push_back({attr.Describe(), true});     // Our model
  PrintTable1(rows);
  PrintTable2(rows);
  return VerifyOurRow() ? 0 : 1;
}

}  // namespace
}  // namespace tchimera

int main() { return tchimera::Main(); }
