// Experiment QU (DESIGN.md): the TQL pipeline — parse, type check
// (Definition 3.6 rules + the Section 6.1 coercion) and evaluate —
// over populated databases, plus the compiled pipeline (query/lower.h +
// query/vm.h) head-to-head against the tree-walking evaluator.
//
// Besides the google-benchmark suite, a custom main emits the
// machine-readable compiled-vs-interpreted report (BENCH_query.json, a
// CI artifact): a sweep over history length (WHEN over an object with H
// salary segments) and extent size (WHERE over N objects).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "query/evaluator.h"
#include "query/interpreter.h"
#include "query/lower.h"
#include "query/parser.h"
#include "query/session.h"
#include "query/type_checker.h"
#include "query/vm.h"
#include "workload/generator.h"

namespace tchimera {
namespace {

struct Fixture {
  Database db;
  Population pop;
};

Fixture& SharedFixture(int64_t persons) {
  static std::map<int64_t, Fixture>& cache =
      *new std::map<int64_t, Fixture>();
  auto it = cache.find(persons);
  if (it == cache.end()) {
    it = cache.emplace(std::piecewise_construct,
                       std::forward_as_tuple(persons),
                       std::forward_as_tuple())
             .first;
    PopulationConfig config;
    config.persons = static_cast<size_t>(persons);
    config.projects = static_cast<size_t>(persons / 5 + 1);
    config.timesteps = 32;
    config.updates_per_step = 10;
    config.migration_rate = 0.2;
    it->second.pop = PopulateDatabase(&it->second.db, config).value();
  }
  return it->second;
}

constexpr const char* kSelect =
    "select x.name from x in employee where x.salary > 50000 and "
    "x.birthyear < 1990";

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = ParseStatement(kSelect);
    if (!stmt.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_Parse);

void BM_TypeCheck(benchmark::State& state) {
  Fixture& fx = SharedFixture(50);
  Statement stmt = ParseStatement(kSelect).value();
  for (auto _ : state) {
    // Re-check in place (annotations are overwritten).
    auto types = TypeCheckSelect(&*stmt.select, fx.db);
    if (!types.ok()) state.SkipWithError("type check failed");
    benchmark::DoNotOptimize(types);
  }
}
BENCHMARK(BM_TypeCheck);

void BM_EvaluateSelect(benchmark::State& state) {
  Fixture& fx = SharedFixture(state.range(0));
  Statement stmt = ParseStatement(kSelect).value();
  (void)TypeCheckSelect(&*stmt.select, fx.db);
  for (auto _ : state) {
    auto rows = EvaluateSelect(*stmt.select, fx.db);
    if (!rows.ok()) state.SkipWithError("evaluation failed");
    benchmark::DoNotOptimize(rows);
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_EvaluateSelect)->Arg(20)->Arg(100)->Arg(400);

void BM_EvaluateTimeSliceSelect(benchmark::State& state) {
  // AT-clause queries evaluate against past extents and coerce temporal
  // attributes at the past instant.
  Fixture& fx = SharedFixture(state.range(0));
  Statement stmt =
      ParseStatement(
          "select x from x in employee at 10 where x.salary > 50000")
          .value();
  (void)TypeCheckSelect(&*stmt.select, fx.db);
  for (auto _ : state) {
    auto rows = EvaluateSelect(*stmt.select, fx.db);
    if (!rows.ok()) state.SkipWithError("evaluation failed");
    benchmark::DoNotOptimize(rows);
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_EvaluateTimeSliceSelect)->Arg(20)->Arg(100)->Arg(400);

void BM_EvaluateEqualityPredicate(benchmark::State& state) {
  // vinstant() in a WHERE clause: quadratic-ish work per pair, the
  // expensive end of the language.
  Fixture& fx = SharedFixture(20);
  std::string query =
      "select x from x in employee where vinstant(x, " +
      fx.pop.persons.front().ToString() + ")";
  Statement stmt = ParseStatement(query).value();
  (void)TypeCheckSelect(&*stmt.select, fx.db);
  for (auto _ : state) {
    auto rows = EvaluateSelect(*stmt.select, fx.db);
    if (!rows.ok()) state.SkipWithError("evaluation failed");
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_EvaluateEqualityPredicate);

void BM_When(benchmark::State& state) {
  // Temporal selection: piecewise evaluation over one object's history.
  Fixture& fx = SharedFixture(state.range(0));
  std::string q = "when " + fx.pop.persons.front().ToString() +
                  ".salary > 50000";
  Statement stmt = ParseStatement(q).value();
  for (auto _ : state) {
    auto held = EvaluateWhen(*stmt.when->condition, fx.db);
    if (!held.ok()) state.SkipWithError("when failed");
    benchmark::DoNotOptimize(held);
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_When)->Arg(20)->Arg(100);

void BM_ExpressionEvaluation(benchmark::State& state) {
  // A single bound expression evaluation (the per-row cost).
  Fixture& fx = SharedFixture(50);
  ExprPtr expr =
      ParseExpression("x.salary > 50000 and x.birthyear < 1990").value();
  TypeEnv tenv;
  tenv.emplace("x", "employee");
  (void)TypeCheckExpr(expr.get(), fx.db, tenv);
  ValueEnv venv;
  venv.emplace("x", fx.pop.persons.front());
  for (auto _ : state) {
    auto v = EvaluateExpr(*expr, fx.db, venv, fx.db.now());
    if (!v.ok()) state.SkipWithError("evaluation failed");
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ExpressionEvaluation);

void BM_CompiledSelect(benchmark::State& state) {
  // The same query as BM_EvaluateSelect, lowered once and executed on
  // the batch VM each iteration (the plan-cache steady state).
  Fixture& fx = SharedFixture(state.range(0));
  Statement stmt = ParseStatement(kSelect).value();
  LowerOutcome outcome = LowerStatement(&stmt, fx.db).value();
  const ExecProgram& prog = outcome.plan->program;
  for (auto _ : state) {
    auto rows = RunSelect(prog, fx.db);
    if (!rows.ok()) state.SkipWithError("vm failed");
    benchmark::DoNotOptimize(rows);
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CompiledSelect)->Arg(20)->Arg(100)->Arg(400);

void BM_CompiledWhen(benchmark::State& state) {
  Fixture& fx = SharedFixture(state.range(0));
  std::string q = "when " + fx.pop.persons.front().ToString() +
                  ".salary > 50000";
  Statement stmt = ParseStatement(q).value();
  LowerOutcome outcome = LowerStatement(&stmt, fx.db).value();
  const ExecProgram& prog = outcome.plan->program;
  for (auto _ : state) {
    auto held = RunWhen(prog, fx.db);
    if (!held.ok()) state.SkipWithError("vm failed");
    benchmark::DoNotOptimize(held);
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CompiledWhen)->Arg(20)->Arg(100);

// --- the compiled-vs-interpreted report (BENCH_query.json) -------------------

// Mean microseconds per call of `fn` over one timed span long enough to
// dominate timer noise.
template <typename Fn>
double SpanUs(Fn&& fn) {
  constexpr auto kMinSpan = std::chrono::milliseconds(60);
  int iters = 0;
  auto begin = std::chrono::steady_clock::now();
  auto end = begin;
  do {
    fn();
    ++iters;
    end = std::chrono::steady_clock::now();
  } while (end - begin < kMinSpan);
  return std::chrono::duration<double, std::micro>(end - begin).count() /
         iters;
}

struct SweepPoint {
  long long x = 0;  // history length or extent size
  double interp_us = 0.0;
  double vm_us = 0.0;
  double speedup() const { return vm_us > 0.0 ? interp_us / vm_us : 0.0; }
};

// Measures both sides of a sweep point with INTERLEAVED repeats (best
// span of each): a transient load spike then degrades the same repeats
// of both executors instead of landing entirely on whichever side
// happened to be measured during it.
template <typename InterpFn, typename VmFn>
void MeasurePair(InterpFn&& interp, VmFn&& vm, SweepPoint* p) {
  constexpr int kRepeats = 5;
  for (int r = 0; r < kRepeats; ++r) {
    double i_us = SpanUs(interp);
    double v_us = SpanUs(vm);
    if (r == 0 || i_us < p->interp_us) p->interp_us = i_us;
    if (r == 0 || v_us < p->vm_us) p->vm_us = v_us;
  }
}

// One object whose salary flips across a threshold every step: H
// segments, maximally fragmented WHEN answer (worst case for both
// executors).
Database MakeHistoryDb(int history) {
  Database db;
  Interpreter interp(&db);
  (void)interp.Execute(
      "define class employee attributes salary: temporal(integer), "
      "name: string end");
  (void)interp.Execute("create employee (salary: 0, name: 'h')");
  for (int k = 1; k < history; ++k) {
    (void)interp.Execute("tick 2");
    (void)interp.Execute("update i1 set salary = " +
                         std::to_string(k % 2 == 0 ? 0 : 100));
  }
  return db;
}

// N objects, each with `history` salary segments.
Database MakeExtentDb(int objects, int history) {
  Database db;
  Interpreter interp(&db);
  (void)interp.Execute(
      "define class employee attributes salary: temporal(integer), "
      "name: string end");
  for (int i = 0; i < objects; ++i) {
    (void)interp.Execute("create employee (salary: " +
                         std::to_string(i % 100) + ", name: 'e" +
                         std::to_string(i) + "')");
  }
  for (int k = 1; k < history; ++k) {
    (void)interp.Execute("tick 2");
    for (int i = 0; i < objects; i += 7) {
      (void)interp.Execute("update i" + std::to_string(i + 1) +
                           " set salary = " +
                           std::to_string((i + k) % 100));
    }
  }
  return db;
}

// Each sweep point compares the two paths as a Session executes them
// per statement:
//   interpreted — parse, type check, tree-walk (the tree-walker path
//     repeats all three on every execution);
//   compiled — normalize the cache key, then run the cached program
//     (parse/type-check/lowering happened once at plan-cache miss; the
//     per-execution residue is the O(length) key normalization — the
//     map lookup itself is noise).
// Result formatting is excluded from both sides: it is identical work.
SweepPoint MeasureWhenPoint(int history) {
  Database db = MakeHistoryDb(history);
  // A compound condition with several temporal reads: the tree-walker
  // pays a recursive descent plus a binary search per attribute access
  // per boundary; the VM merge-walks the history once per batch (CSE
  // folds the repeated reads into one load).
  const std::string q =
      "when i1.salary > 50 and i1.salary * 2 < 300 or "
      "i1.salary + 25 = 25";
  Statement stmt = ParseStatement(q).value();
  LowerOutcome outcome = LowerStatement(&stmt, db).value();
  const ExecProgram& prog = outcome.plan->program;
  SweepPoint p;
  p.x = history;
  MeasurePair(
      [&] {
        Statement walk_stmt = ParseStatement(q).value();
        auto type =
            TypeCheckExpr(walk_stmt.when->condition.get(), db, TypeEnv{});
        benchmark::DoNotOptimize(type);
        auto held = EvaluateWhen(*walk_stmt.when->condition, db);
        benchmark::DoNotOptimize(held);
      },
      [&] {
        std::string key = NormalizePlanKey(q);
        benchmark::DoNotOptimize(key);
        auto held = RunWhen(prog, db);
        benchmark::DoNotOptimize(held);
      },
      &p);
  return p;
}

SweepPoint MeasureSelectPoint(int objects, int history) {
  Database db = MakeExtentDb(objects, history);
  const std::string q =
      "select x.name from x in employee where x.salary > 40 and "
      "x.salary < 90";
  Statement stmt = ParseStatement(q).value();
  LowerOutcome outcome = LowerStatement(&stmt, db).value();
  const ExecProgram& prog = outcome.plan->program;
  SweepPoint p;
  p.x = objects;
  MeasurePair(
      [&] {
        Statement walk_stmt = ParseStatement(q).value();
        auto types = TypeCheckSelect(&*walk_stmt.select, db);
        benchmark::DoNotOptimize(types);
        auto rows = EvaluateSelect(*walk_stmt.select, db);
        benchmark::DoNotOptimize(rows);
      },
      [&] {
        std::string key = NormalizePlanKey(q);
        benchmark::DoNotOptimize(key);
        auto rows = RunSelect(prog, db);
        benchmark::DoNotOptimize(rows);
      },
      &p);
  return p;
}

// --- the index-vs-scan report (temporal secondary indexes) -------------------

// One sweep point comparing the VM's two access paths over identical
// data: the full extent scan (PR 8 behavior, still what the planner
// picks when no index helps) against an index probe.
struct IndexPoint {
  long long x = 0;  // extent size or history length
  double scan_us = 0.0;
  double index_us = 0.0;
  double speedup() const {
    return index_us > 0.0 ? scan_us / index_us : 0.0;
  }
};

// Selective WHERE over N objects: the scan projects salary for every
// extent row; the probe touches ~N/100 postings plus the survivors.
// Both programs run over the SAME database (an index never changes what
// a scan program does), so the comparison is access path only.
IndexPoint MeasureIndexSelectPoint(int objects, int history) {
  Database db = MakeExtentDb(objects, history);
  const std::string q =
      "select x.name from x in employee where x.salary = 5";
  Statement scan_stmt = ParseStatement(q).value();
  LowerOutcome scan_outcome = LowerStatement(&scan_stmt, db).value();
  const ExecProgram& scan_prog = scan_outcome.plan->program;

  Status created = db.CreateIndex(
      {"bench_salary", IndexKind::kValue, "employee", "salary"});
  if (!created.ok()) {
    std::fprintf(stderr, "index creation failed: %s\n",
                 created.ToString().c_str());
  }
  Statement idx_stmt = ParseStatement(q).value();
  LowerOutcome idx_outcome = LowerStatement(&idx_stmt, db).value();
  const ExecProgram& idx_prog = idx_outcome.plan->program;
  if (!idx_prog.access.has_value()) {
    std::fprintf(stderr,
                 "planner skipped the index at %d objects: %s\n", objects,
                 idx_prog.access_note.c_str());
  }

  IndexPoint p;
  p.x = objects;
  SweepPoint raw;
  MeasurePair(
      [&] {
        auto rows = RunSelect(scan_prog, db);
        benchmark::DoNotOptimize(rows);
      },
      [&] {
        auto rows = RunSelect(idx_prog, db);
        benchmark::DoNotOptimize(rows);
      },
      &raw);
  p.scan_us = raw.interp_us;
  p.index_us = raw.vm_us;
  return p;
}

// Selective `during` window over one object with H salary segments: the
// boundary collection either walks all H segments (scan) or slices the
// index's pre-extracted timeline with binary search. Two identical
// databases (MakeHistoryDb is deterministic), one indexed — the WHEN
// program itself is access-path agnostic.
IndexPoint MeasureWhenDuringPoint(int history) {
  Database scan_db = MakeHistoryDb(history);
  Database idx_db = MakeHistoryDb(history);
  Status created = idx_db.CreateIndex(
      {"bench_salary", IndexKind::kValue, "employee", "salary"});
  if (!created.ok()) {
    std::fprintf(stderr, "index creation failed: %s\n",
                 created.ToString().c_str());
  }
  const TimePoint end = scan_db.now();
  const std::string q = "when i1.salary > 50 during [" +
                        std::to_string(end > 8 ? end - 8 : 0) + "," +
                        std::to_string(end) + "]";
  Statement stmt = ParseStatement(q).value();
  LowerOutcome outcome = LowerStatement(&stmt, scan_db).value();
  const ExecProgram& prog = outcome.plan->program;

  IndexPoint p;
  p.x = history;
  SweepPoint raw;
  MeasurePair(
      [&] {
        auto held = RunWhen(prog, scan_db);
        benchmark::DoNotOptimize(held);
      },
      [&] {
        auto held = RunWhen(prog, idx_db);
        benchmark::DoNotOptimize(held);
      },
      &raw);
  p.scan_us = raw.interp_us;
  p.index_us = raw.vm_us;
  return p;
}

void AppendIndexSweep(const std::vector<IndexPoint>& points,
                      const char* xname, std::string* json) {
  for (size_t i = 0; i < points.size(); ++i) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "    {\"%s\": %lld, \"scan_us\": %.2f, "
                  "\"index_us\": %.2f, \"speedup\": %.2f}%s\n",
                  xname, points[i].x, points[i].scan_us, points[i].index_us,
                  points[i].speedup(), i + 1 < points.size() ? "," : "");
    *json += buf;
  }
}

void AppendSweep(const std::vector<SweepPoint>& points, const char* xname,
                 std::string* json) {
  for (size_t i = 0; i < points.size(); ++i) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "    {\"%s\": %lld, \"interp_us\": %.2f, "
                  "\"vm_us\": %.2f, \"speedup\": %.2f}%s\n",
                  xname, points[i].x, points[i].interp_us, points[i].vm_us,
                  points[i].speedup(), i + 1 < points.size() ? "," : "");
    *json += buf;
  }
}

int WriteQueryReport(const std::string& path) {
  std::vector<SweepPoint> history_sweep;
  for (int h : {64, 256, 1024, 4096}) {
    history_sweep.push_back(MeasureWhenPoint(h));
  }
  std::vector<SweepPoint> extent_sweep;
  for (int n : {100, 1000, 4000}) {
    extent_sweep.push_back(MeasureSelectPoint(n, 16));
  }
  std::vector<IndexPoint> index_select_sweep;
  for (int n : {100, 1000, 4000}) {
    index_select_sweep.push_back(MeasureIndexSelectPoint(n, 16));
  }
  std::vector<IndexPoint> during_sweep;
  for (int h : {64, 256, 1024, 4096, 16384}) {
    during_sweep.push_back(MeasureWhenDuringPoint(h));
  }
  // The acceptance gate: index-vs-scan speedup on the selective WHERE at
  // the largest extent and the selective `during` at the longest history.
  const double index_speedup_at_max =
      std::min(index_select_sweep.back().speedup(),
               during_sweep.back().speedup());

  double min_history_speedup = 0.0;
  for (const SweepPoint& p : history_sweep) {
    if (min_history_speedup == 0.0 || p.speedup() < min_history_speedup) {
      min_history_speedup = p.speedup();
    }
  }

  std::string json;
  json += "{\n";
  json += "  \"benchmark\": \"query\",\n";
  json += "  \"pipeline\": \"lower+vm vs tree-walker\",\n";
  json += "  \"history_sweep\": [\n";
  AppendSweep(history_sweep, "history", &json);
  json += "  ],\n";
  json += "  \"extent_sweep\": [\n";
  AppendSweep(extent_sweep, "objects", &json);
  json += "  ],\n";
  json += "  \"index_select_sweep\": [\n";
  AppendIndexSweep(index_select_sweep, "objects", &json);
  json += "  ],\n";
  json += "  \"during_sweep\": [\n";
  AppendIndexSweep(during_sweep, "history", &json);
  json += "  ],\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  \"history_sweep_min_speedup\": %.2f,\n"
                "  \"index_speedup_at_max\": %.2f\n",
                min_history_speedup, index_speedup_at_max);
  json += buf;
  json += "}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr,
               "wrote %s (min history-sweep speedup: %.2fx, "
               "index speedup at max size: %.2fx)\n%s",
               path.c_str(), min_history_speedup, index_speedup_at_max,
               json.c_str());
  return 0;
}

}  // namespace
}  // namespace tchimera

// Custom main: the google-benchmark suite as usual, plus the
// machine-readable compiled-vs-interpreted report.
//   --json[=PATH]  write BENCH_query.json (or PATH) after the suite
//   --json-only    skip the google-benchmark suite (the CI artifact path)
int main(int argc, char** argv) {
  std::string json_path;
  bool json_only = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-only") {
      json_only = true;
      if (json_path.empty()) json_path = "BENCH_query.json";
    } else if (arg == "--json") {
      json_path = "BENCH_query.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_only) {
    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  if (!json_path.empty()) {
    return tchimera::WriteQueryReport(json_path);
  }
  return 0;
}
