// Experiment QU (DESIGN.md): the TQL pipeline — parse, type check
// (Definition 3.6 rules + the Section 6.1 coercion) and evaluate —
// over populated databases.
#include <benchmark/benchmark.h>

#include <map>

#include "query/evaluator.h"
#include "query/parser.h"
#include "query/type_checker.h"
#include "workload/generator.h"

namespace tchimera {
namespace {

struct Fixture {
  Database db;
  Population pop;
};

Fixture& SharedFixture(int64_t persons) {
  static std::map<int64_t, Fixture>& cache =
      *new std::map<int64_t, Fixture>();
  auto it = cache.find(persons);
  if (it == cache.end()) {
    it = cache.emplace(std::piecewise_construct,
                       std::forward_as_tuple(persons),
                       std::forward_as_tuple())
             .first;
    PopulationConfig config;
    config.persons = static_cast<size_t>(persons);
    config.projects = static_cast<size_t>(persons / 5 + 1);
    config.timesteps = 32;
    config.updates_per_step = 10;
    config.migration_rate = 0.2;
    it->second.pop = PopulateDatabase(&it->second.db, config).value();
  }
  return it->second;
}

constexpr const char* kSelect =
    "select x.name from x in employee where x.salary > 50000 and "
    "x.birthyear < 1990";

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = ParseStatement(kSelect);
    if (!stmt.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_Parse);

void BM_TypeCheck(benchmark::State& state) {
  Fixture& fx = SharedFixture(50);
  Statement stmt = ParseStatement(kSelect).value();
  for (auto _ : state) {
    // Re-check in place (annotations are overwritten).
    auto types = TypeCheckSelect(&*stmt.select, fx.db);
    if (!types.ok()) state.SkipWithError("type check failed");
    benchmark::DoNotOptimize(types);
  }
}
BENCHMARK(BM_TypeCheck);

void BM_EvaluateSelect(benchmark::State& state) {
  Fixture& fx = SharedFixture(state.range(0));
  Statement stmt = ParseStatement(kSelect).value();
  (void)TypeCheckSelect(&*stmt.select, fx.db);
  for (auto _ : state) {
    auto rows = EvaluateSelect(*stmt.select, fx.db);
    if (!rows.ok()) state.SkipWithError("evaluation failed");
    benchmark::DoNotOptimize(rows);
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_EvaluateSelect)->Arg(20)->Arg(100)->Arg(400);

void BM_EvaluateTimeSliceSelect(benchmark::State& state) {
  // AT-clause queries evaluate against past extents and coerce temporal
  // attributes at the past instant.
  Fixture& fx = SharedFixture(state.range(0));
  Statement stmt =
      ParseStatement(
          "select x from x in employee at 10 where x.salary > 50000")
          .value();
  (void)TypeCheckSelect(&*stmt.select, fx.db);
  for (auto _ : state) {
    auto rows = EvaluateSelect(*stmt.select, fx.db);
    if (!rows.ok()) state.SkipWithError("evaluation failed");
    benchmark::DoNotOptimize(rows);
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_EvaluateTimeSliceSelect)->Arg(20)->Arg(100)->Arg(400);

void BM_EvaluateEqualityPredicate(benchmark::State& state) {
  // vinstant() in a WHERE clause: quadratic-ish work per pair, the
  // expensive end of the language.
  Fixture& fx = SharedFixture(20);
  std::string query =
      "select x from x in employee where vinstant(x, " +
      fx.pop.persons.front().ToString() + ")";
  Statement stmt = ParseStatement(query).value();
  (void)TypeCheckSelect(&*stmt.select, fx.db);
  for (auto _ : state) {
    auto rows = EvaluateSelect(*stmt.select, fx.db);
    if (!rows.ok()) state.SkipWithError("evaluation failed");
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_EvaluateEqualityPredicate);

void BM_When(benchmark::State& state) {
  // Temporal selection: piecewise evaluation over one object's history.
  Fixture& fx = SharedFixture(state.range(0));
  std::string q = "when " + fx.pop.persons.front().ToString() +
                  ".salary > 50000";
  Statement stmt = ParseStatement(q).value();
  for (auto _ : state) {
    auto held = EvaluateWhen(*stmt.when->condition, fx.db);
    if (!held.ok()) state.SkipWithError("when failed");
    benchmark::DoNotOptimize(held);
  }
  state.SetLabel("persons=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_When)->Arg(20)->Arg(100);

void BM_ExpressionEvaluation(benchmark::State& state) {
  // A single bound expression evaluation (the per-row cost).
  Fixture& fx = SharedFixture(50);
  ExprPtr expr =
      ParseExpression("x.salary > 50000 and x.birthyear < 1990").value();
  TypeEnv tenv;
  tenv.emplace("x", "employee");
  (void)TypeCheckExpr(expr.get(), fx.db, tenv);
  ValueEnv venv;
  venv.emplace("x", fx.pop.persons.front());
  for (auto _ : state) {
    auto v = EvaluateExpr(*expr, fx.db, venv, fx.db.now());
    if (!v.ok()) state.SkipWithError("evaluation failed");
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ExpressionEvaluation);

}  // namespace
}  // namespace tchimera

BENCHMARK_MAIN();
